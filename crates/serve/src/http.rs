//! A minimal HTTP/1.1 request/response layer over `std::net`.
//!
//! Only what the measurement service needs: request-line + header
//! parsing, `Content-Length` bodies, percent-decoded query strings,
//! plain (unchunked) responses, and HTTP/1.1 persistent connections
//! (`Connection: close` honored, HTTP/1.0 defaults to close). No TLS,
//! no chunked transfer — clients that want more are welcome to put a
//! real proxy in front (docs/SERVING.md has an nginx/caddy recipe).
//!
//! Parsing comes in two shapes: [`try_parse`] is the incremental,
//! buffer-based form the nonblocking event loop feeds — it consumes
//! zero bytes until a full request is buffered, so pipelined requests
//! and partial reads fall out naturally — and [`read_request`] is the
//! blocking convenience wrapper over one `TcpStream` that tests and
//! simple clients use.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (`/compute` specs are tiny).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Method verb (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// Path component, percent-decoded (e.g. `/job/abc`).
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: String,
    /// Whether the connection may serve another request afterwards:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First value for the query parameter `key`.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseFailure {
    /// Malformed request (bad request line, oversized body, …) —
    /// answer 400.
    BadRequest(&'static str),
    /// The request line + headers exceed [`MAX_HEAD_BYTES`] — answer
    /// 431 (Request Header Fields Too Large).
    HeadTooLarge,
    /// The socket timed out or was dropped mid-request — answer 408 if
    /// the connection is still writable.
    Timeout,
    /// The socket closed or idled out before the first request byte —
    /// a keep-alive connection ending between requests; close quietly.
    Idle,
}

impl ParseFailure {
    /// The HTTP status code a parse failure answers with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ParseFailure::BadRequest(_) => 400,
            ParseFailure::HeadTooLarge => 431,
            ParseFailure::Timeout | ParseFailure::Idle => 408,
        }
    }

    /// The error message for the response body.
    #[must_use]
    pub fn message(&self) -> &'static str {
        match self {
            ParseFailure::BadRequest(msg) => msg,
            ParseFailure::HeadTooLarge => "request head too large",
            ParseFailure::Timeout | ParseFailure::Idle => "request timed out",
        }
    }
}

/// Outcome of one [`try_parse`] call over a receive buffer.
#[derive(Debug)]
pub enum ParseStep {
    /// The buffer does not yet hold a complete request; read more.
    Incomplete,
    /// One complete request, plus the number of buffer bytes it
    /// consumed (the caller drains them; any remainder is the start of
    /// the next pipelined request).
    Complete(Request, usize),
}

/// Incrementally parses the first request in `buf` without consuming
/// anything. Returns [`ParseStep::Incomplete`] until the head *and*
/// the declared body are fully buffered.
///
/// # Errors
///
/// [`ParseFailure::HeadTooLarge`] once more than [`MAX_HEAD_BYTES`]
/// arrive without a blank line, [`ParseFailure::BadRequest`] for
/// malformed request lines, versions, or oversized bodies.
pub fn try_parse(buf: &[u8]) -> Result<ParseStep, ParseFailure> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseFailure::HeadTooLarge);
        }
        return Ok(ParseStep::Incomplete);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(ParseFailure::HeadTooLarge);
    }
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let parsed = parse_head(&head)?;
    let total = head_end + 4 + parsed.content_length;
    if buf.len() < total {
        return Ok(ParseStep::Incomplete);
    }
    let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned();
    let (path, query) = match parsed.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (parsed.target.as_str(), ""),
    };
    Ok(ParseStep::Complete(
        Request {
            method: parsed.method,
            path: percent_decode(path),
            query: parse_query(query),
            body,
            keep_alive: parsed.keep_alive,
        },
        total,
    ))
}

/// Byte offset of the `\r\n\r\n` head terminator, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The request line + headers, parsed but not yet bound to a body.
struct Head {
    method: String,
    target: String,
    keep_alive: bool,
    content_length: usize,
}

/// Parses the request line and headers (`head` excludes the blank
/// line).
fn parse_head(head: &str) -> Result<Head, ParseFailure> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseFailure::BadRequest("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseFailure::BadRequest("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut connection = String::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| ParseFailure::BadRequest("bad Content-Length"))?;
            } else if k.eq_ignore_ascii_case("connection") {
                connection = v.trim().to_ascii_lowercase();
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseFailure::BadRequest("request body too large"));
    }
    let keep_alive = if version == "HTTP/1.0" {
        connection == "keep-alive"
    } else {
        connection != "close"
    };
    Ok(Head {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        keep_alive,
        content_length,
    })
}

/// Reads and parses one request from `stream`, blocking. Read
/// timeouts must be configured by the caller
/// (`TcpStream::set_read_timeout`).
///
/// # Errors
///
/// [`ParseFailure::BadRequest`] / [`ParseFailure::HeadTooLarge`] for
/// malformed input, [`ParseFailure::Timeout`] when the socket blocks
/// past its timeout or closes early, [`ParseFailure::Idle`] when it
/// does so before the first byte.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseFailure> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    let mut head_seen = false;
    loop {
        // Only attempt a parse once the head terminator has arrived
        // (byte-at-a-time reads mean it can only be a suffix), keeping
        // the per-byte cost constant instead of rescanning the buffer.
        head_seen = head_seen || buf.ends_with(b"\r\n\r\n");
        if head_seen {
            match try_parse(&buf)? {
                ParseStep::Complete(req, _consumed) => return Ok(req),
                ParseStep::Incomplete => {}
            }
        } else if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseFailure::HeadTooLarge);
        }
        // Before the first byte the connection is merely idle (a
        // keep-alive peer that went away); after it, a stall is a
        // genuine mid-request timeout. Byte-at-a-time keeps pipelined
        // follow-up requests in the kernel buffer for the next call.
        let stalled = || {
            if buf.is_empty() {
                ParseFailure::Idle
            } else {
                ParseFailure::Timeout
            }
        };
        match stream.read(&mut byte) {
            Ok(0) => return Err(stalled()),
            Ok(_) => buf.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(stalled()),
        }
    }
}

/// Parses `a=1&b=two` into percent-decoded pairs (valueless keys get
/// an empty value).
#[must_use]
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%xx` escapes and `+`-for-space; invalid escapes pass
/// through literally.
#[must_use]
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                if let Some(b) = hex {
                    out.push(b);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response ready to serialize.
#[derive(Debug, Clone, Default)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` header value in seconds (backpressure
    /// 503s carry one so clients know when to come back).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A JSON error response with a `{"error": ...}` body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\": {}}}\n", json_string(message)))
    }

    /// Attaches a `Retry-After` header (seconds).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// The reason phrase for the status codes the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `resp` to wire bytes, advertising whether the server
/// will keep the connection open for another request. The event loop
/// queues these bytes on its per-connection write buffer.
#[must_use]
pub fn render_response(resp: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(resp.body.as_bytes());
    out
}

/// Serializes `resp` onto `stream` (best-effort; a dead client is not
/// an error worth propagating), blocking form of [`render_response`].
pub fn write_response(stream: &mut TcpStream, resp: &Response, keep_alive: bool) {
    let _ = stream.write_all(&render_response(resp, keep_alive));
    let _ = stream.flush();
}

/// JSON-escapes `s` into a quoted string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_decode() {
        let q = parse_query("kernel=omp_barrier&threads=8&label=a+b%2Fc&flag");
        assert_eq!(q[0], ("kernel".into(), "omp_barrier".into()));
        assert_eq!(q[1], ("threads".into(), "8".into()));
        assert_eq!(q[2], ("label".into(), "a b/c".into()));
        assert_eq!(q[3], ("flag".into(), String::new()));
    }

    #[test]
    fn percent_decoding_tolerates_garbage() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("a+b"), "a b");
    }

    #[test]
    fn request_param_lookup() {
        let req = Request {
            query: parse_query("a=1&b=2&a=3"),
            ..Request::default()
        };
        assert_eq!(req.query_param("a"), Some("1"));
        assert_eq!(req.query_param("b"), Some("2"));
        assert_eq!(req.query_param("c"), None);
    }

    #[test]
    fn responses_have_reasons() {
        assert_eq!(reason(200), "OK");
        assert_eq!(reason(404), "Not Found");
        assert_eq!(reason(431), "Request Header Fields Too Large");
        assert_eq!(reason(599), "Unknown");
        let r = Response::error(404, "no such \"job\"");
        assert!(r.body.contains("\\\"job\\\""));
    }

    #[test]
    fn incremental_parse_handles_partial_and_pipelined_input() {
        let raw = b"POST /compute?x=1 HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\nGET /healthz HTTP/1.1\r\n\r\n";
        // Every prefix short of the full first request is Incomplete.
        for cut in [0, 5, 30, 52, 57] {
            assert!(
                matches!(try_parse(&raw[..cut]), Ok(ParseStep::Incomplete)),
                "cut at {cut} must be incomplete"
            );
        }
        let ParseStep::Complete(req, consumed) = try_parse(raw).unwrap() else {
            panic!("full buffer parses")
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compute");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.body, "{\"a\": 1}\n");
        // The pipelined follow-up parses from the remainder.
        let ParseStep::Complete(req2, consumed2) = try_parse(&raw[consumed..]).unwrap() else {
            panic!("pipelined request parses")
        };
        assert_eq!(req2.path, "/healthz");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn oversized_heads_fail_with_431() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 8));
        let err = try_parse(&raw).unwrap_err();
        assert!(matches!(err, ParseFailure::HeadTooLarge));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn malformed_requests_fail_with_400() {
        let bad = |raw: &[u8]| match try_parse(raw) {
            Err(ParseFailure::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        };
        bad(b"GARBAGE\r\n\r\n");
        bad(b"GET / HTTP/2.0\r\n\r\n");
        bad(b"GET / HTTP/1.1\r\nContent-Length: potato\r\n\r\n");
        bad(format!(
            "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .as_bytes());
    }

    #[test]
    fn roundtrip_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            write_response(&mut s, &Response::json(200, req.body.clone()), false);
            req
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(
            b"POST /compute?x=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .unwrap();
        let req = t.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compute");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.body, "{\"a\": 1}\n");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let mut reply = String::new();
        c.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(reply.contains("Connection: close\r\n"));
        assert!(reply.ends_with("{\"a\": 1}\n"));
    }

    #[test]
    fn retry_after_header_renders() {
        let resp = Response::error(503, "overloaded").with_retry_after(2);
        let bytes = render_response(&resp, false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("HTTP/1.1 503 Service Unavailable\r\n"));
        let plain = render_response(&Response::text(200, "ok"), true);
        assert!(!String::from_utf8(plain).unwrap().contains("Retry-After"));
    }

    /// Parses one request served from a raw byte string.
    fn parse_bytes(raw: &[u8]) -> Result<Request, ParseFailure> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let t = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
        });
        let (mut s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .unwrap();
        let req = read_request(&mut s);
        t.join().unwrap();
        req
    }

    #[test]
    fn connection_header_decides_keep_alive() {
        let req = parse_bytes(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        assert!(req.keep_alive, "1.1 without Connection header persists");
        let req = parse_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "Connection: close honored");
        let req = parse_bytes(b"GET / HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "1.0 defaults to close");
        let req = parse_bytes(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive, "1.0 opts in case-insensitively");
    }

    #[test]
    fn empty_connection_is_idle_not_timeout() {
        assert!(matches!(parse_bytes(b""), Err(ParseFailure::Idle)));
        assert!(matches!(parse_bytes(b"GET"), Err(ParseFailure::Timeout)));
    }
}
