//! The in-memory measurement index over the content-addressed cache,
//! plus the LRU + size-budget eviction policy for its on-disk half.
//!
//! On startup the index scans `results/.cache`, decodes every valid
//! entry (misfiled or corrupt entries are skipped, exactly as the
//! scheduler would skip them), and keeps the decoded [`Measurement`]s
//! in memory keyed by content hash, with a secondary kernel-name map
//! for parameter queries. Incremental updates arrive through the
//! scheduler's store hook, so a `/compute` is visible to `/query` the
//! moment its cache entry lands on disk.
//!
//! Reads are served from the in-memory copies — a reader can never
//! observe a torn file — and every read path takes a [`Pin`] guard
//! for its entry. Eviction (`SYNCPERF_CACHE_BYTES`) walks entries in
//! least-recently-used order and deletes from disk *and* memory, but
//! never touches an entry that is pinned by a reader or named by an
//! in-flight compute writer.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use syncperf_core::Measurement;
use syncperf_sched::Cache;

/// One indexed cache entry.
#[derive(Debug, Clone)]
struct Entry {
    measurement: Measurement,
    bytes: u64,
    /// Monotonic touch tick; larger = more recently used.
    last_used: u64,
    /// Live reader pins; eviction skips any entry with pins > 0.
    pins: u32,
}

#[derive(Debug, Default)]
struct State {
    entries: HashMap<u64, Entry>,
    /// kernel name -> hashes of entries for that kernel.
    by_kernel: HashMap<String, Vec<u64>>,
    tick: u64,
    total_bytes: u64,
}

/// The shared measurement index. All methods are safe to call from
/// any worker thread.
#[derive(Debug)]
pub struct Index {
    cache: Cache,
    /// On-disk size budget in bytes (`None` = unbounded).
    budget: Option<u64>,
    state: Mutex<State>,
}

/// An exact-or-nearest query against the index.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Kernel name, or a kernel-family prefix when `dtype` is given
    /// (the entry name is then `<kernel>_<dtype>`).
    pub kernel: String,
    /// Optional dtype label suffix (`int`, `ull`, `float`, `double`).
    pub dtype: Option<String>,
    /// Requested thread count.
    pub threads: u32,
    /// Optional block-count filter (GPU sweeps).
    pub blocks: Option<u32>,
    /// When true, only a distance-0 thread match answers.
    pub exact: bool,
}

/// A successful query: the matched entry and how far its thread count
/// is from the request.
#[derive(Debug)]
pub struct QueryMatch {
    /// The matched entry's content hash.
    pub hash: u64,
    /// Absolute thread-count distance (0 = exact).
    pub distance: u32,
    /// Reader pin over the matched entry.
    pub pin: Pin,
}

/// RAII reader pin: while alive, the pinned entry cannot be evicted.
/// Carries a clone of the measurement so responses are rendered from
/// a stable, untearable copy.
#[derive(Debug)]
pub struct Pin {
    index: Arc<Index>,
    hash: u64,
    measurement: Measurement,
}

impl Pin {
    /// The pinned entry's content hash.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The pinned measurement.
    #[must_use]
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }
}

impl Drop for Pin {
    fn drop(&mut self) {
        let mut st = self.index.state.lock().unwrap();
        if let Some(e) = st.entries.get_mut(&self.hash) {
            e.pins = e.pins.saturating_sub(1);
        }
    }
}

impl Index {
    /// Builds the index by scanning and decoding every entry in
    /// `cache`. Initial recency is seeded from file modification
    /// times, so a restarted server evicts cold history first.
    #[must_use]
    pub fn build(cache: Cache, budget: Option<u64>) -> Arc<Self> {
        let mut infos = cache.entries();
        infos.sort_by_key(|e| e.modified);
        let index = Arc::new(Index {
            cache,
            budget,
            state: Mutex::new(State::default()),
        });
        for info in infos {
            let Ok(text) = std::fs::read_to_string(index.cache.entry_path(info.hash)) else {
                continue;
            };
            let Some(m) = syncperf_sched::cache::decode_measurement(info.hash, &text) else {
                continue;
            };
            index.insert_entry(info.hash, m, info.bytes);
        }
        index
    }

    /// The underlying cache handle.
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The configured size budget, if any.
    #[must_use]
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total on-disk bytes of indexed entries.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().unwrap().total_bytes
    }

    fn insert_entry(&self, hash: u64, m: Measurement, bytes: u64) {
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        let kernel = m.kernel_name.clone();
        let old = st.entries.insert(
            hash,
            Entry {
                measurement: m,
                bytes,
                last_used: tick,
                pins: 0,
            },
        );
        st.total_bytes += bytes;
        if let Some(old) = old {
            // Replaced in place (same hash, same kernel): only the
            // byte accounting changes.
            st.total_bytes -= old.bytes;
        } else {
            st.by_kernel.entry(kernel).or_default().push(hash);
        }
    }

    /// Incremental insert, as driven by the scheduler's store hook:
    /// the entry for `hash` was just written to disk.
    pub fn insert(self: &Arc<Self>, hash: u64, m: &Measurement) {
        let bytes = std::fs::metadata(self.cache.entry_path(hash)).map_or(0, |md| md.len());
        self.insert_entry(hash, m.clone(), bytes);
    }

    /// Pins and returns the entry for `hash`, touching its recency.
    #[must_use]
    pub fn get(self: &Arc<Self>, hash: u64) -> Option<Pin> {
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        let e = st.entries.get_mut(&hash)?;
        e.last_used = tick;
        e.pins += 1;
        let measurement = e.measurement.clone();
        drop(st);
        Some(Pin {
            index: Arc::clone(self),
            hash,
            measurement,
        })
    }

    /// Answers `q` with the exact entry when one matches, else the
    /// nearest by thread count (ties broken toward fewer threads, then
    /// lower hash, so answers are deterministic).
    #[must_use]
    pub fn query(self: &Arc<Self>, q: &Query) -> Option<QueryMatch> {
        let target_name = q
            .dtype
            .as_ref()
            .map_or_else(|| q.kernel.clone(), |dt| format!("{}_{dt}", q.kernel));
        let best = {
            let st = self.state.lock().unwrap();
            // Exact kernel-name match first; with no dtype given, fall
            // back to the whole `<kernel>_*` family.
            let mut candidates: Vec<u64> =
                st.by_kernel.get(&target_name).cloned().unwrap_or_default();
            if candidates.is_empty() && q.dtype.is_none() {
                let prefix = format!("{}_", q.kernel);
                for (name, hashes) in &st.by_kernel {
                    if name.starts_with(&prefix) {
                        candidates.extend_from_slice(hashes);
                    }
                }
            }
            candidates
                .into_iter()
                .filter_map(|h| {
                    let e = st.entries.get(&h)?;
                    let p = &e.measurement.params;
                    if q.blocks.is_some_and(|b| b != p.blocks) {
                        return None;
                    }
                    let distance = p.threads.abs_diff(q.threads);
                    if q.exact && distance != 0 {
                        return None;
                    }
                    Some((distance, p.threads, h))
                })
                .min()
        };
        let (distance, _, hash) = best?;
        let pin = self.get(hash)?;
        Some(QueryMatch {
            hash,
            distance,
            pin,
        })
    }

    /// Reconciles the index with the on-disk cache directory: entries
    /// written by *other* processes sharing the directory (multi-
    /// replica serving) are decoded and indexed, and entries another
    /// replica evicted from disk are dropped from memory (unless a
    /// reader currently pins them). Returns `(added, removed)`.
    ///
    /// The event loop calls this periodically (`ServeConfig::
    /// index_refresh`); the scan is one `readdir` plus a decode per
    /// *new* entry, so steady state costs microseconds.
    pub fn refresh(&self) -> (u64, u64) {
        // Snapshot the known set *before* the readdir: an entry our
        // own store hook inserts mid-scan is then absent from `known`
        // and can never be mistaken for a foreign eviction.
        let known: Vec<u64> = {
            let st = self.state.lock().unwrap();
            st.entries.keys().copied().collect()
        };
        let infos = self.cache.entries();
        let on_disk: std::collections::HashSet<u64> = infos.iter().map(|i| i.hash).collect();

        let mut added = 0u64;
        for info in infos {
            if self.state.lock().unwrap().entries.contains_key(&info.hash) {
                continue;
            }
            // Decode outside the lock; misfiled or torn entries are
            // skipped exactly as at startup.
            let Ok(text) = std::fs::read_to_string(self.cache.entry_path(info.hash)) else {
                continue;
            };
            let Some(m) = syncperf_sched::cache::decode_measurement(info.hash, &text) else {
                continue;
            };
            self.insert_entry(info.hash, m, info.bytes);
            added += 1;
        }

        let mut removed = 0u64;
        let mut st = self.state.lock().unwrap();
        for hash in known {
            if on_disk.contains(&hash) {
                continue;
            }
            let Some(e) = st.entries.get(&hash) else {
                continue;
            };
            if e.pins > 0 {
                continue; // a live reader still serves the memory copy
            }
            let e = st.entries.remove(&hash).expect("checked above");
            st.total_bytes -= e.bytes;
            let kernel = e.measurement.kernel_name;
            if let Some(hs) = st.by_kernel.get_mut(&kernel) {
                hs.retain(|h| *h != hash);
                if hs.is_empty() {
                    st.by_kernel.remove(&kernel);
                }
            }
            removed += 1;
        }
        (added, removed)
    }

    /// Evicts least-recently-used entries (disk file + index entry)
    /// until the on-disk total fits the budget. Entries that are
    /// pinned by a reader, or whose hash `writer_inflight` reports as
    /// having an in-flight writer, are never evicted. Returns the
    /// number of entries evicted.
    pub fn evict_to_budget(&self, writer_inflight: &dyn Fn(u64) -> bool) -> u64 {
        let Some(budget) = self.budget else { return 0 };
        let mut evicted = 0u64;
        loop {
            let victim = {
                let st = self.state.lock().unwrap();
                if st.total_bytes <= budget {
                    return evicted;
                }
                st.entries
                    .iter()
                    .filter(|(h, e)| e.pins == 0 && !writer_inflight(**h))
                    .min_by_key(|(h, e)| (e.last_used, **h))
                    .map(|(h, _)| *h)
            };
            let Some(hash) = victim else {
                // Everything over budget is pinned or being written;
                // try again after the next store.
                return evicted;
            };
            // Remove from disk first; a crash between the two steps
            // only costs an index rebuild.
            let _ = self.cache.remove(hash);
            let mut st = self.state.lock().unwrap();
            if let Some(e) = st.entries.remove(&hash) {
                st.total_bytes -= e.bytes;
                let kernel = e.measurement.kernel_name;
                if let Some(hs) = st.by_kernel.get_mut(&kernel) {
                    hs.retain(|h| *h != hash);
                    if hs.is_empty() {
                        st.by_kernel.remove(&kernel);
                    }
                }
            }
            evicted += 1;
        }
    }

    /// Internal consistency check (used by tests): the byte total
    /// matches the per-entry sum and every kernel-map hash exists.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let st = self.state.lock().unwrap();
        let sum: u64 = st.entries.values().map(|e| e.bytes).sum();
        sum == st.total_bytes
            && st
                .by_kernel
                .values()
                .flatten()
                .all(|h| st.entries.contains_key(h))
            && st.entries.len() == st.by_kernel.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{ExecParams, TimeUnit};

    fn measurement(kernel: &str, threads: u32) -> Measurement {
        Measurement {
            kernel_name: kernel.into(),
            params: ExecParams::new(threads).with_loops(100, 10),
            time_unit: TimeUnit::Seconds,
            baseline_runs: vec![1.0, 2.0, 3.0],
            test_runs: vec![2.0, 3.0, 4.0],
            median_baseline: 2.0,
            median_test: 3.0,
            per_op: 1e-9,
            retries: 0,
            exhausted_runs: 0,
        }
    }

    fn tmp_cache(tag: &str) -> Cache {
        let dir =
            std::env::temp_dir().join(format!("syncperf-serve-index-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::new(dir)
    }

    #[test]
    fn build_indexes_valid_entries_and_skips_misfiled_ones() {
        let cache = tmp_cache("build");
        cache.store(1, &measurement("omp_barrier", 4)).unwrap();
        cache.store(2, &measurement("omp_barrier", 8)).unwrap();
        // A misfiled copy (hash mismatch) must not be indexed.
        std::fs::copy(cache.entry_path(1), cache.entry_path(3)).unwrap();
        std::fs::write(cache.entry_path(4), "garbage").unwrap();
        let dir = cache.dir().to_path_buf();
        let idx = Index::build(cache, None);
        assert_eq!(idx.len(), 2);
        assert!(idx.get(1).is_some() && idx.get(2).is_some());
        assert!(idx.get(3).is_none() && idx.get(4).is_none());
        assert!(idx.is_consistent());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn query_exact_and_nearest() {
        let cache = tmp_cache("query");
        cache
            .store(1, &measurement("omp_atomicadd_scalar_int", 2))
            .unwrap();
        cache
            .store(2, &measurement("omp_atomicadd_scalar_int", 8))
            .unwrap();
        cache
            .store(3, &measurement("omp_atomicadd_scalar_ull", 8))
            .unwrap();
        let dir = cache.dir().to_path_buf();
        let idx = Index::build(cache, None);

        // Exact thread hit on the fully-qualified name.
        let q = Query {
            kernel: "omp_atomicadd_scalar_int".into(),
            threads: 8,
            ..Query::default()
        };
        let m = idx.query(&q).unwrap();
        assert_eq!((m.hash, m.distance), (2, 0));

        // dtype spelled separately.
        let q = Query {
            kernel: "omp_atomicadd_scalar".into(),
            dtype: Some("ull".into()),
            threads: 6,
            ..Query::default()
        };
        let m = idx.query(&q).unwrap();
        assert_eq!((m.hash, m.distance), (3, 2));

        // Nearest across the family when no dtype is given.
        let q = Query {
            kernel: "omp_atomicadd_scalar".into(),
            threads: 3,
            ..Query::default()
        };
        let m = idx.query(&q).unwrap();
        assert_eq!((m.hash, m.distance), (1, 1));

        // exact=1 refuses a near miss.
        let q = Query {
            kernel: "omp_atomicadd_scalar_int".into(),
            threads: 5,
            exact: true,
            ..Query::default()
        };
        assert!(idx.query(&q).is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn eviction_respects_budget_lru_and_pins() {
        let cache = tmp_cache("evict");
        for (h, t) in [(1u64, 2u32), (2, 4), (3, 8), (4, 16)] {
            cache.store(h, &measurement("omp_barrier", t)).unwrap();
        }
        let dir = cache.dir().to_path_buf();
        let entry_bytes = Cache::new(&dir).entries()[0].bytes;
        // Budget for two entries.
        let idx = Index::build(Cache::new(&dir), Some(entry_bytes * 2 + 1));
        assert_eq!(idx.len(), 4);

        // Touch 1 so it is most recent; pin 2 so it cannot be evicted.
        let _t = idx.get(1).unwrap();
        let pin = idx.get(2).unwrap();
        let evicted = idx.evict_to_budget(&|_| false);
        assert_eq!(evicted, 2, "two entries over budget");
        assert!(idx.get(1).is_some(), "recently used survives");
        assert!(idx.get(2).is_some(), "pinned survives");
        assert!(idx.get(3).is_none() && idx.get(4).is_none(), "LRU evicted");
        assert!(idx.total_bytes() <= entry_bytes * 3, "disk shrank");
        assert!(!Cache::new(&dir).entries().iter().any(|e| e.hash == 3));
        assert!(idx.is_consistent());

        // With 2 pinned and budget for one entry, eviction stops early
        // rather than evicting a pinned/inflight entry.
        drop(pin);
        let idx2 = Index::build(Cache::new(&dir), Some(1));
        let _p1 = idx2.get(1).unwrap();
        let evicted = idx2.evict_to_budget(&|h| h == 2);
        assert_eq!(evicted, 0, "pinned + inflight entries are untouchable");
        assert_eq!(idx2.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn refresh_picks_up_foreign_writes_and_evictions() {
        let cache = tmp_cache("refresh");
        cache.store(1, &measurement("omp_barrier", 4)).unwrap();
        let dir = cache.dir().to_path_buf();
        let idx = Index::build(cache, None);
        assert_eq!(idx.len(), 1);

        // A "foreign replica" (any other handle on the directory)
        // writes two entries and evicts one of ours.
        let foreign = Cache::new(&dir);
        foreign.store(2, &measurement("omp_critical", 8)).unwrap();
        foreign.store(3, &measurement("omp_barrier", 16)).unwrap();
        foreign.remove(1).unwrap();

        let (added, removed) = idx.refresh();
        assert_eq!((added, removed), (2, 1));
        assert!(idx.get(1).is_none(), "foreign eviction dropped");
        assert!(idx.get(2).is_some() && idx.get(3).is_some());
        assert!(idx.is_consistent());

        // A pinned entry survives a foreign eviction until released.
        let pin = idx.get(2).unwrap();
        foreign.remove(2).unwrap();
        let (_, removed) = idx.refresh();
        assert_eq!(removed, 0, "pinned entry keeps serving from memory");
        drop(pin);
        let (_, removed) = idx.refresh();
        assert_eq!(removed, 1);
        assert!(idx.is_consistent());

        // A quiet directory refreshes to a no-op.
        assert_eq!(idx.refresh(), (0, 0));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let cache = tmp_cache("incremental");
        let dir = cache.dir().to_path_buf();
        let idx = Index::build(cache, None);
        assert!(idx.is_empty());
        let m = measurement("cuda_syncthreads", 64);
        idx.cache().store(9, &m).unwrap();
        idx.insert(9, &m);
        assert_eq!(idx.len(), 1);
        assert!(idx.total_bytes() > 0);
        let q = Query {
            kernel: "cuda_syncthreads".into(),
            threads: 64,
            ..Query::default()
        };
        assert_eq!(idx.query(&q).unwrap().hash, 9);
        assert!(idx.is_consistent());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
