//! # syncperf-serve
//!
//! A long-lived measurement query service over the syncperf
//! content-addressed result cache. Zero external dependencies — the
//! front end is a nonblocking readiness-driven event loop (one
//! reactor thread over a std-only `epoll` poller, [`reactor`])
//! feeding a bounded blocking compute pool, matching the std-only
//! discipline of the obs, analyze, and sched crates.
//!
//! Endpoints:
//!
//! - `GET /job/<hash>` — the cached measurement for a 16-hex-digit
//!   content hash, byte-identical to the on-disk cache entry.
//! - `GET /query?kernel=..&threads=..[&dtype=..][&blocks=..][&exact=1]`
//!   — the exact or nearest cached sweep point, from an in-memory
//!   index rebuilt at startup and updated incrementally on every
//!   cache store.
//! - `GET /figure/<name>[.csv|.svg]` — generated figure outputs from
//!   the results directory.
//! - `POST /compute` — compute-on-miss: the request resolves to a
//!   [`JobSpec`](syncperf_sched::JobSpec), and concurrent identical
//!   requests deduplicate onto a single scheduler job
//!   (single-writer-per-entry, [`inflight`]).
//! - `GET /manifest/<label>` — the per-label checkpoint manifest, so
//!   clients can resume partial sweeps against a remote cache.
//! - `GET /metrics` — the live telemetry snapshot (request counters,
//!   per-endpoint latency histograms, scheduler profile, index
//!   gauges) in Prometheus-style text exposition format.
//! - `GET /events?n=..` — the tail of the always-on flight-recorder
//!   ring as JSONL, for post-mortems and live debugging.
//! - `GET /stats`, `GET /healthz`, `POST /shutdown` — operations.
//!
//! Every connection is nonblocking: requests are parsed
//! incrementally ([`http::try_parse`]), each read/write phase
//! carries a deadline (slowloris peers are evicted, oversized heads
//! answered `431`), and accepts beyond the connection cap shed load
//! with `503 + Retry-After`. Several serve processes may share one
//! cache directory (`--replicas` in the serve bin): the atomic-rename
//! store tolerates concurrent writers and each replica's index picks
//! up foreign writes via periodic re-scan ([`Index::refresh`]), so
//! any cached hash serves byte-identically from every replica.
//!
//! The on-disk cache honours an LRU size budget
//! (`SYNCPERF_CACHE_BYTES`): eviction never removes an entry with a
//! live reader pin or an in-flight writer ([`index`]). Every request
//! is counted under `serve.*` obs counters and observed into
//! per-endpoint `serve.endpoint.<label>.latency_us` histograms, and
//! shutdown is graceful on SIGTERM or `/shutdown` — the reactor
//! drains, compute workers finish their current measurement, and all
//! threads join. The flight recorder auto-dumps to
//! `results/flightrec-<pid>.jsonl` on panic or SIGTERM.

pub mod http;
pub mod index;
pub mod inflight;
pub mod reactor;
pub mod server;

pub use http::{ParseFailure, ParseStep, Request, Response};
pub use index::{Index, Pin, Query, QueryMatch};
pub use inflight::{Claim, Inflight, OwnerGuard};
pub use server::{
    cache_bytes_from_env, endpoint_label, install_sigterm_handler, sigterm_received,
    ComputeRequest, Resolver, ServeConfig, ServeStats, Server, ENDPOINT_LABELS,
};
