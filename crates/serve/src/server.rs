//! The query service proper: a nonblocking `epoll` event loop over
//! `std::net::TcpListener` (see [`crate::reactor`] for why that
//! design), request routing, and the compute-on-miss path offloaded
//! to a bounded blocking worker pool.
//!
//! One reactor thread owns every connection: nonblocking accept,
//! incremental request parsing ([`crate::http::try_parse`]),
//! per-request read/write deadlines, and a connection cap that sheds
//! load with `503 + Retry-After` at accept time. Only `/compute`
//! cache misses leave the reactor — they are queued to `workers`
//! compute threads (scheduler measurements block for milliseconds to
//! seconds) and their responses return through a completion queue +
//! [`crate::reactor::Waker`].

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use syncperf_core::obs::{self, Counter, FlightRecorder, Histogram, Recorder, Snapshot};
use syncperf_core::Measurement;
use syncperf_sched::cache::encode_measurement;
use syncperf_sched::{hash::hex16, hash::parse_hex16, Checkpoint, JobSpec, Scheduler};

use crate::http::{json_string, render_response, try_parse, ParseStep, Request, Response};
use crate::index::{Index, Query};
use crate::inflight::{Claim, Inflight};
use crate::reactor::{Event, Poller, Waker, RDHUP, READABLE, WRITABLE};

/// The fixed endpoint label set request counters and latency
/// histograms are split by (`other` absorbs unknown paths and parse
/// failures). Metric names embed these labels:
/// `serve.endpoint.<label>.requests` / `serve.endpoint.<label>.latency_us`.
pub const ENDPOINT_LABELS: [&str; 11] = [
    "healthz", "stats", "metrics", "events", "query", "job", "figure", "compute", "manifest",
    "shutdown", "other",
];

/// Classifies a request path into one of [`ENDPOINT_LABELS`].
#[must_use]
pub fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/events" => "events",
        "/query" => "query",
        "/compute" => "compute",
        "/shutdown" => "shutdown",
        p if p.starts_with("/job/") => "job",
        p if p.starts_with("/figure/") => "figure",
        p if p.starts_with("/manifest/") => "manifest",
        _ => "other",
    }
}

/// A parsed `POST /compute` request body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComputeRequest {
    /// Executor kind: `cpu-sim` or `gpu-sim` (real-thread jobs are
    /// host-scoped and not served remotely).
    pub executor: String,
    /// Full kernel name (e.g. `omp_atomicadd_scalar_int`).
    pub kernel: String,
    /// Thread count (CPU: team size; GPU: threads per block).
    pub threads: u32,
    /// Block count (GPU; ignored for CPU kernels).
    pub blocks: Option<u32>,
    /// Affinity label (`spread`, `close`, `system`).
    pub affinity: Option<String>,
    /// Measured loop iterations (resolver default when absent).
    pub n_iter: Option<u32>,
    /// Unrolled ops per iteration (resolver default when absent).
    pub n_unroll: Option<u32>,
}

impl ComputeRequest {
    /// Parses a request from its JSON body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed bodies.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let v = syncperf_core::obs::json::parse(body).map_err(|e| format!("bad JSON: {e:?}"))?;
        let get_str = |k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
        let get_u32 = |k: &str| -> Result<Option<u32>, String> {
            match v.get(k) {
                None => Ok(None),
                Some(x) => {
                    let f = x
                        .as_f64()
                        .ok_or_else(|| format!("`{k}` must be a number"))?;
                    if f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f <= f64::from(u32::MAX) {
                        Ok(Some(f as u32))
                    } else {
                        Err(format!("`{k}` must be a non-negative integer"))
                    }
                }
            }
        };
        Ok(ComputeRequest {
            executor: get_str("executor").ok_or("missing `executor`")?,
            kernel: get_str("kernel").ok_or("missing `kernel`")?,
            threads: get_u32("threads")?.ok_or("missing `threads`")?,
            blocks: get_u32("blocks")?,
            affinity: get_str("affinity"),
            n_iter: get_u32("n_iter")?,
            n_unroll: get_u32("n_unroll")?,
        })
    }
}

/// Maps a [`ComputeRequest`] to a concrete [`JobSpec`], or `None`
/// when the kernel/executor combination is unknown. The bench crate
/// supplies a resolver over its kernel registry.
pub type Resolver = Box<dyn Fn(&ComputeRequest) -> Option<JobSpec> + Send + Sync>;

/// Server configuration.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Blocking compute-pool threads (the event loop itself is one
    /// reactor thread; only `/compute` misses occupy these).
    pub workers: usize,
    /// Directory figure CSV/SVG files are served from.
    pub results_dir: PathBuf,
    /// On-disk cache size budget in bytes (`None` = unbounded).
    pub cache_bytes: Option<u64>,
    /// Per-request read/write deadline: a request whose bytes stall
    /// longer than this (slowloris included) is evicted, as is a
    /// response write the peer refuses to drain.
    pub request_timeout: Duration,
    /// How long a deduplicated `/compute` waits for the owning
    /// computation before answering 503.
    pub compute_patience: Duration,
    /// Connection cap: accepts beyond this are answered `503` with a
    /// `Retry-After` header and closed immediately.
    pub max_connections: usize,
    /// How often the reactor re-scans the cache directory for entries
    /// written (or evicted) by other replicas sharing it.
    pub index_refresh: Duration,
    /// The scheduler computes run on (its cache dir is the index's
    /// source of truth).
    pub scheduler: Arc<Scheduler>,
    /// Compute-request resolver.
    pub resolver: Resolver,
    /// Recorder the `serve.*` counters register in.
    pub recorder: Recorder,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("results_dir", &self.results_dir)
            .field("cache_bytes", &self.cache_bytes)
            .field("max_connections", &self.max_connections)
            .finish()
    }
}

impl ServeConfig {
    /// A config with sensible defaults: 4 compute workers, 10 s
    /// deadlines, 2048 connections, a 500 ms replica re-scan, the
    /// budget from `SYNCPERF_CACHE_BYTES` (unset or unparsable =
    /// unbounded), serving figures from `results_dir`.
    #[must_use]
    pub fn new(scheduler: Arc<Scheduler>, resolver: Resolver) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            results_dir: PathBuf::from("results"),
            cache_bytes: cache_bytes_from_env(std::env::var("SYNCPERF_CACHE_BYTES").ok()),
            request_timeout: Duration::from_secs(10),
            compute_patience: Duration::from_secs(60),
            max_connections: 2048,
            index_refresh: Duration::from_millis(500),
            scheduler,
            resolver,
            // Not the process-global recorder: that one is disabled
            // unless tracing was installed, and /stats (plus the CI
            // smoke test) needs these counters live unconditionally.
            recorder: Recorder::enabled(),
        }
    }
}

/// Parses a `SYNCPERF_CACHE_BYTES` value (plain bytes; `0`, absence,
/// or garbage mean unbounded).
#[must_use]
pub fn cache_bytes_from_env(v: Option<String>) -> Option<u64> {
    v.and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&b| b > 0)
}

/// The `serve.*` counter/histogram family.
#[derive(Debug, Clone)]
struct Counters {
    requests: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    computes: Counter,
    dedup_waits: Counter,
    evictions: Counter,
    errors: Counter,
    /// Connections rejected at accept time by the connection cap.
    rejected: Counter,
    /// Connections evicted by a read/write deadline.
    timeouts: Counter,
    /// All-endpoint request latency (`serve.latency_us`).
    latency_us: Histogram,
    /// Per-endpoint request counter + latency histogram, one row per
    /// [`ENDPOINT_LABELS`] entry.
    endpoints: Vec<(&'static str, Counter, Histogram)>,
}

impl Counters {
    fn new(rec: &Recorder) -> Self {
        Counters {
            requests: rec.counter("serve.requests"),
            cache_hits: rec.counter("serve.cache_hits"),
            cache_misses: rec.counter("serve.cache_misses"),
            computes: rec.counter("serve.computes"),
            dedup_waits: rec.counter("serve.dedup_waits"),
            evictions: rec.counter("serve.evictions"),
            errors: rec.counter("serve.errors"),
            rejected: rec.counter("serve.rejected"),
            timeouts: rec.counter("serve.timeouts"),
            latency_us: rec.histogram("serve.latency_us"),
            endpoints: ENDPOINT_LABELS
                .iter()
                .map(|&label| {
                    (
                        label,
                        rec.counter(&format!("serve.endpoint.{label}.requests")),
                        rec.histogram(&format!("serve.endpoint.{label}.latency_us")),
                    )
                })
                .collect(),
        }
    }

    /// Records one finished request against the overall and
    /// per-endpoint series.
    fn observe_request(&self, label: &str, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        self.latency_us.observe(us);
        if let Some((_, counter, hist)) = self.endpoints.iter().find(|(l, _, _)| *l == label) {
            counter.inc();
            hist.observe(us);
        }
    }
}

/// A point-in-time view of the `serve.*` counters, recoverable from
/// any obs [`Snapshot`] the way [`syncperf_sched::SchedStats`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests handled (all endpoints).
    pub requests: u64,
    /// `/job` + `/query` + `/compute` answers served from the index.
    pub cache_hits: u64,
    /// Lookups that found nothing cached.
    pub cache_misses: u64,
    /// Scheduler computations dispatched by `/compute`.
    pub computes: u64,
    /// `/compute` requests deduplicated onto another request's
    /// in-flight computation.
    pub dedup_waits: u64,
    /// Cache entries evicted by the size budget.
    pub evictions: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Connections shed by the connection cap (`503 + Retry-After`).
    pub rejected: u64,
    /// Connections evicted by a read/write deadline.
    pub timeouts: u64,
}

impl ServeStats {
    /// Extracts the `serve.*` counters from an obs snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        ServeStats {
            requests: snap.counter("serve.requests"),
            cache_hits: snap.counter("serve.cache_hits"),
            cache_misses: snap.counter("serve.cache_misses"),
            computes: snap.counter("serve.computes"),
            dedup_waits: snap.counter("serve.dedup_waits"),
            evictions: snap.counter("serve.evictions"),
            errors: snap.counter("serve.errors"),
            rejected: snap.counter("serve.rejected"),
            timeouts: snap.counter("serve.timeouts"),
        }
    }
}

/// A `/compute` measurement queued to the blocking pool.
struct ComputeTask {
    token: u64,
    job: Box<JobSpec>,
    hash: u64,
    keep_alive: bool,
    line: String,
    start: Instant,
}

/// A finished compute, traveling back to the reactor.
struct Done {
    token: u64,
    resp: Response,
    keep_alive: bool,
    line: String,
    start: Instant,
}

struct Shared {
    index: Arc<Index>,
    inflight: Arc<Inflight>,
    scheduler: Arc<Scheduler>,
    resolver: Resolver,
    results_dir: PathBuf,
    counters: Counters,
    recorder: Recorder,
    flight: FlightRecorder,
    compute_patience: Duration,
    shutdown: AtomicBool,
    /// Live connection count (gauge `serve.connections`).
    connections: AtomicU64,
    /// Finished computes awaiting reactor pickup.
    completions: Mutex<Vec<Done>>,
    waker: Waker,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("results_dir", &self.results_dir)
            .finish()
    }
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGTERM.load(Ordering::SeqCst)
    }
}

/// SIGTERM sets this process-global flag; every running server polls
/// it alongside its own shutdown flag.
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Whether the process received SIGTERM (replica supervisors poll
/// this to tear their children down).
#[must_use]
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Installs a SIGTERM handler that requests graceful shutdown of all
/// servers in the process. Uses the libc `signal` symbol std already
/// links; a no-op on non-unix targets.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigterm(_sig: i32) {
            SIGTERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGTERM_NO: i32 = 15;
        unsafe {
            signal(SIGTERM_NO, on_sigterm);
        }
    }
}

/// A running server: the bound address, the reactor thread, and the
/// compute pool.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Builds the index from the scheduler's cache, binds the
    /// listener, and starts the reactor + compute pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation errors.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let cache = cfg.scheduler.cache().cloned().unwrap_or_else(|| {
            syncperf_sched::Cache::new(cfg.scheduler.config().cache_dir.clone())
        });
        let index = Index::build(cache, cfg.cache_bytes);
        let inflight = Inflight::new();
        let counters = Counters::new(&cfg.recorder);

        // Incremental index updates + eviction ride the scheduler's
        // store hook, so entries written by /compute (or by any other
        // user of this scheduler) become queryable immediately.
        {
            let index = Arc::clone(&index);
            let inflight = Arc::clone(&inflight);
            let evictions = counters.evictions.clone();
            cfg.scheduler.set_store_hook(move |hash, m| {
                index.insert(hash, m);
                let n = index.evict_to_budget(&|h| inflight.contains(h));
                evictions.add(n);
            });
        }
        // Enforce the budget over pre-existing entries right away.
        counters
            .evictions
            .add(index.evict_to_budget(&|h| inflight.contains(h)));

        // Always-on flight recorder: the last ~1k annotated events,
        // auto-dumped for post-mortems when the process panics (and by
        // [`Server::wait`] on SIGTERM).
        let flight = FlightRecorder::default();
        flight.install_panic_dump(
            cfg.results_dir
                .join(format!("flightrec-{}.jsonl", std::process::id())),
        );

        let shared = Arc::new(Shared {
            index,
            inflight,
            scheduler: cfg.scheduler,
            resolver: cfg.resolver,
            results_dir: cfg.results_dir,
            counters,
            recorder: cfg.recorder,
            flight,
            compute_patience: cfg.compute_patience,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        });

        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        shared
            .flight
            .record("lifecycle", format!("listening on {addr}"));

        let (tx, rx) = mpsc::channel::<ComputeTask>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || compute_worker(&rx, &shared))
            })
            .collect();

        let loop_cfg = LoopConfig {
            request_timeout: cfg.request_timeout.max(Duration::from_millis(10)),
            compute_patience: cfg.compute_patience,
            max_connections: cfg.max_connections.max(1),
            index_refresh: cfg.index_refresh.max(Duration::from_millis(10)),
        };
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                if let Err(e) = event_loop(&listener, &shared, &loop_cfg, &tx) {
                    shared
                        .flight
                        .record("lifecycle", format!("reactor failed: {e}"));
                    shared.shutdown.store(true, Ordering::SeqCst);
                }
            })
        };
        Ok(Server {
            addr,
            shared,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound socket address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The measurement index (tests assert consistency through this;
    /// everything request-facing goes through the endpoints).
    #[must_use]
    pub fn index(&self) -> Arc<Index> {
        Arc::clone(&self.shared.index)
    }

    /// Whether shutdown has been requested (via [`Server::shutdown`],
    /// `/shutdown`, or SIGTERM).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Requests graceful shutdown and joins the reactor + compute
    /// pool: the reactor stops accepting and exits, workers finish
    /// their current measurement and exit.
    pub fn shutdown(mut self) {
        self.shared.flight.record("lifecycle", "shutdown");
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(r) = self.reactor.take() {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Blocks until shutdown is requested, then joins the workers. A
    /// SIGTERM-triggered exit also dumps every installed flight
    /// recorder to its `results/flightrec-<pid>.jsonl` post-mortem
    /// file, same as a panic would.
    pub fn wait(self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        if SIGTERM.load(Ordering::SeqCst) {
            self.shared.flight.record("lifecycle", "sigterm");
            obs::flight::dump_installed();
        }
        self.shutdown();
    }
}

/// Requests served per connection before the server forces a close — a
/// fairness bound so one chatty client cannot monopolize the loop, and
/// load-balancing churn for replica fleets behind a dumb balancer.
const MAX_REQUESTS_PER_CONNECTION: u32 = 128;

/// Reactor-internal configuration (the subset of [`ServeConfig`] the
/// event loop needs, with floors applied).
#[derive(Debug, Clone, Copy)]
struct LoopConfig {
    request_timeout: Duration,
    compute_patience: Duration,
    max_connections: usize,
    index_refresh: Duration,
}

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Per-connection state machine phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// Draining a queued response.
    Writing,
    /// A compute worker owns the pending response.
    Computing,
}

/// One nonblocking connection.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (partial or pipelined requests).
    buf: Vec<u8>,
    /// Response bytes not yet accepted by the kernel.
    out: Vec<u8>,
    out_pos: usize,
    /// Requests served on this connection.
    served: u32,
    /// Absolute deadline of the current phase; expiry evicts.
    deadline: Instant,
    state: ConnState,
    close_after_write: bool,
    /// Current epoll interest bits (to skip redundant `modify`s).
    interest: u32,
}

/// Whether a [`pump`] pass keeps the connection alive.
#[derive(Debug, PartialEq, Eq)]
enum Keep {
    Yes,
    /// Close and deregister the connection.
    No,
}

fn event_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    cfg: &LoopConfig,
    compute_tx: &mpsc::Sender<ComputeTask>,
) -> std::io::Result<()> {
    use std::os::fd::AsRawFd;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, READABLE)?;
    poller.add(shared.waker.read_fd(), WAKER_TOKEN, READABLE)?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events: Vec<Event> = Vec::new();
    let mut last_refresh = Instant::now();

    while !shared.shutting_down() {
        // Sleep until the next deadline (or a 50 ms tick for shutdown
        // responsiveness and the replica re-scan).
        let now = Instant::now();
        let mut timeout = Duration::from_millis(50);
        for c in conns.values() {
            timeout = timeout.min(c.deadline.saturating_duration_since(now));
        }
        events.clear();
        poller.wait(&mut events, Some(timeout))?;

        for ev in &events {
            match ev.token {
                LISTENER_TOKEN => {
                    accept_ready(listener, &poller, &mut conns, &mut next_token, shared, cfg);
                }
                WAKER_TOKEN => shared.waker.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let keep = on_conn_event(conn, ev, &poller, shared, cfg, compute_tx, token);
                    if keep == Keep::No {
                        drop_conn(&poller, &mut conns, token, shared);
                    }
                }
            }
        }

        deliver_completions(&poller, &mut conns, shared, cfg, compute_tx);
        sweep_deadlines(&poller, &mut conns, shared);

        if last_refresh.elapsed() >= cfg.index_refresh {
            last_refresh = Instant::now();
            let (added, removed) = shared.index.refresh();
            if added > 0 || removed > 0 {
                shared
                    .flight
                    .record("index", format!("replica re-scan: +{added} -{removed}"));
                let n = shared
                    .index
                    .evict_to_budget(&|h| shared.inflight.contains(h));
                shared.counters.evictions.add(n);
            }
        }
    }
    shared.connections.store(0, Ordering::Relaxed);
    Ok(())
}

/// Accepts until the listener would block; over-cap peers get an
/// immediate best-effort `503 + Retry-After` and a close.
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    shared: &Arc<Shared>,
    cfg: &LoopConfig,
) {
    use std::os::fd::AsRawFd;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= cfg.max_connections {
                    shared.counters.rejected.inc();
                    shared.flight.record("http", "503 connection cap reached");
                    let resp =
                        Response::error(503, "server at connection capacity").with_retry_after(1);
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.write(&render_response(&resp, false));
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                let interest = READABLE | RDHUP;
                if poller.add(stream.as_raw_fd(), token, interest).is_err() {
                    continue;
                }
                conns.insert(
                    token,
                    Conn {
                        stream,
                        buf: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        served: 0,
                        deadline: Instant::now() + cfg.request_timeout,
                        state: ConnState::Reading,
                        close_after_write: false,
                        interest,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break, // WouldBlock or transient accept failure
        }
    }
    shared
        .connections
        .store(conns.len() as u64, Ordering::Relaxed);
}

fn drop_conn(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64, shared: &Arc<Shared>) {
    use std::os::fd::AsRawFd;
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.delete(conn.stream.as_raw_fd());
    }
    shared
        .connections
        .store(conns.len() as u64, Ordering::Relaxed);
}

/// One readiness notification for an established connection.
fn on_conn_event(
    conn: &mut Conn,
    ev: &Event,
    poller: &Poller,
    shared: &Arc<Shared>,
    cfg: &LoopConfig,
    compute_tx: &mpsc::Sender<ComputeTask>,
    token: u64,
) -> Keep {
    match conn.state {
        ConnState::Reading if ev.readable() => {
            if read_some(conn) == Keep::No {
                return Keep::No;
            }
            pump(conn, poller, shared, cfg, compute_tx, token)
        }
        ConnState::Writing if ev.writable() => pump(conn, poller, shared, cfg, compute_tx, token),
        // While computing, only a peer hangup matters: the response
        // would be undeliverable, so free the slot early.
        ConnState::Computing if ev.closed() => Keep::No,
        _ => {
            if ev.closed() && conn.out.is_empty() {
                return Keep::No;
            }
            Keep::Yes
        }
    }
}

/// Drains the socket's readable bytes into the connection buffer.
fn read_some(conn: &mut Conn) -> Keep {
    use std::io::Read;
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: a peer that spoke and left gets no reply; a
                // half-open request dies with the connection.
                return Keep::No;
            }
            Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Keep::Yes,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Keep::No,
        }
    }
}

/// Outcome of one nonblocking flush attempt.
#[derive(Debug, PartialEq, Eq)]
enum Flush {
    Flushed,
    Partial,
    Dead,
}

fn try_flush(conn: &mut Conn) -> Flush {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Flush::Dead,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flush::Partial,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Flush::Dead,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    Flush::Flushed
}

/// Advances a connection's state machine as far as it can go without
/// blocking: parse buffered requests, route, queue + flush responses,
/// hand computes to the pool. Returns whether the connection stays.
fn pump(
    conn: &mut Conn,
    poller: &Poller,
    shared: &Arc<Shared>,
    cfg: &LoopConfig,
    compute_tx: &mpsc::Sender<ComputeTask>,
    token: u64,
) -> Keep {
    loop {
        match conn.state {
            ConnState::Writing => match try_flush(conn) {
                Flush::Dead => return Keep::No,
                Flush::Partial => {
                    conn.deadline = Instant::now() + cfg.request_timeout;
                    return set_interest(conn, poller, WRITABLE, token);
                }
                Flush::Flushed => {
                    if conn.close_after_write {
                        return Keep::No;
                    }
                    conn.state = ConnState::Reading;
                    conn.deadline = Instant::now() + cfg.request_timeout;
                }
            },
            ConnState::Reading => match try_parse(&conn.buf) {
                Ok(ParseStep::Incomplete) => {
                    return set_interest(conn, poller, READABLE | RDHUP, token);
                }
                Ok(ParseStep::Complete(req, consumed)) => {
                    conn.buf.drain(..consumed);
                    conn.served += 1;
                    shared.counters.requests.inc();
                    let start = Instant::now();
                    let line = format!("{} {}", req.method, req.path);
                    match route(&req, shared) {
                        Routed::Done(resp) => {
                            finish_request(conn, shared, &resp, req.keep_alive, &line, start);
                        }
                        Routed::Compute(job, hash) => {
                            let task = ComputeTask {
                                token,
                                job,
                                hash,
                                keep_alive: req.keep_alive,
                                line,
                                start,
                            };
                            if compute_tx.send(task).is_err() {
                                // Pool gone (shutdown): shed the request.
                                let resp = Response::error(503, "shutting down");
                                finish_request(conn, shared, &resp, false, "shed", start);
                                continue;
                            }
                            conn.state = ConnState::Computing;
                            conn.deadline = Instant::now()
                                + cfg.compute_patience
                                + cfg.request_timeout
                                + Duration::from_secs(5);
                            return set_interest(conn, poller, RDHUP, token);
                        }
                    }
                }
                Err(failure) => {
                    shared.counters.requests.inc();
                    let resp = Response::error(failure.status(), failure.message());
                    let line = format!("unparseable request ({})", failure.message());
                    finish_request(conn, shared, &resp, false, &line, Instant::now());
                }
            },
            ConnState::Computing => return Keep::Yes,
        }
    }
}

/// Updates epoll interest if it changed; a failed `modify` drops the
/// connection.
fn set_interest(conn: &mut Conn, poller: &Poller, interest: u32, token: u64) -> Keep {
    use std::os::fd::AsRawFd;
    if conn.interest == interest {
        return Keep::Yes;
    }
    if poller
        .modify(conn.stream.as_raw_fd(), token, interest)
        .is_err()
    {
        return Keep::No;
    }
    conn.interest = interest;
    Keep::Yes
}

/// Counts, records, and queues one finished response. Leaves the
/// connection in `Writing` with the bytes queued (the caller's pump
/// loop flushes).
fn finish_request(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    resp: &Response,
    client_keep_alive: bool,
    line: &str,
    start: Instant,
) {
    if resp.status >= 400 {
        shared.counters.errors.inc();
    }
    // Clean error statuses (404 miss, 400 bad params) keep the
    // connection: framing stayed intact, so reuse is safe. Parse
    // failures arrive with `client_keep_alive == false` — the buffer
    // can no longer be trusted. Shutdown also stops reuse so the
    // reactor can drain and exit promptly.
    let keep_alive =
        client_keep_alive && conn.served < MAX_REQUESTS_PER_CONNECTION && !shared.shutting_down();
    let label = request_label(line);
    let elapsed = start.elapsed();
    shared.counters.observe_request(label, elapsed);
    shared.flight.record(
        "http",
        format!("{line} -> {} in {}us", resp.status, elapsed.as_micros()),
    );
    conn.out
        .extend_from_slice(&render_response(resp, keep_alive));
    conn.close_after_write = !keep_alive;
    conn.state = ConnState::Writing;
    conn.deadline = start + Duration::from_secs(10).max(elapsed);
}

/// Recovers the endpoint label from a recorded `METHOD /path` line.
fn request_label(line: &str) -> &'static str {
    line.split_ascii_whitespace()
        .nth(1)
        .map_or("other", endpoint_label)
}

/// Hands every queued compute completion back to its connection (if
/// it still exists — deadline eviction may have won the race).
fn deliver_completions(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    shared: &Arc<Shared>,
    cfg: &LoopConfig,
    compute_tx: &mpsc::Sender<ComputeTask>,
) {
    let done: Vec<Done> = std::mem::take(&mut *shared.completions.lock().unwrap());
    for d in done {
        let Some(conn) = conns.get_mut(&d.token) else {
            continue; // evicted or hung up while computing
        };
        if conn.state != ConnState::Computing {
            continue;
        }
        finish_request(conn, shared, &d.resp, d.keep_alive, &d.line, d.start);
        let keep = pump(conn, poller, shared, cfg, compute_tx, d.token);
        if keep == Keep::No {
            drop_conn(poller, conns, d.token, shared);
        }
    }
}

/// Evicts every connection whose phase deadline has passed.
fn sweep_deadlines(poller: &Poller, conns: &mut HashMap<u64, Conn>, shared: &Arc<Shared>) {
    let now = Instant::now();
    let expired: Vec<u64> = conns
        .iter()
        .filter(|(_, c)| c.deadline <= now)
        .map(|(t, _)| *t)
        .collect();
    for token in expired {
        let Some(conn) = conns.get_mut(&token) else {
            continue;
        };
        let idle_keep_alive =
            conn.state == ConnState::Reading && conn.buf.is_empty() && conn.served > 0;
        if idle_keep_alive {
            // A keep-alive peer that finished its business: close
            // quietly, this is not an error.
            shared.flight.record("http", "idle keep-alive closed");
        } else {
            shared.counters.timeouts.inc();
            shared.flight.record(
                "http",
                format!(
                    "connection evicted by deadline ({:?}, {} buffered, {} served)",
                    conn.state,
                    conn.buf.len(),
                    conn.served
                ),
            );
            // A mid-request stall gets a best-effort 408; a slowloris
            // that never sent a byte gets a bare close.
            if conn.state == ConnState::Reading && !conn.buf.is_empty() {
                let resp = Response::error(408, "request timed out");
                let _ = conn.stream.write(&render_response(&resp, false));
            }
        }
        drop_conn(poller, conns, token, shared);
    }
}

/// The blocking compute-pool worker: pull a task, run the single-
/// writer claim protocol + measurement, queue the completion, wake
/// the reactor.
fn compute_worker(rx: &Arc<Mutex<mpsc::Receiver<ComputeTask>>>, shared: &Arc<Shared>) {
    loop {
        // Holding the lock across `recv` is fine: exactly one idle
        // worker sleeps in `recv` while the rest queue on the mutex,
        // and each task wakes exactly one of them.
        let task = {
            let rx = rx.lock().unwrap();
            rx.recv()
        };
        let Ok(task) = task else {
            return; // sender dropped: reactor exited
        };
        let resp = compute_response(shared, &task.job, task.hash);
        shared.completions.lock().unwrap().push(Done {
            token: task.token,
            resp,
            keep_alive: task.keep_alive,
            line: task.line,
            start: task.start,
        });
        shared.waker.wake();
    }
}

/// How routing answered a request: inline, or deferred to the pool.
enum Routed {
    Done(Response),
    Compute(Box<JobSpec>, u64),
}

fn route(req: &Request, shared: &Arc<Shared>) -> Routed {
    let resp = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/stats") => stats_response(shared),
        ("GET", "/metrics") => metrics_response(shared),
        ("GET", "/events") => events_response(req, shared),
        ("GET" | "POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"shutting_down\": true}\n")
        }
        ("GET", "/query") => handle_query(req, shared),
        ("POST", "/compute") => return handle_compute(req, shared),
        ("GET", path) if path.starts_with("/job/") => handle_job(&path[5..], shared),
        ("GET", path) if path.starts_with("/figure/") => handle_figure(&path[8..], shared),
        ("GET", path) if path.starts_with("/manifest/") => handle_manifest(&path[10..], shared),
        ("GET", _) => Response::error(404, "no such endpoint"),
        (_, "/query" | "/compute" | "/healthz" | "/stats" | "/metrics" | "/events") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    };
    Routed::Done(resp)
}

/// The full live snapshot behind `GET /metrics`: the server's own
/// recorder (request counters + endpoint histograms), the scheduler's
/// exported telemetry, and the index/inflight/connection gauges.
fn telemetry_snapshot(shared: &Arc<Shared>) -> Snapshot {
    use syncperf_core::obs::GaugeMode;
    let mut snap = shared.recorder.snapshot();
    shared.scheduler.export_into(&mut snap);
    for (name, v, mode) in [
        (
            "serve.index_entries",
            shared.index.len() as u64,
            GaugeMode::Set,
        ),
        (
            "serve.index_bytes",
            shared.index.total_bytes(),
            GaugeMode::Set,
        ),
        (
            "serve.inflight",
            shared.inflight.len() as u64,
            GaugeMode::Set,
        ),
        (
            "serve.connections",
            shared.connections.load(Ordering::Relaxed),
            GaugeMode::Set,
        ),
        (
            "serve.flight_events",
            shared.flight.recorded(),
            GaugeMode::Set,
        ),
    ] {
        snap.gauges.insert(name.to_string(), v);
        snap.gauge_modes.insert(name.to_string(), mode);
    }
    snap
}

fn metrics_response(shared: &Arc<Shared>) -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: obs::metrics::render(&telemetry_snapshot(shared)),
        retry_after: None,
    }
}

/// `GET /events?n=..`: the last `n` flight-recorder entries (default
/// 100) as JSONL, oldest first.
fn events_response(req: &Request, shared: &Arc<Shared>) -> Response {
    let n = match req.query_param("n") {
        None => 100,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "`n` must be a non-negative integer"),
        },
    };
    let body: String = shared
        .flight
        .tail(n)
        .iter()
        .map(|e| e.to_json() + "\n")
        .collect();
    Response {
        status: 200,
        content_type: "application/x-ndjson",
        body,
        retry_after: None,
    }
}

/// Renders a measurement answer. The measurement body is the cache
/// entry encoding itself, so a served answer is byte-identical to the
/// on-disk entry (and to what a scheduler recompute would produce) —
/// which is also why any replica sharing the cache directory serves
/// byte-identical responses for a cached hash.
fn measurement_response(
    hash: u64,
    m: &Measurement,
    source: &str,
    distance: Option<u32>,
) -> Response {
    let mut body = String::from("{\n");
    body.push_str(&format!("\"hash\": \"{}\",\n", hex16(hash)));
    body.push_str(&format!("\"source\": {},\n", json_string(source)));
    if let Some(d) = distance {
        body.push_str(&format!("\"distance\": {d},\n"));
    }
    body.push_str(&format!(
        "\"measurement\": {}}}\n",
        encode_measurement(hash, m)
    ));
    Response::json(200, body)
}

fn handle_job(hash_str: &str, shared: &Arc<Shared>) -> Response {
    let Some(hash) = parse_hex16(hash_str) else {
        return Response::error(400, "job hash must be 16 hex digits");
    };
    if let Some(pin) = shared.index.get(hash) {
        shared.counters.cache_hits.inc();
        measurement_response(hash, pin.measurement(), "cache", None)
    } else {
        shared.counters.cache_misses.inc();
        Response::error(404, "no cached measurement for that hash")
    }
}

fn handle_query(req: &Request, shared: &Arc<Shared>) -> Response {
    let Some(kernel) = req.query_param("kernel") else {
        return Response::error(400, "missing `kernel` parameter");
    };
    let Some(threads) = req.query_param("threads").and_then(|t| t.parse().ok()) else {
        return Response::error(400, "missing or non-numeric `threads` parameter");
    };
    let blocks = match req.query_param("blocks") {
        None => None,
        Some(b) => match b.parse() {
            Ok(b) => Some(b),
            Err(_) => return Response::error(400, "non-numeric `blocks` parameter"),
        },
    };
    let q = Query {
        kernel: kernel.to_string(),
        dtype: req.query_param("dtype").map(str::to_string),
        threads,
        blocks,
        exact: matches!(req.query_param("exact"), Some("1" | "true")),
    };
    if let Some(found) = shared.index.query(&q) {
        shared.counters.cache_hits.inc();
        measurement_response(
            found.hash,
            found.pin.measurement(),
            "cache",
            Some(found.distance),
        )
    } else {
        shared.counters.cache_misses.inc();
        Response::error(404, "no cached sweep point matches")
    }
}

fn handle_figure(name: &str, shared: &Arc<Shared>) -> Response {
    let (stem, svg) = match name.strip_suffix(".svg") {
        Some(stem) => (stem, true),
        None => (name.strip_suffix(".csv").unwrap_or(name), false),
    };
    // The allowlist is the charset: figure ids are [a-z0-9_] with no
    // separators, so nothing can escape the results directory.
    if stem.is_empty()
        || !stem
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Response::error(400, "figure names are alphanumeric/underscore only");
    }
    let ext = if svg { "svg" } else { "csv" };
    let path = shared.results_dir.join(format!("{stem}.{ext}"));
    match std::fs::read_to_string(&path) {
        Ok(body) => Response {
            status: 200,
            content_type: if svg { "image/svg+xml" } else { "text/csv" },
            body,
            retry_after: None,
        },
        Err(_) => Response::error(404, "no such figure output (regenerate it first)"),
    }
}

/// `GET /manifest/<label>`: the per-label checkpoint manifest, so a
/// client can resume a partial sweep against this replica's cache.
/// Labels pass through the same sanitizer the scheduler writes them
/// with, so no request can escape the cache directory.
fn handle_manifest(label: &str, shared: &Arc<Shared>) -> Response {
    if label.is_empty() {
        return Response::error(400, "missing checkpoint label");
    }
    let path = Checkpoint::path_for(shared.index.cache().dir(), label);
    match std::fs::read_to_string(&path) {
        Ok(body) => Response::json(200, body),
        Err(_) => Response::error(
            404,
            "no checkpoint manifest for that label (labels sanitize to [A-Za-z0-9_-])",
        ),
    }
}

/// `POST /compute` routing: cache hits answer inline; misses resolve
/// to a [`JobSpec`] and defer to the compute pool.
fn handle_compute(req: &Request, shared: &Arc<Shared>) -> Routed {
    let spec = match ComputeRequest::from_json(&req.body) {
        Ok(spec) => spec,
        Err(msg) => return Routed::Done(Response::error(400, &msg)),
    };
    let Some(job) = (shared.resolver)(&spec) else {
        return Routed::Done(Response::error(
            422,
            "unknown kernel/executor combination (see /stats for counts, docs/SERVING.md for the spec format)",
        ));
    };
    let hash = shared.scheduler.job_hash(&job);

    // Fast path: already cached and indexed.
    if let Some(pin) = shared.index.get(hash) {
        shared.counters.cache_hits.inc();
        return Routed::Done(measurement_response(hash, pin.measurement(), "cache", None));
    }
    shared.counters.cache_misses.inc();
    Routed::Compute(Box::new(job), hash)
}

/// The blocking half of `/compute`, run on a pool worker:
/// single-writer-per-entry via the inflight table, then the scheduler
/// measurement.
fn compute_response(shared: &Arc<Shared>, job: &JobSpec, hash: u64) -> Response {
    // The queue wait may have been long enough for someone else (or
    // another replica) to fill the cache.
    if let Some(pin) = shared.index.get(hash) {
        return measurement_response(hash, pin.measurement(), "cache", None);
    }
    loop {
        match shared.inflight.claim_or_wait(hash, shared.compute_patience) {
            Claim::Owner(guard) => {
                shared.counters.computes.inc();
                let result = shared.scheduler.measure(job.clone());
                guard.complete();
                return match result {
                    // The store hook has already indexed the entry.
                    Ok(m) => measurement_response(hash, &m, "computed", None),
                    Err(e) => Response::error(500, &format!("measurement failed: {e}")),
                };
            }
            Claim::Waited => {
                shared.counters.dedup_waits.inc();
                if let Some(pin) = shared.index.get(hash) {
                    return measurement_response(hash, pin.measurement(), "deduplicated", None);
                }
                // The owner failed (nothing landed in the index):
                // loop and claim ownership ourselves.
            }
            Claim::TimedOut => {
                return Response::error(503, "computation in flight; retry later")
                    .with_retry_after(1);
            }
        }
    }
}

fn stats_response(shared: &Arc<Shared>) -> Response {
    let c = &shared.counters;
    let sched = shared.scheduler.stats();
    let mut body = String::from("{\n");
    body.push_str(&format!(
        "\"serve\": {{\"requests\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"computes\": {}, \"dedup_waits\": {}, \"evictions\": {}, \"errors\": {}, \
         \"rejected\": {}, \"timeouts\": {}, \"connections\": {}}},\n",
        c.requests.get(),
        c.cache_hits.get(),
        c.cache_misses.get(),
        c.computes.get(),
        c.dedup_waits.get(),
        c.evictions.get(),
        c.errors.get(),
        c.rejected.get(),
        c.timeouts.get(),
        shared.connections.load(Ordering::Relaxed),
    ));
    let lat = c.latency_us.snapshot();
    body.push_str(&format!(
        "\"latency_us\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n",
        lat.count(),
        lat.quantile(0.50),
        lat.quantile(0.90),
        lat.quantile(0.99),
        lat.max(),
    ));
    body.push_str(&format!(
        "\"index\": {{\"entries\": {}, \"bytes\": {}, \"budget_bytes\": {}, \"inflight\": {}}},\n",
        shared.index.len(),
        shared.index.total_bytes(),
        shared
            .index
            .budget()
            .map_or_else(|| "null".into(), |b| b.to_string()),
        shared.inflight.len(),
    ));
    body.push_str(&format!(
        "\"sched\": {{\"jobs\": {}, \"executed\": {}, \"cache_hits\": {}, \"cache_stores\": {}}}\n",
        sched.jobs, sched.executed, sched.cache_hits, sched.cache_stores,
    ));
    body.push('}');
    body.push('\n');
    Response::json(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_request_parses_and_validates() {
        let spec = ComputeRequest::from_json(
            "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 8}",
        )
        .unwrap();
        assert_eq!(spec.executor, "cpu-sim");
        assert_eq!(spec.kernel, "omp_barrier");
        assert_eq!(spec.threads, 8);
        assert_eq!(spec.blocks, None);

        assert!(ComputeRequest::from_json("not json").is_err());
        assert!(ComputeRequest::from_json("{\"executor\": \"cpu-sim\"}").is_err());
        assert!(ComputeRequest::from_json(
            "{\"executor\": \"x\", \"kernel\": \"k\", \"threads\": -1}"
        )
        .is_err());
        assert!(ComputeRequest::from_json(
            "{\"executor\": \"x\", \"kernel\": \"k\", \"threads\": 1.5}"
        )
        .is_err());
    }

    #[test]
    fn cache_bytes_env_parsing() {
        assert_eq!(cache_bytes_from_env(None), None);
        assert_eq!(cache_bytes_from_env(Some("0".into())), None);
        assert_eq!(cache_bytes_from_env(Some("garbage".into())), None);
        assert_eq!(cache_bytes_from_env(Some(" 4096 ".into())), Some(4096));
    }

    #[test]
    fn serve_stats_mirror_snapshot() {
        let rec = Recorder::enabled();
        let c = Counters::new(&rec);
        c.requests.add(3);
        c.cache_hits.add(2);
        c.rejected.inc();
        c.timeouts.inc();
        c.observe_request("stats", Duration::from_micros(50));
        c.observe_request("query", Duration::from_millis(5));
        let snap = rec.snapshot();
        let stats = ServeStats::from_snapshot(&snap);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(snap.histogram("serve.latency_us").count(), 2);
        assert_eq!(snap.histogram("serve.endpoint.stats.latency_us").count(), 1);
        assert_eq!(snap.histogram("serve.endpoint.query.latency_us").count(), 1);
        assert_eq!(snap.counter("serve.endpoint.stats.requests"), 1);
        assert_eq!(snap.counter("serve.endpoint.query.requests"), 1);
    }

    #[test]
    fn endpoint_labels_cover_every_route() {
        assert_eq!(endpoint_label("/healthz"), "healthz");
        assert_eq!(endpoint_label("/metrics"), "metrics");
        assert_eq!(endpoint_label("/events"), "events");
        assert_eq!(endpoint_label("/job/0011223344556677"), "job");
        assert_eq!(endpoint_label("/figure/fig01.csv"), "figure");
        assert_eq!(endpoint_label("/manifest/all_figures"), "manifest");
        assert_eq!(endpoint_label("/nope"), "other");
        for label in [
            endpoint_label("/stats"),
            endpoint_label("/query"),
            endpoint_label("/compute"),
            endpoint_label("/shutdown"),
            endpoint_label("/"),
        ] {
            assert!(ENDPOINT_LABELS.contains(&label));
        }
    }

    #[test]
    fn request_labels_recover_from_flight_lines() {
        assert_eq!(request_label("GET /query"), "query");
        assert_eq!(request_label("POST /compute"), "compute");
        assert_eq!(request_label("GET /manifest/all_figures"), "manifest");
        assert_eq!(request_label("unparseable request (x)"), "other");
    }
}
