//! The query service proper: a bounded accept pool over
//! `std::net::TcpListener`, request routing, and the compute-on-miss
//! path through the sweep scheduler.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use syncperf_core::obs::{self, Counter, FlightRecorder, Histogram, Recorder, Snapshot};
use syncperf_core::Measurement;
use syncperf_sched::cache::encode_measurement;
use syncperf_sched::{hash::hex16, hash::parse_hex16, JobSpec, Scheduler};

use crate::http::{json_string, read_request, write_response, ParseFailure, Request, Response};
use crate::index::{Index, Query};
use crate::inflight::{Claim, Inflight};

/// The fixed endpoint label set request counters and latency
/// histograms are split by (`other` absorbs unknown paths and parse
/// failures). Metric names embed these labels:
/// `serve.endpoint.<label>.requests` / `serve.endpoint.<label>.latency_us`.
pub const ENDPOINT_LABELS: [&str; 10] = [
    "healthz", "stats", "metrics", "events", "query", "job", "figure", "compute", "shutdown",
    "other",
];

/// Classifies a request path into one of [`ENDPOINT_LABELS`].
#[must_use]
pub fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/events" => "events",
        "/query" => "query",
        "/compute" => "compute",
        "/shutdown" => "shutdown",
        p if p.starts_with("/job/") => "job",
        p if p.starts_with("/figure/") => "figure",
        _ => "other",
    }
}

/// A parsed `POST /compute` request body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComputeRequest {
    /// Executor kind: `cpu-sim` or `gpu-sim` (real-thread jobs are
    /// host-scoped and not served remotely).
    pub executor: String,
    /// Full kernel name (e.g. `omp_atomicadd_scalar_int`).
    pub kernel: String,
    /// Thread count (CPU: team size; GPU: threads per block).
    pub threads: u32,
    /// Block count (GPU; ignored for CPU kernels).
    pub blocks: Option<u32>,
    /// Affinity label (`spread`, `close`, `system`).
    pub affinity: Option<String>,
    /// Measured loop iterations (resolver default when absent).
    pub n_iter: Option<u32>,
    /// Unrolled ops per iteration (resolver default when absent).
    pub n_unroll: Option<u32>,
}

impl ComputeRequest {
    /// Parses a request from its JSON body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed bodies.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let v = syncperf_core::obs::json::parse(body).map_err(|e| format!("bad JSON: {e:?}"))?;
        let get_str = |k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
        let get_u32 = |k: &str| -> Result<Option<u32>, String> {
            match v.get(k) {
                None => Ok(None),
                Some(x) => {
                    let f = x
                        .as_f64()
                        .ok_or_else(|| format!("`{k}` must be a number"))?;
                    if f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f <= f64::from(u32::MAX) {
                        Ok(Some(f as u32))
                    } else {
                        Err(format!("`{k}` must be a non-negative integer"))
                    }
                }
            }
        };
        Ok(ComputeRequest {
            executor: get_str("executor").ok_or("missing `executor`")?,
            kernel: get_str("kernel").ok_or("missing `kernel`")?,
            threads: get_u32("threads")?.ok_or("missing `threads`")?,
            blocks: get_u32("blocks")?,
            affinity: get_str("affinity"),
            n_iter: get_u32("n_iter")?,
            n_unroll: get_u32("n_unroll")?,
        })
    }
}

/// Maps a [`ComputeRequest`] to a concrete [`JobSpec`], or `None`
/// when the kernel/executor combination is unknown. The bench crate
/// supplies a resolver over its kernel registry.
pub type Resolver = Box<dyn Fn(&ComputeRequest) -> Option<JobSpec> + Send + Sync>;

/// Server configuration.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Accept-pool worker threads.
    pub workers: usize,
    /// Directory figure CSV/SVG files are served from.
    pub results_dir: PathBuf,
    /// On-disk cache size budget in bytes (`None` = unbounded).
    pub cache_bytes: Option<u64>,
    /// Per-request socket read/write timeout.
    pub request_timeout: Duration,
    /// How long a deduplicated `/compute` waits for the owning
    /// computation before answering 503.
    pub compute_patience: Duration,
    /// The scheduler computes run on (its cache dir is the index's
    /// source of truth).
    pub scheduler: Arc<Scheduler>,
    /// Compute-request resolver.
    pub resolver: Resolver,
    /// Recorder the `serve.*` counters register in.
    pub recorder: Recorder,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("results_dir", &self.results_dir)
            .field("cache_bytes", &self.cache_bytes)
            .finish()
    }
}

impl ServeConfig {
    /// A config with sensible defaults: 4 workers, 10 s timeouts, the
    /// budget from `SYNCPERF_CACHE_BYTES` (unset or unparsable =
    /// unbounded), serving figures from `results_dir`.
    #[must_use]
    pub fn new(scheduler: Arc<Scheduler>, resolver: Resolver) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            results_dir: PathBuf::from("results"),
            cache_bytes: cache_bytes_from_env(std::env::var("SYNCPERF_CACHE_BYTES").ok()),
            request_timeout: Duration::from_secs(10),
            compute_patience: Duration::from_secs(60),
            scheduler,
            resolver,
            // Not the process-global recorder: that one is disabled
            // unless tracing was installed, and /stats (plus the CI
            // smoke test) needs these counters live unconditionally.
            recorder: Recorder::enabled(),
        }
    }
}

/// Parses a `SYNCPERF_CACHE_BYTES` value (plain bytes; `0`, absence,
/// or garbage mean unbounded).
#[must_use]
pub fn cache_bytes_from_env(v: Option<String>) -> Option<u64> {
    v.and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&b| b > 0)
}

/// The `serve.*` counter/histogram family.
#[derive(Debug, Clone)]
struct Counters {
    requests: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    computes: Counter,
    dedup_waits: Counter,
    evictions: Counter,
    errors: Counter,
    /// All-endpoint request latency (`serve.latency_us`).
    latency_us: Histogram,
    /// Per-endpoint request counter + latency histogram, one row per
    /// [`ENDPOINT_LABELS`] entry.
    endpoints: Vec<(&'static str, Counter, Histogram)>,
}

impl Counters {
    fn new(rec: &Recorder) -> Self {
        Counters {
            requests: rec.counter("serve.requests"),
            cache_hits: rec.counter("serve.cache_hits"),
            cache_misses: rec.counter("serve.cache_misses"),
            computes: rec.counter("serve.computes"),
            dedup_waits: rec.counter("serve.dedup_waits"),
            evictions: rec.counter("serve.evictions"),
            errors: rec.counter("serve.errors"),
            latency_us: rec.histogram("serve.latency_us"),
            endpoints: ENDPOINT_LABELS
                .iter()
                .map(|&label| {
                    (
                        label,
                        rec.counter(&format!("serve.endpoint.{label}.requests")),
                        rec.histogram(&format!("serve.endpoint.{label}.latency_us")),
                    )
                })
                .collect(),
        }
    }

    /// Records one finished request against the overall and
    /// per-endpoint series.
    fn observe_request(&self, label: &str, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        self.latency_us.observe(us);
        if let Some((_, counter, hist)) = self.endpoints.iter().find(|(l, _, _)| *l == label) {
            counter.inc();
            hist.observe(us);
        }
    }
}

/// A point-in-time view of the `serve.*` counters, recoverable from
/// any obs [`Snapshot`] the way [`syncperf_sched::SchedStats`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests handled (all endpoints).
    pub requests: u64,
    /// `/job` + `/query` + `/compute` answers served from the index.
    pub cache_hits: u64,
    /// Lookups that found nothing cached.
    pub cache_misses: u64,
    /// Scheduler computations dispatched by `/compute`.
    pub computes: u64,
    /// `/compute` requests deduplicated onto another request's
    /// in-flight computation.
    pub dedup_waits: u64,
    /// Cache entries evicted by the size budget.
    pub evictions: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
}

impl ServeStats {
    /// Extracts the `serve.*` counters from an obs snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        ServeStats {
            requests: snap.counter("serve.requests"),
            cache_hits: snap.counter("serve.cache_hits"),
            cache_misses: snap.counter("serve.cache_misses"),
            computes: snap.counter("serve.computes"),
            dedup_waits: snap.counter("serve.dedup_waits"),
            evictions: snap.counter("serve.evictions"),
            errors: snap.counter("serve.errors"),
        }
    }
}

struct Shared {
    index: Arc<Index>,
    inflight: Arc<Inflight>,
    scheduler: Arc<Scheduler>,
    resolver: Resolver,
    results_dir: PathBuf,
    counters: Counters,
    recorder: Recorder,
    flight: FlightRecorder,
    compute_patience: Duration,
    shutdown: AtomicBool,
}

/// SIGTERM sets this process-global flag; every running server polls
/// it alongside its own shutdown flag.
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Installs a SIGTERM handler that requests graceful shutdown of all
/// servers in the process. Uses the libc `signal` symbol std already
/// links; a no-op on non-unix targets.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigterm(_sig: i32) {
            SIGTERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGTERM_NO: i32 = 15;
        unsafe {
            signal(SIGTERM_NO, on_sigterm);
        }
    }
}

/// A running server: the bound address plus worker handles.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("results_dir", &self.results_dir)
            .finish()
    }
}

impl Server {
    /// Builds the index from the scheduler's cache, binds the
    /// listener, and starts the accept pool.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let cache = cfg.scheduler.cache().cloned().unwrap_or_else(|| {
            syncperf_sched::Cache::new(cfg.scheduler.config().cache_dir.clone())
        });
        let index = Index::build(cache, cfg.cache_bytes);
        let inflight = Inflight::new();
        let counters = Counters::new(&cfg.recorder);

        // Incremental index updates + eviction ride the scheduler's
        // store hook, so entries written by /compute (or by any other
        // user of this scheduler) become queryable immediately.
        {
            let index = Arc::clone(&index);
            let inflight = Arc::clone(&inflight);
            let evictions = counters.evictions.clone();
            cfg.scheduler.set_store_hook(move |hash, m| {
                index.insert(hash, m);
                let n = index.evict_to_budget(&|h| inflight.contains(h));
                evictions.add(n);
            });
        }
        // Enforce the budget over pre-existing entries right away.
        counters
            .evictions
            .add(index.evict_to_budget(&|h| inflight.contains(h)));

        // Always-on flight recorder: the last ~1k annotated events,
        // auto-dumped for post-mortems when the process panics (and by
        // [`Server::wait`] on SIGTERM).
        let flight = FlightRecorder::default();
        flight.install_panic_dump(
            cfg.results_dir
                .join(format!("flightrec-{}.jsonl", std::process::id())),
        );

        let shared = Arc::new(Shared {
            index,
            inflight,
            scheduler: cfg.scheduler,
            resolver: cfg.resolver,
            results_dir: cfg.results_dir,
            counters,
            recorder: cfg.recorder,
            flight,
            compute_patience: cfg.compute_patience,
            shutdown: AtomicBool::new(false),
        });

        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        shared
            .flight
            .record("lifecycle", format!("listening on {addr}"));
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let listener = listener.try_clone().expect("clone listener");
                let shared = Arc::clone(&shared);
                let timeout = cfg.request_timeout;
                std::thread::spawn(move || accept_loop(&listener, &shared, timeout))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            workers,
        })
    }

    /// The bound socket address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The measurement index (tests assert consistency through this;
    /// everything request-facing goes through the endpoints).
    #[must_use]
    pub fn index(&self) -> Arc<Index> {
        Arc::clone(&self.shared.index)
    }

    /// Whether shutdown has been requested (via [`Server::shutdown`],
    /// `/shutdown`, or SIGTERM).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst) || SIGTERM.load(Ordering::SeqCst)
    }

    /// Requests graceful shutdown and joins the accept pool: workers
    /// stop accepting, finish their current request, and exit.
    pub fn shutdown(self) {
        self.shared.flight.record("lifecycle", "shutdown");
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Blocks until shutdown is requested, then joins the workers. A
    /// SIGTERM-triggered exit also dumps every installed flight
    /// recorder to its `results/flightrec-<pid>.jsonl` post-mortem
    /// file, same as a panic would.
    pub fn wait(self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        if SIGTERM.load(Ordering::SeqCst) {
            self.shared.flight.record("lifecycle", "sigterm");
            obs::flight::dump_installed();
        }
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, timeout: Duration) {
    while !shared.shutdown.load(Ordering::SeqCst) && !SIGTERM.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(timeout));
                let _ = stream.set_write_timeout(Some(timeout));
                handle_connection(&mut stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Requests served per connection before the server forces a close — a
/// fairness bound so one chatty client cannot pin an accept worker
/// forever.
const MAX_REQUESTS_PER_CONNECTION: u32 = 128;

fn handle_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    for served in 0..MAX_REQUESTS_PER_CONNECTION {
        let start = Instant::now();
        let parsed = read_request(stream);
        // The peer closed or idled out between requests: nothing to
        // answer, nothing to count.
        if served > 0 && matches!(parsed, Err(ParseFailure::Idle)) {
            return;
        }
        shared.counters.requests.inc();
        let (resp, client_keep_alive, label, line) = match parsed {
            Ok(req) => {
                let ka = req.keep_alive;
                let label = endpoint_label(&req.path);
                let line = format!("{} {}", req.method, req.path);
                (route(&req, shared), ka, label, line)
            }
            Err(ParseFailure::BadRequest(msg)) => (
                Response::error(400, msg),
                false,
                "other",
                "unparseable request".to_string(),
            ),
            Err(ParseFailure::Timeout | ParseFailure::Idle) => (
                Response::error(408, "request timed out"),
                false,
                "other",
                "request timeout".to_string(),
            ),
        };
        if resp.status >= 400 {
            shared.counters.errors.inc();
        }
        // Stop reusing the connection once shutdown is in flight so
        // accept workers can drain and exit promptly.
        let keep_alive = client_keep_alive
            && served + 1 < MAX_REQUESTS_PER_CONNECTION
            && !shared.shutdown.load(Ordering::SeqCst)
            && !SIGTERM.load(Ordering::SeqCst);
        write_response(stream, &resp, keep_alive);
        let elapsed = start.elapsed();
        shared.counters.observe_request(label, elapsed);
        shared.flight.record(
            "http",
            format!("{line} -> {} in {}us", resp.status, elapsed.as_micros()),
        );
        if !keep_alive {
            return;
        }
    }
}

fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/stats") => stats_response(shared),
        ("GET", "/metrics") => metrics_response(shared),
        ("GET", "/events") => events_response(req, shared),
        ("GET" | "POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"shutting_down\": true}\n")
        }
        ("GET", "/query") => handle_query(req, shared),
        ("POST", "/compute") => handle_compute(req, shared),
        ("GET", path) if path.starts_with("/job/") => handle_job(&path[5..], shared),
        ("GET", path) if path.starts_with("/figure/") => handle_figure(&path[8..], shared),
        ("GET", _) => Response::error(404, "no such endpoint"),
        (_, "/query" | "/compute" | "/healthz" | "/stats" | "/metrics" | "/events") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// The full live snapshot behind `GET /metrics`: the server's own
/// recorder (request counters + endpoint histograms), the scheduler's
/// exported telemetry, and the index/inflight gauges.
fn telemetry_snapshot(shared: &Arc<Shared>) -> Snapshot {
    use syncperf_core::obs::GaugeMode;
    let mut snap = shared.recorder.snapshot();
    shared.scheduler.export_into(&mut snap);
    for (name, v, mode) in [
        (
            "serve.index_entries",
            shared.index.len() as u64,
            GaugeMode::Set,
        ),
        (
            "serve.index_bytes",
            shared.index.total_bytes(),
            GaugeMode::Set,
        ),
        (
            "serve.inflight",
            shared.inflight.len() as u64,
            GaugeMode::Set,
        ),
        (
            "serve.flight_events",
            shared.flight.recorded(),
            GaugeMode::Set,
        ),
    ] {
        snap.gauges.insert(name.to_string(), v);
        snap.gauge_modes.insert(name.to_string(), mode);
    }
    snap
}

fn metrics_response(shared: &Arc<Shared>) -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: obs::metrics::render(&telemetry_snapshot(shared)),
    }
}

/// `GET /events?n=..`: the last `n` flight-recorder entries (default
/// 100) as JSONL, oldest first.
fn events_response(req: &Request, shared: &Arc<Shared>) -> Response {
    let n = match req.query_param("n") {
        None => 100,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "`n` must be a non-negative integer"),
        },
    };
    let body: String = shared
        .flight
        .tail(n)
        .iter()
        .map(|e| e.to_json() + "\n")
        .collect();
    Response {
        status: 200,
        content_type: "application/x-ndjson",
        body,
    }
}

/// Renders a measurement answer. The measurement body is the cache
/// entry encoding itself, so a served answer is byte-identical to the
/// on-disk entry (and to what a scheduler recompute would produce).
fn measurement_response(
    hash: u64,
    m: &Measurement,
    source: &str,
    distance: Option<u32>,
) -> Response {
    let mut body = String::from("{\n");
    body.push_str(&format!("\"hash\": \"{}\",\n", hex16(hash)));
    body.push_str(&format!("\"source\": {},\n", json_string(source)));
    if let Some(d) = distance {
        body.push_str(&format!("\"distance\": {d},\n"));
    }
    body.push_str(&format!(
        "\"measurement\": {}}}\n",
        encode_measurement(hash, m)
    ));
    Response::json(200, body)
}

fn handle_job(hash_str: &str, shared: &Arc<Shared>) -> Response {
    let Some(hash) = parse_hex16(hash_str) else {
        return Response::error(400, "job hash must be 16 hex digits");
    };
    if let Some(pin) = shared.index.get(hash) {
        shared.counters.cache_hits.inc();
        measurement_response(hash, pin.measurement(), "cache", None)
    } else {
        shared.counters.cache_misses.inc();
        Response::error(404, "no cached measurement for that hash")
    }
}

fn handle_query(req: &Request, shared: &Arc<Shared>) -> Response {
    let Some(kernel) = req.query_param("kernel") else {
        return Response::error(400, "missing `kernel` parameter");
    };
    let Some(threads) = req.query_param("threads").and_then(|t| t.parse().ok()) else {
        return Response::error(400, "missing or non-numeric `threads` parameter");
    };
    let blocks = match req.query_param("blocks") {
        None => None,
        Some(b) => match b.parse() {
            Ok(b) => Some(b),
            Err(_) => return Response::error(400, "non-numeric `blocks` parameter"),
        },
    };
    let q = Query {
        kernel: kernel.to_string(),
        dtype: req.query_param("dtype").map(str::to_string),
        threads,
        blocks,
        exact: matches!(req.query_param("exact"), Some("1" | "true")),
    };
    if let Some(found) = shared.index.query(&q) {
        shared.counters.cache_hits.inc();
        measurement_response(
            found.hash,
            found.pin.measurement(),
            "cache",
            Some(found.distance),
        )
    } else {
        shared.counters.cache_misses.inc();
        Response::error(404, "no cached sweep point matches")
    }
}

fn handle_figure(name: &str, shared: &Arc<Shared>) -> Response {
    let (stem, svg) = match name.strip_suffix(".svg") {
        Some(stem) => (stem, true),
        None => (name.strip_suffix(".csv").unwrap_or(name), false),
    };
    // The allowlist is the charset: figure ids are [a-z0-9_] with no
    // separators, so nothing can escape the results directory.
    if stem.is_empty()
        || !stem
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Response::error(400, "figure names are alphanumeric/underscore only");
    }
    let ext = if svg { "svg" } else { "csv" };
    let path = shared.results_dir.join(format!("{stem}.{ext}"));
    match std::fs::read_to_string(&path) {
        Ok(body) => Response {
            status: 200,
            content_type: if svg { "image/svg+xml" } else { "text/csv" },
            body,
        },
        Err(_) => Response::error(404, "no such figure output (regenerate it first)"),
    }
}

fn handle_compute(req: &Request, shared: &Arc<Shared>) -> Response {
    let spec = match ComputeRequest::from_json(&req.body) {
        Ok(spec) => spec,
        Err(msg) => return Response::error(400, &msg),
    };
    let Some(job) = (shared.resolver)(&spec) else {
        return Response::error(
            422,
            "unknown kernel/executor combination (see /stats for counts, docs/SERVING.md for the spec format)",
        );
    };
    let hash = shared.scheduler.job_hash(&job);

    // Fast path: already cached and indexed.
    if let Some(pin) = shared.index.get(hash) {
        shared.counters.cache_hits.inc();
        return measurement_response(hash, pin.measurement(), "cache", None);
    }
    shared.counters.cache_misses.inc();

    // Single-writer-per-entry: claim the hash or wait for its owner.
    loop {
        match shared.inflight.claim_or_wait(hash, shared.compute_patience) {
            Claim::Owner(guard) => {
                shared.counters.computes.inc();
                let result = shared.scheduler.measure(job);
                guard.complete();
                return match result {
                    // The store hook has already indexed the entry.
                    Ok(m) => measurement_response(hash, &m, "computed", None),
                    Err(e) => Response::error(500, &format!("measurement failed: {e}")),
                };
            }
            Claim::Waited => {
                shared.counters.dedup_waits.inc();
                if let Some(pin) = shared.index.get(hash) {
                    return measurement_response(hash, pin.measurement(), "deduplicated", None);
                }
                // The owner failed (nothing landed in the index):
                // loop and claim ownership ourselves.
            }
            Claim::TimedOut => {
                return Response::error(503, "computation in flight; retry later");
            }
        }
    }
}

fn stats_response(shared: &Arc<Shared>) -> Response {
    let c = &shared.counters;
    let sched = shared.scheduler.stats();
    let mut body = String::from("{\n");
    body.push_str(&format!(
        "\"serve\": {{\"requests\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"computes\": {}, \"dedup_waits\": {}, \"evictions\": {}, \"errors\": {}}},\n",
        c.requests.get(),
        c.cache_hits.get(),
        c.cache_misses.get(),
        c.computes.get(),
        c.dedup_waits.get(),
        c.evictions.get(),
        c.errors.get(),
    ));
    let lat = c.latency_us.snapshot();
    body.push_str(&format!(
        "\"latency_us\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n",
        lat.count(),
        lat.quantile(0.50),
        lat.quantile(0.90),
        lat.quantile(0.99),
        lat.max(),
    ));
    body.push_str(&format!(
        "\"index\": {{\"entries\": {}, \"bytes\": {}, \"budget_bytes\": {}, \"inflight\": {}}},\n",
        shared.index.len(),
        shared.index.total_bytes(),
        shared
            .index
            .budget()
            .map_or_else(|| "null".into(), |b| b.to_string()),
        shared.inflight.len(),
    ));
    body.push_str(&format!(
        "\"sched\": {{\"jobs\": {}, \"executed\": {}, \"cache_hits\": {}, \"cache_stores\": {}}}\n",
        sched.jobs, sched.executed, sched.cache_hits, sched.cache_stores,
    ));
    body.push('}');
    body.push('\n');
    Response::json(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_request_parses_and_validates() {
        let spec = ComputeRequest::from_json(
            "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 8}",
        )
        .unwrap();
        assert_eq!(spec.executor, "cpu-sim");
        assert_eq!(spec.kernel, "omp_barrier");
        assert_eq!(spec.threads, 8);
        assert_eq!(spec.blocks, None);

        assert!(ComputeRequest::from_json("not json").is_err());
        assert!(ComputeRequest::from_json("{\"executor\": \"cpu-sim\"}").is_err());
        assert!(ComputeRequest::from_json(
            "{\"executor\": \"x\", \"kernel\": \"k\", \"threads\": -1}"
        )
        .is_err());
        assert!(ComputeRequest::from_json(
            "{\"executor\": \"x\", \"kernel\": \"k\", \"threads\": 1.5}"
        )
        .is_err());
    }

    #[test]
    fn cache_bytes_env_parsing() {
        assert_eq!(cache_bytes_from_env(None), None);
        assert_eq!(cache_bytes_from_env(Some("0".into())), None);
        assert_eq!(cache_bytes_from_env(Some("garbage".into())), None);
        assert_eq!(cache_bytes_from_env(Some(" 4096 ".into())), Some(4096));
    }

    #[test]
    fn serve_stats_mirror_snapshot() {
        let rec = Recorder::enabled();
        let c = Counters::new(&rec);
        c.requests.add(3);
        c.cache_hits.add(2);
        c.observe_request("stats", Duration::from_micros(50));
        c.observe_request("query", Duration::from_millis(5));
        let snap = rec.snapshot();
        let stats = ServeStats::from_snapshot(&snap);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(snap.histogram("serve.latency_us").count(), 2);
        assert_eq!(snap.histogram("serve.endpoint.stats.latency_us").count(), 1);
        assert_eq!(snap.histogram("serve.endpoint.query.latency_us").count(), 1);
        assert_eq!(snap.counter("serve.endpoint.stats.requests"), 1);
        assert_eq!(snap.counter("serve.endpoint.query.requests"), 1);
    }

    #[test]
    fn endpoint_labels_cover_every_route() {
        assert_eq!(endpoint_label("/healthz"), "healthz");
        assert_eq!(endpoint_label("/metrics"), "metrics");
        assert_eq!(endpoint_label("/events"), "events");
        assert_eq!(endpoint_label("/job/0011223344556677"), "job");
        assert_eq!(endpoint_label("/figure/fig01.csv"), "figure");
        assert_eq!(endpoint_label("/nope"), "other");
        for label in [
            endpoint_label("/stats"),
            endpoint_label("/query"),
            endpoint_label("/compute"),
            endpoint_label("/shutdown"),
            endpoint_label("/"),
        ] {
            assert!(ENDPOINT_LABELS.contains(&label));
        }
    }
}
