//! A std-only `epoll` readiness poller — the foundation of the serve
//! crate's nonblocking event loop.
//!
//! ## Why an event loop (and why raw `epoll`)
//!
//! The alternative front end — a bounded worker pool sharing one
//! blocking acceptor — caps concurrent connections at the thread
//! count: a load generator holding thousands of keep-alive
//! connections would see all but `workers` of them starve, and a
//! single stalled (slowloris) peer pins a whole thread for its
//! timeout. A readiness-driven loop holds every idle connection for
//! the cost of one registered fd, enforces per-request deadlines with
//! one timer sweep, and sheds load at accept time — so that is the
//! design chosen here. The workspace is zero-dependency by policy
//! (no mio/tokio), so the poller speaks to the kernel directly
//! through the `epoll_*` symbols in the libc that `std` already
//! links, the same technique `server.rs` uses for `signal`.
//!
//! Only Linux is supported, matching the rest of the repo's CI
//! surface. The API is deliberately tiny: register/modify/deregister
//! an fd with a `u64` token, wait for `(token, readiness)` pairs, and
//! a self-wake channel ([`Waker`]) so worker threads can interrupt a
//! blocked [`Poller::wait`].

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readable readiness (`EPOLLIN`).
pub const READABLE: u32 = 0x1;
/// Writable readiness (`EPOLLOUT`).
pub const WRITABLE: u32 = 0x4;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const ERROR: u32 = 0x8;
/// Peer hung up (`EPOLLHUP` | `EPOLLRDHUP`).
pub const HANGUP: u32 = 0x10 | 0x2000;
/// Peer closed its write half (`EPOLLRDHUP`) — request alongside
/// [`READABLE`] to notice half-closed connections.
pub const RDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o200_0000;
const EINTR: i32 = 4;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
/// ABI there omits padding); natural layout elsewhere.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// The kernel's `struct epoll_event` (non-x86-64 layout).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// How many readiness events one [`Poller::wait`] call can deliver.
const WAIT_BATCH: usize = 1024;

/// One readiness notification: the token the fd was registered with
/// and the readiness bits ([`READABLE`], [`WRITABLE`], [`ERROR`],
/// [`HANGUP`]).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Registration token.
    pub token: u64,
    /// Readiness bitset.
    pub readiness: u32,
}

impl Event {
    /// Whether the fd is readable (or the peer closed, which reads as
    /// EOF).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.readiness & (READABLE | HANGUP | ERROR) != 0
    }

    /// Whether the fd is writable.
    #[must_use]
    pub fn writable(&self) -> bool {
        self.readiness & (WRITABLE | ERROR) != 0
    }

    /// Whether the peer hung up or the fd errored.
    #[must_use]
    pub fn closed(&self) -> bool {
        self.readiness & (HANGUP | ERROR) != 0
    }
}

/// A level-triggered `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, std::ptr::from_mut(&mut ev)) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest bits.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest bits of a registered fd.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Dropping a `TcpStream` also deregisters it
    /// implicitly; this exists for explicit bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout` (`None` = forever) and appends readiness
    /// events to `out`. A signal interruption returns cleanly with no
    /// events.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure (except `EINTR`).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0.4 ms deadline does not spin at 0 ms.
            Some(t) => i32::try_from(t.as_millis().min(60_000))
                .unwrap_or(60_000)
                .max(i32::from(!t.is_zero())),
        };
        let mut buf = [EpollEvent::default(); WAIT_BATCH];
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &buf[..n.max(0) as usize] {
            // Copy out of the (possibly packed) struct before use.
            let (data, events) = (ev.data, ev.events);
            out.push(Event {
                token: data,
                readiness: events,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// A self-wake channel: worker threads call [`Waker::wake`] to make
/// the reactor's blocked [`Poller::wait`] return. Built on a
/// nonblocking `UnixStream` pair; the read half is registered in the
/// poller like any connection.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Creates the pair and sets both halves nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates socketpair failure.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd to register for [`READABLE`] interest.
    #[must_use]
    pub fn read_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Wakes the poller. Idempotent while a wake is pending: a full
    /// pipe means the reactor has not drained yet and will run anyway.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drains pending wake bytes (reactor-side, after a readable event
    /// on [`Waker::read_fd`]).
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Instant;

    #[test]
    fn poller_reports_readable_and_writable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.add(a.as_raw_fd(), 7, READABLE).unwrap();

        // Nothing to read yet: a zero-ish timeout returns empty.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty(), "no readiness before data");

        (&b).write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable() && !events[0].closed());

        // Level-triggered: still readable until drained.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(events.len(), 1, "level-triggered readiness persists");
        let mut buf = [0u8; 16];
        assert_eq!((&a).read(&mut buf).unwrap(), 4);

        // Writable interest on an empty socket fires immediately.
        poller.modify(a.as_raw_fd(), 7, WRITABLE).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().any(Event::writable));
        poller.delete(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn poller_reports_hangup() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(a.as_raw_fd(), 1, READABLE | RDHUP).unwrap();
        drop(b);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(!events.is_empty());
        assert!(events[0].closed());
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.read_fd(), 0, READABLE).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
            w.wake(); // double-wake coalesces
        });
        let start = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(2), "woke early");
        assert!(events.iter().any(|e| e.token == 0));
        waker.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "drained waker is quiet");
        t.join().unwrap();
    }
}
