//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this local package
//! provides the subset of proptest's API that the test suite uses:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, the
//! [`Strategy`] trait over ranges and collections, `prop::collection`,
//! `proptest::bool::ANY`, and [`ProptestConfig`].
//!
//! Semantics: each `#[test]` inside `proptest!` runs `cases` times with
//! inputs drawn from its strategies by a PRNG seeded from the test's
//! name and the case index — fully deterministic, so any failure
//! reproduces on rerun. There is no shrinking: the failing values are
//! reported as-is in the panic message of the assertion that fired.

use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Builds the deterministic per-case RNG for `test_name`, case `case`.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite
        // fast while still sweeping each parameter space broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true` or `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::collections::{BTreeMap, BTreeSet};
        use std::ops::Range;

        /// Strategy for `Vec<T>` with lengths drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `Vec` of values from `elem`, length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap<K, V>`.
        #[derive(Debug, Clone)]
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        /// `BTreeMap` with keys/values from the given strategies and a
        /// target size drawn from `size` (may come out smaller if the
        /// key domain is nearly exhausted).
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: Range<usize>,
        ) -> BTreeMapStrategy<K, V> {
            BTreeMapStrategy { key, value, size }
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.clone().generate(rng);
                let mut out = BTreeMap::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < target * 20 + 20 {
                    out.insert(self.key.generate(rng), self.value.generate(rng));
                    attempts += 1;
                }
                out
            }
        }

        /// Strategy for `BTreeSet<T>`.
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `BTreeSet` with elements from `elem` and a target size drawn
        /// from `size`.
        pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { elem, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.clone().generate(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < target * 20 + 20 {
                    out.insert(self.elem.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::bool as prop_bool;
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares a block of property tests. Each `fn name(pat in strategy,
/// ...) { body }` becomes a `#[test]` that runs the body for every
/// generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __prop_rng = $crate::test_rng(stringify!($name), __case);
                $crate::__proptest_bind!(__prop_rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

// Keep the root-level name real proptest also exposes.
pub use prop::collection;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges_stay_in_bounds", 0);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5i64..=9).generate(&mut rng);
            assert!((5..=9).contains(&w));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let mut a = crate::test_rng("x", 7);
        let mut b = crate::test_rng("x", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x", 8);
        assert_ne!(crate::test_rng("x", 7).next_u64(), c.next_u64());
    }

    #[test]
    fn collections_hit_target_sizes() {
        let mut rng = crate::test_rng("collections", 0);
        let v = prop::collection::vec(0u32..10, 4..5).generate(&mut rng);
        assert_eq!(v.len(), 4);
        let s = prop::collection::btree_set(0u32..1000, 8..9).generate(&mut rng);
        assert_eq!(s.len(), 8);
        let m = prop::collection::btree_map(0u32..1000, 0.0..1.0f64, 6..7).generate(&mut rng);
        assert_eq!(m.len(), 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires bindings, mut patterns, and trailing commas.
        #[test]
        fn macro_smoke(a in 1u32..100, mut b in 0.0..1.0f64, flag in crate::bool::ANY) {
            b += 1.0;
            prop_assert!((1..100).contains(&a));
            prop_assert!((1.0..2.0).contains(&b));
            prop_assert_eq!(flag, flag);
        }
    }
}
