//! Cross-validation: the engine's *static* contention analysis
//! (`ContentionMap`) must agree with a *dynamic* replay of the same
//! access pattern through the explicit MESI protocol. Lines the static
//! analysis calls conflict-free must be bus-silent in MESI steady
//! state; lines with write contenders must keep generating
//! invalidations/transfers.

use proptest::prelude::*;
use syncperf_core::SYSTEM3;
use syncperf_core::{kernel, Affinity, CpuKernel, CpuOp, DType, Target};
use syncperf_cpu_sim::memline::{classify, line_of, Access, ContentionMap};
use syncperf_cpu_sim::{MesiDirectory, Placement};

/// Replays `rounds` repetitions of `body` for every placed thread
/// through MESI (round-robin thread order, as the hardware would
/// roughly interleave symmetric spinning threads), returning the
/// directory after a warmup round and `rounds` measured rounds.
fn replay(body: &[CpuOp], placement: &Placement, rounds: u32) -> MesiDirectory {
    let n_cores = SYSTEM3.cpu.total_cores() as usize;
    let mut mesi = MesiDirectory::new(n_cores);
    let one_round = |mesi: &mut MesiDirectory| {
        for tid in 0..placement.len() {
            let core = placement.slot(tid).core as usize;
            for op in body {
                match classify(op) {
                    Access::None => {}
                    Access::Read(dt, tg) => {
                        let _ = mesi.read(core, line_of(dt, tg, tid, 64));
                    }
                    Access::Write(dt, tg) | Access::CriticalWrite(dt, tg) => {
                        let _ = mesi.write(core, line_of(dt, tg, tid, 64));
                    }
                }
            }
        }
    };
    one_round(&mut mesi); // warmup: cold fills
    mesi.reset_traffic();
    for _ in 0..rounds {
        one_round(&mut mesi);
    }
    mesi
}

/// Checks agreement for one kernel body at one thread count.
fn check_agreement(body: &[CpuOp], threads: u32) {
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
    let analysis = ContentionMap::analyze(body, &placement, 64);
    let mesi = replay(body, &placement, 20);

    for tid in 0..placement.len() {
        let core = placement.slot(tid).core;
        for op in body {
            let (line, is_write, dt, tg) = match classify(op) {
                Access::None => continue,
                Access::Read(dt, tg) => (line_of(dt, tg, tid, 64), false, dt, tg),
                Access::Write(dt, tg) | Access::CriticalWrite(dt, tg) => {
                    (line_of(dt, tg, tid, 64), true, dt, tg)
                }
            };
            let (contenders, _) = analysis.contenders(line, core, is_write);
            let traffic = mesi.traffic(line);
            if contenders == 0 && analysis.contenders(line, core, true).0 == 0 {
                // Fully conflict-free line (no other core writes or
                // reads-while-we-write): MESI must be silent.
                assert_eq!(
                    traffic.bus_transactions(),
                    0,
                    "static says conflict-free but MESI saw traffic: tid {tid} {dt} {tg:?}"
                );
            }
            if contenders > 0 && is_write {
                // Write-contended line: MESI must keep invalidating.
                assert!(
                    traffic.invalidations + traffic.transfers > 0,
                    "static says {contenders} contenders but MESI was silent: tid {tid} {dt} {tg:?}"
                );
            }
        }
    }
}

#[test]
fn shared_scalar_kernels_agree() {
    for threads in [2u32, 4, 8, 16] {
        check_agreement(
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            threads,
        );
        check_agreement(&kernel::omp_atomic_write(DType::F64).test, threads);
    }
}

#[test]
fn strided_array_kernels_agree_at_every_stride() {
    for stride in [1u32, 2, 4, 8, 16] {
        for dt in DType::ALL {
            check_agreement(&kernel::omp_atomic_update_array(dt, stride).baseline, 16);
        }
    }
}

#[test]
fn flush_bodies_agree() {
    for stride in [1u32, 8, 16] {
        check_agreement(&kernel::omp_flush(DType::I32, stride).test, 16);
    }
}

#[test]
fn read_only_kernels_are_bus_silent() {
    let body = kernel::omp_atomic_read(DType::I32).test; // one atomic read
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    let mesi = replay(&body, &placement, 20);
    let line = line_of(DType::I32, Target::SHARED, 0, 64);
    assert_eq!(
        mesi.traffic(line).bus_transactions(),
        0,
        "pure readers must settle into Shared and stop causing traffic"
    );
}

#[test]
fn padded_stride_transaction_count_is_exactly_zero_while_stride1_scales_with_rounds() {
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    let rounds = 25;

    let contended = kernel::omp_atomic_update_array(DType::I32, 1).baseline;
    let mesi = replay(&contended, &placement, rounds);
    let line0 = line_of(DType::I32, Target::private(1), 0, 64);
    let t = mesi.traffic(line0);
    // 16 threads ping-ponging one line: every access after the first of
    // a round invalidates someone.
    assert!(
        t.invalidations >= u64::from(rounds) * 15,
        "expected sustained invalidations, got {t:?}"
    );

    let padded = kernel::omp_atomic_update_array(DType::I32, 16).baseline;
    let mesi = replay(&padded, &placement, rounds);
    for tid in 0..16 {
        let line = line_of(DType::I32, Target::private(16), tid, 64);
        assert_eq!(mesi.traffic(line).bus_transactions(), 0, "tid {tid}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The agreement holds across randomly drawn kernels, strides, and
    /// thread counts.
    #[test]
    fn agreement_over_random_workloads(
        threads in 2u32..24,
        stride in 1u32..20,
        dt_idx in 0usize..4,
        which in 0usize..4,
    ) {
        let dt = DType::ALL[dt_idx];
        let k: CpuKernel = match which {
            0 => kernel::omp_atomic_update_array(dt, stride),
            1 => kernel::omp_atomic_update_scalar(dt),
            2 => kernel::omp_flush(dt, stride),
            _ => kernel::omp_atomic_write(dt),
        };
        check_agreement(&k.test, threads);
    }
}
