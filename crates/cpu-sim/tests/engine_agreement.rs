//! Two-engine agreement: the fast analytic engine and the MESI-driven
//! reference engine are independent implementations of the same model.
//! Their per-op steady-state costs must agree — tightly where the
//! sharing pattern is trivial, loosely where dynamic interleaving
//! matters.

use proptest::prelude::*;
use syncperf_core::{kernel, Affinity, CpuKernel, DType, SYSTEM3};
use syncperf_cpu_sim::{engine, refengine, CpuModel, Placement};

/// Max-across-threads per-rep steady-state cost from the fast engine.
fn fast_per_rep(m: &CpuModel, p: &Placement, body: &[syncperf_core::CpuOp]) -> f64 {
    let a = engine::run(m, p, body, 50).unwrap();
    let b = engine::run(m, p, body, 100).unwrap();
    let fa = a.per_thread_ns.iter().copied().fold(f64::MIN, f64::max);
    let fb = b.per_thread_ns.iter().copied().fold(f64::MIN, f64::max);
    (fb - fa) / 50.0
}

/// Same, from the reference engine (larger runs to average out the
/// interleaving).
fn reference_per_rep(m: &CpuModel, p: &Placement, body: &[syncperf_core::CpuOp]) -> f64 {
    let a = refengine::run_reference(m, p, body, 100).unwrap();
    let b = refengine::run_reference(m, p, body, 200).unwrap();
    let fa = a.per_thread_ns.iter().copied().fold(f64::MIN, f64::max);
    let fb = b.per_thread_ns.iter().copied().fold(f64::MIN, f64::max);
    (fb - fa) / 100.0
}

fn ratio(m: &CpuModel, threads: u32, k: &CpuKernel) -> f64 {
    let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
    let fast = fast_per_rep(m, &p, &k.baseline);
    let reference = reference_per_rep(m, &p, &k.baseline);
    fast / reference
}

#[test]
fn engines_agree_exactly_on_conflict_free_workloads() {
    // No sharing → both engines charge pure service time.
    let m = CpuModel::baseline();
    for dt in DType::ALL {
        let k = kernel::omp_atomic_update_array(dt, 16);
        let r = ratio(&m, 8, &k);
        assert!((r - 1.0).abs() < 0.01, "{dt}: fast/reference = {r}");
    }
}

#[test]
fn engines_agree_below_the_saturation_point() {
    // Up to ~saturation (7 contenders) the fast engine's queue term and
    // the reference engine's physical line serialization track each
    // other within a factor of ~2.
    let m = CpuModel::baseline();
    for threads in [2u32, 4, 8] {
        let k = kernel::omp_atomic_update_scalar(DType::I32);
        let r = ratio(&m, threads, &k);
        assert!(
            (0.4..2.5).contains(&r),
            "{threads} threads: fast/reference = {r}"
        );
    }
}

#[test]
fn saturating_vs_linear_divergence_by_design() {
    // Beyond saturation the engines diverge deliberately: the reference
    // engine's physical line occupancy is linear in the thread count,
    // while the fast engine saturates — the bounded-queue hypothesis
    // behind the paper's Fig. 1/2 plateau (see MODEL.md §1.2 and
    // `ablation_contention_model`).
    let m = CpuModel::baseline();
    let k = kernel::omp_atomic_update_scalar(DType::I32);
    let p16 = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    let p32 = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 32);

    let fast_growth = fast_per_rep(&m, &p32, &k.baseline) / fast_per_rep(&m, &p16, &k.baseline);
    let ref_growth =
        reference_per_rep(&m, &p32, &k.baseline) / reference_per_rep(&m, &p16, &k.baseline);
    assert!(fast_growth < 1.2, "fast engine saturated: {fast_growth}");
    assert!(
        (1.8..2.2).contains(&ref_growth),
        "reference engine linear: {ref_growth}"
    );
}

#[test]
fn engines_agree_on_false_sharing_direction() {
    // Both engines must rank stride 1 ≫ stride 16, with similar
    // penalty factors.
    let m = CpuModel::baseline();
    let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 8);
    let shared = kernel::omp_atomic_update_array(DType::I32, 1).baseline;
    let padded = kernel::omp_atomic_update_array(DType::I32, 16).baseline;

    let fast_penalty = fast_per_rep(&m, &p, &shared) / fast_per_rep(&m, &p, &padded);
    let ref_penalty = reference_per_rep(&m, &p, &shared) / reference_per_rep(&m, &p, &padded);
    assert!(fast_penalty > 3.0 && ref_penalty > 3.0);
    let agreement = fast_penalty / ref_penalty;
    assert!(
        (0.3..3.0).contains(&agreement),
        "penalties {fast_penalty} vs {ref_penalty}"
    );
}

#[test]
fn engines_agree_on_critical_vs_atomic_ordering() {
    let m = CpuModel::baseline();
    let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 8);
    let atomic = kernel::omp_atomic_update_scalar(DType::I32).baseline;
    let critical = kernel::omp_critical_add(DType::I32).baseline;
    assert!(fast_per_rep(&m, &p, &critical) > fast_per_rep(&m, &p, &atomic));
    assert!(reference_per_rep(&m, &p, &critical) > reference_per_rep(&m, &p, &atomic));
}

#[test]
fn barrier_rendezvous_identical_in_both_engines() {
    // Barrier cost is the same formula in both; with a barrier-only
    // body the totals match exactly.
    let m = CpuModel::baseline();
    let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 8);
    let body = kernel::omp_barrier().baseline;
    let fast = fast_per_rep(&m, &p, &body);
    let reference = reference_per_rep(&m, &p, &body);
    assert!(
        (fast / reference - 1.0).abs() < 0.02,
        "{fast} vs {reference}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across random workloads the two engines stay within an order of
    /// magnitude and always agree on the *sign* of contention (both
    /// above pure service cost, or both at it).
    #[test]
    fn engines_within_bounds_on_random_workloads(
        threads in 2u32..16,
        stride in 1u32..20,
        dt_idx in 0usize..4,
        scalar in proptest::bool::ANY,
    ) {
        let dt = DType::ALL[dt_idx];
        let k = if scalar {
            kernel::omp_atomic_update_scalar(dt)
        } else {
            kernel::omp_atomic_update_array(dt, stride)
        };
        let m = CpuModel::baseline();
        let r = ratio(&m, threads, &k);
        prop_assert!((0.1..5.0).contains(&r), "fast/reference = {r} for {}", k.name);
    }
}
