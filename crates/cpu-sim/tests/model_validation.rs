//! Model-validation integration tests: the CPU simulator's behavior
//! across full parameter sweeps, all three systems, and mixed bodies.

use syncperf_core::{
    kernel, Affinity, CpuOp, DType, ExecParams, Protocol, Target, SYSTEM1, SYSTEM2, SYSTEM3,
};
use syncperf_cpu_sim::{engine, CpuModel, CpuSimExecutor, Placement};

fn per_op(sim: &mut CpuSimExecutor, k: &syncperf_core::CpuKernel, threads: u32) -> f64 {
    let p = ExecParams::new(threads).with_loops(500, 50);
    Protocol::PAPER
        .measure(sim, k, &p)
        .unwrap()
        .runtime_seconds()
}

#[test]
fn atomic_cost_monotonic_in_thread_count_until_saturation() {
    let mut sim = CpuSimExecutor::new(&SYSTEM2);
    let k = kernel::omp_atomic_update_scalar(DType::I32);
    let costs: Vec<f64> = [2u32, 4, 8, 16]
        .iter()
        .map(|&t| per_op(&mut sim, &k, t))
        .collect();
    for w in costs.windows(2) {
        assert!(
            w[1] > w[0] * 0.95,
            "cost must not drop with more contenders: {costs:?}"
        );
    }
    // Beyond saturation the growth flattens.
    let c32 = per_op(&mut sim, &k, 32);
    let c64 = per_op(&mut sim, &k, 64);
    assert!(
        c64 / c32 < 1.4,
        "saturated region nearly flat: {c32} -> {c64}"
    );
}

#[test]
fn system2_runs_its_full_64_thread_sweep() {
    let mut sim = CpuSimExecutor::new(&SYSTEM2);
    let k = kernel::omp_barrier();
    for t in SYSTEM2.cpu.omp_thread_counts() {
        let m = Protocol::SIM
            .measure(&mut sim, &k, &ExecParams::new(t).with_loops(100, 10))
            .unwrap();
        assert!(m.per_op > 0.0, "thread count {t}");
    }
}

#[test]
fn every_dtype_every_cpu_kernel_on_every_system() {
    for sys in [&SYSTEM1, &SYSTEM2, &SYSTEM3] {
        let mut sim = CpuSimExecutor::new(sys);
        for dt in DType::ALL {
            for k in [
                kernel::omp_atomic_update_scalar(dt),
                kernel::omp_atomic_update_array(dt, 4),
                kernel::omp_atomic_capture_scalar(dt),
                kernel::omp_atomic_write(dt),
                kernel::omp_atomic_read(dt),
                kernel::omp_critical_add(dt),
                kernel::omp_flush(dt, 8),
            ] {
                let m = Protocol::SIM
                    .measure(&mut sim, &k, &ExecParams::new(8).with_loops(100, 10))
                    .unwrap();
                assert!(m.per_op.is_finite(), "{} / {dt} / {}", sys, k.name);
            }
        }
    }
}

#[test]
fn close_affinity_beats_spread_on_two_sockets_small_teams() {
    // System 1 has 2 sockets × 10 cores; a 4-thread team under close
    // stays on socket 0 while spread alternates sockets and pays
    // cross-socket transfers on the shared line.
    let mut sim = CpuSimExecutor::new(&SYSTEM1);
    let k = kernel::omp_atomic_update_scalar(DType::I32);
    let close = Protocol::PAPER
        .measure(
            &mut sim,
            &k,
            &ExecParams::new(4)
                .with_affinity(Affinity::Close)
                .with_loops(500, 50),
        )
        .unwrap();
    let spread = Protocol::PAPER
        .measure(
            &mut sim,
            &k,
            &ExecParams::new(4)
                .with_affinity(Affinity::Spread)
                .with_loops(500, 50),
        )
        .unwrap();
    assert!(
        close.runtime_seconds() < spread.runtime_seconds(),
        "close {} vs spread {}",
        close.runtime_seconds(),
        spread.runtime_seconds()
    );
}

#[test]
fn affinity_irrelevant_on_single_socket_system3() {
    // System 3 has one socket: the paper saw no notable affinity
    // difference (Figs. 1, 3, 5 notes).
    let mut sim = CpuSimExecutor::with_seed(&SYSTEM3, 7);
    let mut sim2 = CpuSimExecutor::with_seed(&SYSTEM3, 7);
    let k = kernel::omp_atomic_update_scalar(DType::I32);
    let p = ExecParams::new(8).with_loops(500, 50);
    let close = Protocol::PAPER
        .measure(
            &mut sim,
            &k,
            &ExecParams {
                affinity: Affinity::Close,
                ..p
            },
        )
        .unwrap();
    let spread = Protocol::PAPER
        .measure(
            &mut sim2,
            &k,
            &ExecParams {
                affinity: Affinity::Spread,
                ..p
            },
        )
        .unwrap();
    let ratio = close.runtime_seconds() / spread.runtime_seconds();
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "single socket: affinity ratio {ratio}"
    );
}

#[test]
fn smt_sibling_false_sharing_exemption() {
    // 2 threads sharing one line: on different cores (spread) they
    // false-share; as SMT siblings of the same core they do not.
    let model = CpuModel::baseline();
    let body = kernel::omp_atomic_update_array(DType::I32, 1).baseline;

    // Different cores.
    let spread = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 2);
    let cost_cores = engine::run(&model, &spread, &body, 10)
        .unwrap()
        .per_thread_ns[0];

    // Same core: build a 17-thread close placement where thread 16 is
    // thread 0's hyperthread sibling, then compare a body whose line is
    // shared only between those two. Easiest check: a 2-thread close
    // placement on a hypothetical 1-core topology.
    let mut one_core = SYSTEM3.cpu.clone();
    one_core.cores_per_socket = 1;
    one_core.sockets = 1;
    let siblings = Placement::new(&one_core, Affinity::Close, 2);
    let cost_siblings = engine::run(&model, &siblings, &body, 10)
        .unwrap()
        .per_thread_ns[0];

    assert!(
        cost_cores > 2.0 * cost_siblings,
        "false sharing across cores ({cost_cores} ns) must dwarf SMT siblings \
         ({cost_siblings} ns) who share an L1"
    );
}

#[test]
fn mixed_body_with_barriers_and_atomics() {
    // Heterogeneous bodies exercise the segment/rendezvous path.
    let model = CpuModel::baseline();
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 8);
    let body = vec![
        CpuOp::AtomicUpdate {
            dtype: DType::I32,
            target: Target::SHARED,
        },
        CpuOp::Barrier,
        CpuOp::Update {
            dtype: DType::F64,
            target: Target::private(8),
        },
        CpuOp::Flush,
        CpuOp::Barrier,
        CpuOp::AtomicRead {
            dtype: DType::I32,
            target: Target::SHARED,
        },
    ];
    let r = engine::run(&model, &placement, &body, 25).unwrap();
    assert_eq!(r.barrier_episodes, 50);
    assert_eq!(r.per_thread_ns.len(), 8);
    // All threads end within one release stagger of each other (they
    // rendezvoused twice per rep and the last segment is uniform).
    let min = r.per_thread_ns.iter().copied().fold(f64::MAX, f64::min);
    let max = r.per_thread_ns.iter().copied().fold(f64::MIN, f64::max);
    assert!(max - min < 8.0 * model.release_stagger_ns + 1e-9);
}

#[test]
fn slower_clock_means_slower_core_ops() {
    // System 1 (3.1 GHz) vs System 3 (3.5 GHz): core-bound primitives
    // scale with clock; a padded private atomic is core-bound.
    let mut s1 = CpuSimExecutor::new(&SYSTEM1);
    let mut s3 = CpuSimExecutor::new(&SYSTEM3);
    let k = kernel::omp_atomic_update_array(DType::I32, 16);
    let c1 = per_op(&mut s1, &k, 4);
    let c3 = per_op(&mut s3, &k, 4);
    assert!(
        c1 > c3,
        "3.1 GHz part slower than 3.5 GHz part: {c1} vs {c3}"
    );
    let ratio = c1 / c3;
    assert!(
        (ratio - 3.5 / 3.1).abs() < 0.15,
        "scaling ≈ clock ratio, got {ratio}"
    );
}

#[test]
fn capture_and_update_identical_costs() {
    let model = CpuModel::baseline();
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 8);
    let upd = engine::run(
        &model,
        &placement,
        &kernel::omp_atomic_update_scalar(DType::F32).test,
        10,
    )
    .unwrap();
    let cap = engine::run(
        &model,
        &placement,
        &kernel::omp_atomic_capture_scalar(DType::F32).test,
        10,
    )
    .unwrap();
    assert_eq!(upd.per_thread_ns, cap.per_thread_ns);
}

#[test]
fn contended_line_count_reflected_in_runtime() {
    // Two arrays at stride 1 (flush body) double the contended lines
    // vs one array; the baseline runtime should roughly double too.
    let model = CpuModel::baseline();
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    let one = vec![CpuOp::Update {
        dtype: DType::I32,
        target: Target::Private {
            array: 0,
            stride: 1,
        },
    }];
    let two = kernel::omp_flush(DType::I32, 1).baseline; // updates to arrays 0 and 1
    let c1 = engine::run(&model, &placement, &one, 10)
        .unwrap()
        .per_thread_ns[0];
    let c2 = engine::run(&model, &placement, &two, 10)
        .unwrap()
        .per_thread_ns[0];
    let ratio = c2 / c1;
    assert!(
        (ratio - 2.0).abs() < 0.2,
        "two contended arrays ≈ 2x one: {ratio}"
    );
}

#[test]
fn oversubscribed_teams_still_simulate() {
    // More threads than hardware threads (wrap-around placement).
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let m = Protocol::SIM
        .measure(
            &mut sim,
            &kernel::omp_barrier(),
            &ExecParams::new(100).with_loops(50, 10),
        )
        .unwrap();
    assert!(m.per_op > 0.0);
}
