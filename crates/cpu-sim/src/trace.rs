//! Flat op-traces compiled from a [`RunPlan`], and batched
//! struct-of-arrays evaluation of many sweep points of one kernel
//! shape.
//!
//! The engine's interpreter ([`crate::engine`]) dispatches on a
//! [`PlanOp`] enum per `(thread, op)` in the hot loop. An [`OpTrace`]
//! lowers the plan one step further: every op becomes a pre-resolved
//! `{advance, extra}` record plus a per-op drain mask, and the three
//! non-barrier op kinds collapse into one branchless update:
//!
//! ```text
//! drain   = saturating_sub(pending, t) & mask   // mask = !0 only at fences
//! t'      = t + advance + drain
//! pending = max(pending, t' + extra)            // extra = 0 except stores
//! ```
//!
//! This is bit-exact against the interpreter. For `Fixed` and `Flush`
//! the updates are literally the interpreter's (a fence assigns
//! `pending = t'`, and the max-clamp equals assignment there because
//! `t' ≥ pending` after the drain). For `Store` the interpreter only
//! raises `pending`, so the unified max is again identical. The one
//! subtlety is that the trace applies `pending = max(pending, t')`
//! after `Fixed` ops where the interpreter leaves `pending` alone —
//! but `pending` is only ever *observed* through
//! `saturating_sub(pending, t)` (at fences and at the steady-state
//! detector's rep boundary), and clamping `pending` up to the current
//! clock does not change that difference. Barriers never appear inside
//! a trace segment; the engine's `rendezvous` runs between segments
//! exactly as on the interpreted path.
//!
//! [`PlanTable`] extends the same layout across *many parameter
//! points* of one kernel shape: the per-point lane arrays are
//! concatenated per op into one struct-of-arrays table, so a whole
//! sweep group advances through each op in a single contiguous pass
//! (the inner loop is a flat `u64` kernel over adjacent lanes — the
//! layout autovectorizes). Rendezvous, steady-state detection, and
//! extrapolation stay per point and bit-exact; see [`run_batch`].

use syncperf_core::obs::Recorder;
use syncperf_core::{CpuOp, Result, SyncPerfError};

use crate::config::CpuModel;
use crate::engine::EngineResult;
use crate::memline::ContentionMap;
use crate::plan::{units_to_ns, PlanOp, RunPlan};
use crate::topology::Placement;

/// One barrier-free segment of a lowered trace, op-major: the records
/// for op `i` occupy lanes `i * lanes .. (i + 1) * lanes`.
#[derive(Debug, Clone)]
struct TraceSegment {
    /// Number of ops in this segment.
    ops: usize,
    /// Per-(op, lane) clock advance, fixed-point units.
    advance: Vec<u64>,
    /// Per-(op, lane) store-buffer horizon extension (0 except stores).
    extra: Vec<u64>,
    /// Per-op drain mask: `!0` at fences, `0` elsewhere. The op kind
    /// depends only on the body, so one scalar covers every lane.
    mask: Vec<u64>,
}

impl TraceSegment {
    fn with_capacity(ops: usize, lanes: usize) -> Self {
        Self {
            ops,
            advance: Vec::with_capacity(ops * lanes),
            extra: Vec::with_capacity(ops * lanes),
            mask: Vec::with_capacity(ops),
        }
    }

    /// Advances every lane through every op of this segment with the
    /// branchless update described in the module docs.
    #[inline]
    fn step(&self, t: &mut [u64], pending: &mut [u64]) {
        let lanes = t.len();
        for op in 0..self.ops {
            let base = op * lanes;
            let adv = &self.advance[base..base + lanes];
            let ext = &self.extra[base..base + lanes];
            let mask = self.mask[op];
            for lane in 0..lanes {
                let drain = pending[lane].saturating_sub(t[lane]) & mask;
                let tn = t[lane] + adv[lane] + drain;
                t[lane] = tn;
                pending[lane] = pending[lane].max(tn + ext[lane]);
            }
        }
    }
}

/// Pushes the `{advance, extra}` record for `(plan op)` onto a
/// segment's lane arrays. The per-op mask is pushed once per op by the
/// caller (it is uniform across lanes).
#[inline]
fn lower_op(seg: &mut TraceSegment, op: PlanOp) {
    match op {
        PlanOp::Barrier => unreachable!("barriers delimit segments"),
        PlanOp::Fixed(cost) => {
            seg.advance.push(cost);
            seg.extra.push(0);
        }
        PlanOp::Store {
            visible,
            pending_extra,
        } => {
            seg.advance.push(visible);
            seg.extra.push(pending_extra);
        }
        PlanOp::Flush { base } => {
            seg.advance.push(base);
            seg.extra.push(0);
        }
    }
}

/// Mask for one op position: the op *kind* is body-determined, so
/// thread 0's plan op stands for every lane.
#[inline]
fn mask_of(op: PlanOp) -> u64 {
    match op {
        PlanOp::Flush { .. } => !0u64,
        _ => 0u64,
    }
}

/// A [`RunPlan`] lowered to flat, branchless per-segment lane arrays
/// for a single parameter point (`lanes == threads`).
#[derive(Debug, Clone)]
pub struct OpTrace {
    lanes: usize,
    segments: Vec<TraceSegment>,
    barrier_units: u64,
    stagger_units: u64,
    trace_ops: usize,
}

impl OpTrace {
    /// Lowers a compiled plan into a flat trace.
    #[must_use]
    pub fn compile(plan: &RunPlan) -> Self {
        let lanes = plan.threads();
        let mut trace_ops = 0usize;
        let mut segments = Vec::with_capacity(plan.segments().len());
        for &(start, end) in plan.segments() {
            let mut seg = TraceSegment::with_capacity(end - start, lanes);
            for idx in start..end {
                seg.mask.push(mask_of(plan.op(0, idx)));
                for tid in 0..lanes {
                    lower_op(&mut seg, plan.op(tid, idx));
                }
                trace_ops += lanes;
            }
            segments.push(seg);
        }
        Self {
            lanes,
            segments,
            barrier_units: plan.barrier_units(),
            stagger_units: plan.stagger_units(),
            trace_ops,
        }
    }

    /// Convenience: contention analysis + plan compilation + lowering
    /// in one call (used by benches and tests).
    #[must_use]
    pub fn compile_for(model: &CpuModel, placement: &Placement, body: &[CpuOp]) -> Self {
        let contention = ContentionMap::analyze(body, placement, 64);
        Self::compile(&RunPlan::compile(model, placement, &contention, body))
    }

    /// Total `(op, lane)` records across all segments.
    #[must_use]
    pub fn trace_ops(&self) -> usize {
        self.trace_ops
    }

    /// Barriers executed per repetition (`segments − 1`).
    #[must_use]
    pub fn barriers_per_rep(&self) -> u64 {
        self.segments.len() as u64 - 1
    }

    /// Steps one full repetition for all lanes: straight-line segment
    /// passes with a rendezvous after every segment but the last.
    /// Returns the number of barrier episodes executed.
    pub fn step_rep(&self, t: &mut [u64], pending: &mut [u64], order: &mut Vec<usize>) -> u64 {
        debug_assert_eq!(t.len(), self.lanes);
        let last = self.segments.len() - 1;
        for (seg_idx, seg) in self.segments.iter().enumerate() {
            seg.step(t, pending);
            if seg_idx < last {
                rendezvous(self.barrier_units, self.stagger_units, t, order);
            }
        }
        last as u64
    }
}

/// Barrier release identical to the engine's: all arrivals released at
/// `max_arrival + barrier_units`, staggered by arrival rank (stable
/// ties in lane order).
#[inline]
fn rendezvous(barrier_units: u64, stagger_units: u64, t: &mut [u64], order: &mut Vec<usize>) {
    let max_arrival = t.iter().copied().max().unwrap_or(0);
    let release = max_arrival + barrier_units;
    order.clear();
    order.extend(0..t.len());
    order.sort_by_key(|&tid| t[tid]);
    for (rank, &tid) in order.iter().enumerate() {
        t[tid] = release + rank as u64 * stagger_units;
    }
}

/// One parameter point inside a [`PlanTable`]: its lane range within
/// the concatenated arrays and its barrier constants (which depend on
/// the thread count and so differ per point).
#[derive(Debug, Clone)]
struct TablePoint {
    start: usize,
    lanes: usize,
    barrier_units: u64,
    stagger_units: u64,
}

/// Many same-shape parameter points lowered into one struct-of-arrays
/// table: per segment, per op, the lanes of every point sit
/// back-to-back, so one contiguous pass advances the whole sweep
/// group through that op.
#[derive(Debug)]
pub struct PlanTable {
    segments: Vec<TraceSegment>,
    points: Vec<TablePoint>,
    total_lanes: usize,
    barriers_per_rep: u64,
    trace_ops: usize,
}

impl PlanTable {
    /// Lowers one plan per point into a shared table. All plans must
    /// come from the same body (identical segment structure); this is
    /// guaranteed by construction when the caller compiles them from
    /// one kernel body.
    #[must_use]
    pub fn compile(plans: &[RunPlan]) -> Self {
        let total_lanes: usize = plans.iter().map(RunPlan::threads).sum();
        let segs = plans[0].segments().to_vec();
        let mut trace_ops = 0usize;
        let mut segments = Vec::with_capacity(segs.len());
        for (seg_idx, &(start, end)) in segs.iter().enumerate() {
            let mut seg = TraceSegment::with_capacity(end - start, total_lanes);
            for idx in start..end {
                seg.mask.push(mask_of(plans[0].op(0, idx)));
                for plan in plans {
                    debug_assert_eq!(plan.segments()[seg_idx], (start, end));
                    for tid in 0..plan.threads() {
                        lower_op(&mut seg, plan.op(tid, idx));
                    }
                }
                trace_ops += total_lanes;
            }
            segments.push(seg);
        }
        let mut points = Vec::with_capacity(plans.len());
        let mut at = 0usize;
        for plan in plans {
            points.push(TablePoint {
                start: at,
                lanes: plan.threads(),
                barrier_units: plan.barrier_units(),
                stagger_units: plan.stagger_units(),
            });
            at += plan.threads();
        }
        Self {
            segments,
            points,
            total_lanes,
            barriers_per_rep: segs.len() as u64 - 1,
            trace_ops,
        }
    }

    /// Total `(op, lane)` records across all segments and points.
    #[must_use]
    pub fn trace_ops(&self) -> usize {
        self.trace_ops
    }

    /// Number of parameter points in the table.
    #[must_use]
    pub fn points(&self) -> usize {
        self.points.len()
    }
}

/// Per-point steady-state detector state for the batch evaluator —
/// the same snapshot the engine's `Scratch` keeps, plus a per-point
/// `steady` latch.
struct BatchScratch {
    t: Vec<u64>,
    pending: Vec<u64>,
    prev_t: Vec<u64>,
    prev_delta: Vec<u64>,
    prev_off: Vec<u64>,
    prev_pend: Vec<u64>,
    order: Vec<usize>,
}

/// Evaluates every placement point of one kernel body in a single
/// batched pass, returning one result per point, in order.
///
/// Bit-exactness: the per-lane update is the branchless trace update
/// (bit-exact against the interpreter, see the module docs), and
/// rendezvous/steady-state detection run per point with the engine's
/// exact logic. The only scheduling difference is that the lockstep
/// rep loop keeps stepping a point that is already steady until
/// *every* point is steady — and stepping a steady repetition then
/// extrapolating from the later boundary is bit-identical to
/// extrapolating from the earlier one (a steady rep advances each
/// clock by exactly its repeating delta; that invariance is the same
/// one the engine's fast path rests on). Equivalent to
/// [`crate::engine::run_observed`] with a disabled recorder for each
/// point individually.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] if `reps` is zero or
/// `placements` is empty.
pub fn run_batch(
    model: &CpuModel,
    body: &[CpuOp],
    placements: &[Placement],
    reps: u64,
) -> Result<Vec<EngineResult>> {
    if reps == 0 {
        return Err(SyncPerfError::InvalidParams("reps must be > 0".into()));
    }
    if placements.is_empty() {
        return Err(SyncPerfError::InvalidParams(
            "batch needs at least one point".into(),
        ));
    }
    let plans: Vec<RunPlan> = placements
        .iter()
        .map(|p| {
            let contention = ContentionMap::analyze(body, p, 64);
            RunPlan::compile(model, p, &contention, body)
        })
        .collect();
    let table = PlanTable::compile(&plans);
    let rec = syncperf_core::obs::global();
    if rec.is_enabled() {
        rec.counter("plan.trace_ops").add(table.trace_ops() as u64);
        rec.histogram("plan.batch_size")
            .observe(table.points() as u64);
    }
    Ok(run_table(&table, reps))
}

/// The batched rep loop over a compiled [`PlanTable`].
fn run_table(table: &PlanTable, reps: u64) -> Vec<EngineResult> {
    let n = table.total_lanes;
    let mut s = BatchScratch {
        t: vec![0u64; n],
        pending: vec![0u64; n],
        prev_t: vec![0u64; n],
        prev_delta: vec![0u64; n],
        prev_off: vec![0u64; n],
        prev_pend: vec![0u64; n],
        order: Vec::new(),
    };
    let has_barriers = table.barriers_per_rep > 0;
    let last = table.segments.len() - 1;
    let mut have_prev = false;
    let mut rep = 0u64;
    let mut all_steady = false;
    while rep < reps && !all_steady {
        for (seg_idx, seg) in table.segments.iter().enumerate() {
            seg.step(&mut s.t, &mut s.pending);
            if seg_idx < last {
                for p in &table.points {
                    rendezvous(
                        p.barrier_units,
                        p.stagger_units,
                        &mut s.t[p.start..p.start + p.lanes],
                        &mut s.order,
                    );
                }
            }
        }
        rep += 1;
        // Per-point steady-state detection, identical to the engine's
        // rep-boundary check (emit window is always empty here: the
        // batch path only runs recorder-free).
        all_steady = have_prev;
        for p in &table.points {
            let range = p.start..p.start + p.lanes;
            let min_t = s.t[range.clone()].iter().copied().min().unwrap_or(0);
            let mut steady = have_prev;
            for lane in range {
                let delta = s.t[lane] - s.prev_t[lane];
                let off = s.t[lane] - min_t;
                let pend = s.pending[lane].saturating_sub(s.t[lane]);
                if steady
                    && (delta != s.prev_delta[lane]
                        || pend != s.prev_pend[lane]
                        || (has_barriers && off != s.prev_off[lane]))
                {
                    steady = false;
                }
                s.prev_delta[lane] = delta;
                s.prev_off[lane] = off;
                s.prev_pend[lane] = pend;
                s.prev_t[lane] = s.t[lane];
            }
            if !steady {
                all_steady = false;
            }
        }
        have_prev = true;
    }
    if rep < reps {
        // Every point is steady: extrapolate the remaining reps with
        // one exact integer multiply per lane.
        let remaining = reps - rep;
        for lane in 0..n {
            s.t[lane] += s.prev_delta[lane] * remaining;
            s.pending[lane] = s.t[lane] + s.prev_pend[lane];
        }
    }
    table
        .points
        .iter()
        .map(|p| EngineResult {
            per_thread_ns: s.t[p.start..p.start + p.lanes]
                .iter()
                .map(|&u| units_to_ns(u))
                .collect(),
            barrier_episodes: table.barriers_per_rep * reps,
        })
        .collect()
}

/// Compiles a trace for `(model, body)` at each placement and runs
/// [`run_batch`], measuring compile time into the given recorder's
/// `plan.compile_us` histogram when enabled. Thin wrapper used by the
/// scheduler's batch-prime path.
///
/// # Errors
///
/// Propagates [`run_batch`] errors.
pub fn run_batch_observed(
    model: &CpuModel,
    body: &[CpuOp],
    placements: &[Placement],
    reps: u64,
    rec: &Recorder,
) -> Result<Vec<EngineResult>> {
    if rec.is_enabled() {
        let start = std::time::Instant::now();
        let out = run_batch(model, body, placements, reps);
        rec.histogram("plan.compile_us")
            .observe(start.elapsed().as_micros() as u64);
        out
    } else {
        run_batch(model, body, placements, reps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_full_stepping, run_observed};
    use syncperf_core::{kernel, Affinity, DType, SYSTEM3};

    fn bodies() -> Vec<(&'static str, Vec<CpuOp>)> {
        vec![
            ("barrier", kernel::omp_barrier().test),
            ("flush", kernel::omp_flush(DType::I32, 1).test),
            ("critical", kernel::omp_critical_add(DType::F64).test),
            (
                "atomic",
                kernel::omp_atomic_update_scalar(DType::F32).baseline,
            ),
        ]
    }

    #[test]
    fn single_point_trace_matches_interpreter() {
        let model = CpuModel::baseline();
        let rec = Recorder::disabled();
        for (name, body) in bodies() {
            for threads in [1u32, 2, 7, 16, 32] {
                let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
                let trace = OpTrace::compile_for(&model, &p, &body);
                let mut t = vec![0u64; threads as usize];
                let mut pending = vec![0u64; threads as usize];
                let mut order = Vec::new();
                let reps = 37u64;
                let mut episodes = 0u64;
                for _ in 0..reps {
                    episodes += trace.step_rep(&mut t, &mut pending, &mut order);
                }
                let oracle = run_full_stepping(&model, &p, &body, reps, &rec).unwrap();
                let ns: Vec<f64> = t.iter().map(|&u| units_to_ns(u)).collect();
                assert_eq!(ns, oracle.per_thread_ns, "{name} x{threads}");
                assert_eq!(episodes, oracle.barrier_episodes, "{name} x{threads}");
            }
        }
    }

    #[test]
    fn batch_matches_per_point_runs() {
        let model = CpuModel::baseline();
        let rec = Recorder::disabled();
        for (name, body) in bodies() {
            let placements: Vec<Placement> = [1u32, 2, 3, 8, 16, 24, 32]
                .iter()
                .map(|&n| Placement::new(&SYSTEM3.cpu, Affinity::Spread, n))
                .collect();
            for reps in [1u64, 4, 500] {
                let batch = run_batch(&model, &body, &placements, reps).unwrap();
                for (p, got) in placements.iter().zip(&batch) {
                    let single = run_observed(&model, p, &body, reps, &rec).unwrap();
                    assert_eq!(got, &single, "{name} reps={reps} n={}", p.len());
                }
            }
        }
    }

    #[test]
    fn batch_mixes_affinities() {
        let model = CpuModel::baseline();
        let rec = Recorder::disabled();
        let body = kernel::omp_flush(DType::I32, 1).test;
        let placements = vec![
            Placement::new(&SYSTEM3.cpu, Affinity::Close, 16),
            Placement::new(&SYSTEM3.cpu, Affinity::Close, 32),
            Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16),
        ];
        let batch = run_batch(&model, &body, &placements, 200).unwrap();
        for (p, got) in placements.iter().zip(&batch) {
            let single = run_observed(&model, p, &body, 200, &rec).unwrap();
            assert_eq!(got, &single);
        }
    }

    #[test]
    fn batch_rejects_bad_inputs() {
        let model = CpuModel::baseline();
        let body = kernel::omp_barrier().baseline;
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 2);
        assert!(run_batch(&model, &body, &[p], 0).is_err());
        assert!(run_batch(&model, &body, &[], 10).is_err());
    }
}
