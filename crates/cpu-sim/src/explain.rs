//! Cost explanation: decompose one operation's modeled latency into its
//! mechanism components — the "why is this slow" counterpart of the
//! engine's opaque totals.
//!
//! The breakdown is computed from the same model primitives the engine
//! uses; a consistency test asserts that the components sum to exactly
//! what [`crate::engine`] charges.

use syncperf_core::{CpuOp, DType};

use crate::config::CpuModel;
use crate::memline::{classify, line_of, lock_line, Access, ContentionMap};
use crate::topology::Placement;

/// One op's latency, split by mechanism. All values in nanoseconds
/// except the dimensionless `smt_factor` (already applied to the
/// service term) and the contention metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCostBreakdown {
    /// Human-readable op description.
    pub op: String,
    /// Core-local service time (includes the SMT factor).
    pub service_ns: f64,
    /// SMT slowdown applied to the service term (1.0 = core not
    /// shared).
    pub smt_factor: f64,
    /// Cache-to-cache line transfer.
    pub transfer_ns: f64,
    /// Saturating arbitration queue.
    pub arbitration_ns: f64,
    /// Unbounded per-sharer tax.
    pub sharer_tax_ns: f64,
    /// Floating-point CAS-loop retries.
    pub fp_retry_ns: f64,
    /// Lock acquire/release overhead (critical sections only).
    pub lock_ns: f64,
    /// Contending cores on the touched line.
    pub contenders: u32,
    /// Whether contenders span sockets.
    pub cross_socket: bool,
}

impl CpuCostBreakdown {
    /// Total modeled latency.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.service_ns
            + self.transfer_ns
            + self.arbitration_ns
            + self.sharer_tax_ns
            + self.fp_retry_ns
            + self.lock_ns
    }

    /// Renders one formatted line.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<44} {:>8.1} ns = service {:>5.1} (x{:.2} SMT) + transfer {:>5.1} + arb {:>6.1} \
             + tax {:>5.1} + fp {:>5.1} + lock {:>5.1}   [{} contender(s){}]",
            self.op,
            self.total_ns(),
            self.service_ns,
            self.smt_factor,
            self.transfer_ns,
            self.arbitration_ns,
            self.sharer_tax_ns,
            self.fp_retry_ns,
            self.lock_ns,
            self.contenders,
            if self.cross_socket {
                ", cross-socket"
            } else {
                ""
            }
        )
    }
}

fn contention_parts(model: &CpuModel, contenders: u32, cross: bool) -> (f64, f64, f64) {
    if contenders == 0 {
        return (0.0, 0.0, 0.0);
    }
    let transfer = if cross {
        model.line_transfer_ns * model.cross_socket_factor
    } else {
        model.line_transfer_ns
    };
    (
        transfer,
        model.arbitration_ns * f64::from(contenders.min(model.contention_sat)),
        model.sharer_tax_ns * f64::from(contenders),
    )
}

/// Explains the steady-state cost of `body[op_index]` for thread `tid`.
///
/// Barrier and flush costs depend on run-time state (arrival spread,
/// store-buffer fill) and are reported with their state-independent
/// parts only.
///
/// # Panics
///
/// Panics if `op_index` or `tid` are out of range.
#[must_use]
pub fn explain_op(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    tid: usize,
    op_index: usize,
) -> CpuCostBreakdown {
    let op = &body[op_index];
    let contention = ContentionMap::analyze(body, placement, 64);
    let slot = placement.slot(tid);
    let smt = if placement.core_is_smt_loaded(tid) {
        model.smt_service_factor
    } else {
        1.0
    };

    let mut b = CpuCostBreakdown {
        op: format!("{op:?}"),
        service_ns: 0.0,
        smt_factor: smt,
        transfer_ns: 0.0,
        arbitration_ns: 0.0,
        sharer_tax_ns: 0.0,
        fp_retry_ns: 0.0,
        lock_ns: 0.0,
        contenders: 0,
        cross_socket: false,
    };

    match classify(op) {
        Access::None => match op {
            CpuOp::Flush => b.service_ns = model.fence_base_ns * smt,
            CpuOp::Barrier => {
                b.service_ns = model.barrier_ns(placement.len() as u32);
                b.op.push_str(" (rendezvous cost; arrival wait excluded)");
            }
            _ => {}
        },
        Access::Read(dtype, target) => {
            let line = line_of(dtype, target, tid, 64);
            let (c, cross) = contention.contenders(line, slot.core, false);
            let (t, a, x) = contention_parts(model, c, cross);
            b.service_ns = model.l1_hit_ns * smt;
            (b.transfer_ns, b.arbitration_ns, b.sharer_tax_ns) = (t, a, x);
            (b.contenders, b.cross_socket) = (c, cross);
        }
        Access::Write(dtype, target) => {
            let line = line_of(dtype, target, tid, 64);
            let (c, cross) = contention.contenders(line, slot.core, true);
            let (t, a, x) = contention_parts(model, c, cross);
            (b.contenders, b.cross_socket) = (c, cross);
            match op {
                CpuOp::Update { .. } => {
                    // Store-buffered: the thread sees only part of the
                    // coherence latency.
                    let visible = 1.0 - model.store_buffer_hiding;
                    b.service_ns = (model.l1_hit_ns + model.store_ns) * smt;
                    b.transfer_ns = t * visible;
                    b.arbitration_ns = a * visible;
                    b.sharer_tax_ns = x * visible;
                }
                CpuOp::AtomicWrite { .. } => {
                    b.service_ns = model.store_ns * smt;
                    (b.transfer_ns, b.arbitration_ns, b.sharer_tax_ns) = (t, a, x);
                }
                _ => {
                    b.service_ns = atomic_service(model, dtype) * smt;
                    if dtype.is_float() {
                        b.fp_retry_ns = model.fp_retry_ns * f64::from(c.min(model.contention_sat));
                    }
                    (b.transfer_ns, b.arbitration_ns, b.sharer_tax_ns) = (t, a, x);
                }
            }
        }
        Access::CriticalWrite(dtype, target) => {
            let (lc, lcross) = contention.contenders(lock_line(), slot.core, true);
            let (lt, la, lx) = contention_parts(model, lc, lcross);
            let line = line_of(dtype, target, tid, 64);
            let (c, cross) = contention.contenders(line, slot.core, true);
            let (t, a, x) = contention_parts(model, c, cross);
            b.lock_ns = model.lock_overhead_ns * smt
                + (model.rmw_int_ns + model.store_ns) * smt
                + 2.0 * (lt + la + lx);
            b.service_ns = (model.l1_hit_ns + model.store_ns) * smt;
            (b.transfer_ns, b.arbitration_ns, b.sharer_tax_ns) = (t, a, x);
            (b.contenders, b.cross_socket) = (lc.max(c), cross || lcross);
        }
    }
    b
}

fn atomic_service(model: &CpuModel, dtype: DType) -> f64 {
    if dtype.is_integer() {
        model.rmw_int_ns
    } else {
        model.rmw_int_ns + model.fp_cas_extra_ns
    }
}

/// Explains every op of `body` for thread 0 and renders a report.
#[must_use]
pub fn explain_body(model: &CpuModel, placement: &Placement, body: &[CpuOp]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cost breakdown for thread 0 of {} ({} threads):\n",
        placement.len(),
        placement.len()
    ));
    for i in 0..body.len() {
        let b = explain_op(model, placement, body, 0, i);
        out.push_str(&b.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use syncperf_core::{kernel, Affinity, SYSTEM3};

    fn setup(threads: u32) -> (CpuModel, Placement) {
        (
            CpuModel::baseline(),
            Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads),
        )
    }

    /// The breakdown must sum to exactly what the engine charges for
    /// barrier-free steady-state bodies.
    #[test]
    fn breakdown_consistent_with_engine() {
        let (model, placement) = setup(16);
        let bodies = [
            kernel::omp_atomic_update_scalar(DType::F64).baseline,
            kernel::omp_atomic_update_array(DType::I32, 1).baseline,
            kernel::omp_atomic_update_array(DType::I32, 16).baseline,
            kernel::omp_atomic_write(DType::F32).baseline,
            kernel::omp_critical_add(DType::I32).baseline,
            kernel::omp_atomic_read(DType::U64).baseline,
        ];
        for body in &bodies {
            let explained: f64 = (0..body.len())
                .map(|i| explain_op(&model, &placement, body, 0, i).total_ns())
                .sum();
            // Engine steady-state per-rep cost for thread 0.
            let r10 = engine::run(&model, &placement, body, 10)
                .unwrap()
                .per_thread_ns[0];
            let r20 = engine::run(&model, &placement, body, 20)
                .unwrap()
                .per_thread_ns[0];
            let per_rep = (r20 - r10) / 10.0;
            assert!(
                (explained - per_rep).abs() < 1e-6 * per_rep.max(1.0),
                "{body:?}: explained {explained} vs engine {per_rep}"
            );
        }
    }

    /// The breakdown must also agree, op by op, with the `cpu_sim.op`
    /// trace events the engine emits — the same program explained and
    /// traced gives one consistent story.
    #[test]
    fn breakdown_matches_engine_total_and_per_op_trace_events() {
        use syncperf_core::obs::{ArgValue, Event, Recorder};

        fn arg_u64(e: &Event, key: &str) -> Option<u64> {
            e.args.iter().find_map(|(k, v)| match v {
                ArgValue::U64(u) if *k == key => Some(*u),
                _ => None,
            })
        }
        fn arg_f64(e: &Event, key: &str) -> Option<f64> {
            e.args.iter().find_map(|(k, v)| match v {
                ArgValue::F64(x) if *k == key => Some(*x),
                _ => None,
            })
        }

        let (model, placement) = setup(16);
        let bodies = [
            kernel::omp_atomic_update_scalar(DType::F64).test,
            kernel::omp_atomic_update_array(DType::I32, 1).baseline,
            kernel::omp_critical_add(DType::I32).baseline,
            kernel::omp_flush(DType::I32, 4).baseline,
        ];
        for body in &bodies {
            let explained: Vec<f64> = (0..body.len())
                .map(|i| explain_op(&model, &placement, body, 0, i).total_ns())
                .collect();

            let rec = Recorder::enabled();
            let r10 = engine::run_observed(&model, &placement, body, 10, &rec)
                .unwrap()
                .per_thread_ns[0];
            let r20 = engine::run(&model, &placement, body, 20)
                .unwrap()
                .per_thread_ns[0];
            let per_rep = (r20 - r10) / 10.0;
            let explained_total: f64 = explained.iter().sum();
            assert!(
                (explained_total - per_rep).abs() < 1e-6 * per_rep.max(1.0),
                "{body:?}: explained {explained_total} vs engine {per_rep}"
            );

            // The engine simulates warm reps 0..4 op by op; rep 3 is
            // steady state, so its per-op events must reproduce the
            // breakdown exactly.
            let events = rec.drain_events();
            let mut traced_total = 0.0;
            for (idx, &expect) in explained.iter().enumerate() {
                let ev = events
                    .iter()
                    .find(|e| {
                        e.cat == "cpu_sim.op"
                            && arg_u64(e, "tid") == Some(0)
                            && arg_u64(e, "rep") == Some(3)
                            && arg_u64(e, "idx") == Some(idx as u64)
                    })
                    .unwrap_or_else(|| panic!("{body:?}: no trace event for op {idx}"));
                let cost = arg_f64(ev, "cost_ns").expect("cost_ns argument");
                assert!(
                    (cost - expect).abs() < 1e-6 * expect.max(1.0),
                    "{body:?} op {idx}: traced {cost} vs explained {expect}"
                );
                traced_total += cost;
            }
            assert!(
                (traced_total - per_rep).abs() < 1e-6 * per_rep.max(1.0),
                "{body:?}: traced rep {traced_total} vs engine {per_rep}"
            );
        }
    }

    #[test]
    fn contended_atomic_blames_arbitration() {
        let (model, placement) = setup(16);
        let body = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let b = explain_op(&model, &placement, &body, 0, 0);
        assert_eq!(b.contenders, 15);
        assert!(
            b.arbitration_ns > b.service_ns,
            "contention dominates: {b:?}"
        );
        assert!(b.transfer_ns > 0.0);
    }

    #[test]
    fn padded_atomic_blames_nothing_but_service() {
        let (model, placement) = setup(16);
        let body = kernel::omp_atomic_update_array(DType::I32, 16).baseline;
        let b = explain_op(&model, &placement, &body, 0, 0);
        assert_eq!(b.contenders, 0);
        assert_eq!(b.transfer_ns + b.arbitration_ns + b.sharer_tax_ns, 0.0);
        assert!((b.total_ns() - model.rmw_int_ns).abs() < 1e-9);
    }

    #[test]
    fn float_atomics_show_retry_component() {
        let (model, placement) = setup(8);
        let body = kernel::omp_atomic_update_scalar(DType::F64).baseline;
        let b = explain_op(&model, &placement, &body, 0, 0);
        assert!(b.fp_retry_ns > 0.0);
        let int_body = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let bi = explain_op(&model, &placement, &int_body, 0, 0);
        assert_eq!(bi.fp_retry_ns, 0.0);
    }

    #[test]
    fn critical_shows_lock_component() {
        let (model, placement) = setup(8);
        let body = kernel::omp_critical_add(DType::I32).baseline;
        let b = explain_op(&model, &placement, &body, 0, 0);
        assert!(b.lock_ns > model.lock_overhead_ns);
    }

    #[test]
    fn smt_factor_reported_when_core_shared() {
        let model = CpuModel::baseline();
        let placement = Placement::new(&SYSTEM3.cpu, Affinity::Close, 32);
        let body = kernel::omp_atomic_update_array(DType::I32, 16).baseline;
        let b = explain_op(&model, &placement, &body, 0, 0);
        assert_eq!(b.smt_factor, model.smt_service_factor);
    }

    #[test]
    fn report_renders_every_op() {
        let (model, placement) = setup(4);
        let body = kernel::omp_flush(DType::I32, 8).test;
        let report = explain_body(&model, &placement, &body);
        assert_eq!(report.lines().count(), body.len() + 1);
        assert!(report.contains("Flush"));
    }
}
