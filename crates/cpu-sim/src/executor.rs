//! The CPU-simulator [`Executor`]: plugs the engine into the
//! measurement protocol, adding deterministic per-run timing jitter.

use syncperf_core::rng::SplitMix64;
use syncperf_core::{
    Affinity, CpuOp, ExecParams, Executor, Result, SyncPerfError, SystemSpec, ThreadTimes, TimeUnit,
};

use crate::config::CpuModel;
use crate::engine::{self, EngineResult};
use crate::topology::Placement;

/// How many recent engine results the executor memoizes. The protocol
/// alternates between a kernel's baseline and test bodies 6–18 times
/// per measurement with identical parameters; two entries would
/// suffice, four absorbs interleaved kernels too.
const ENGINE_CACHE_CAP: usize = 4;

/// One memoized deterministic engine run.
#[derive(Debug, Clone)]
struct CacheEntry {
    body: Vec<CpuOp>,
    threads: u32,
    affinity: Affinity,
    reps: u64,
    result: EngineResult,
    uses_hyperthreads: bool,
}

/// Simulates the CPU of one of the paper's systems.
///
/// Virtual times are reported in seconds (the engine's nanoseconds
/// divided by 10⁹), so measurements read exactly like the real-thread
/// executor's. Every run perturbs the result with the system's jitter
/// model — System 3's AMD CPU gets a visibly larger amplitude (Fig. 4a)
/// — deterministically from the constructor seed.
///
/// # Examples
///
/// ```
/// use syncperf_core::{kernel, DType, ExecParams, Protocol, SYSTEM3};
/// use syncperf_cpu_sim::CpuSimExecutor;
///
/// # fn main() -> syncperf_core::Result<()> {
/// let mut sim = CpuSimExecutor::new(&SYSTEM3);
/// let m = Protocol::SIM.measure(
///     &mut sim,
///     &kernel::omp_atomic_update_scalar(DType::I32),
///     &ExecParams::new(16).with_loops(50, 4),
/// )?;
/// assert!(m.throughput().unwrap() > 1e5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CpuSimExecutor {
    system: SystemSpec,
    model: CpuModel,
    rng: SplitMix64,
    recorder: syncperf_core::obs::Recorder,
    /// Most-recent-first memo of engine runs. The engine is fully
    /// deterministic given `(body, threads, affinity, reps)` — the
    /// model and system are fixed at construction — so the protocol's
    /// repeated identical executions reuse one simulation. Bypassed
    /// whenever a recorder is live (observed runs must re-emit their
    /// trace events).
    cache: Vec<CacheEntry>,
}

impl CpuSimExecutor {
    /// Default deterministic seed.
    pub const DEFAULT_SEED: u64 = 0x12345;

    /// Creates a simulator for `system`'s CPU with the default seed.
    #[must_use]
    pub fn new(system: &SystemSpec) -> Self {
        Self::with_seed(system, Self::DEFAULT_SEED)
    }

    /// Creates a simulator with an explicit jitter seed.
    #[must_use]
    pub fn with_seed(system: &SystemSpec, seed: u64) -> Self {
        CpuSimExecutor {
            system: system.clone(),
            model: CpuModel::for_system(&system.cpu, system.cpu_jitter),
            rng: SplitMix64::seed_from_u64(seed),
            recorder: syncperf_core::obs::Recorder::disabled(),
            cache: Vec::new(),
        }
    }

    /// Creates a simulator with a custom latency model (used by the
    /// ablation benches).
    #[must_use]
    pub fn with_model(system: &SystemSpec, model: CpuModel) -> Self {
        CpuSimExecutor {
            system: system.clone(),
            model,
            rng: SplitMix64::seed_from_u64(Self::DEFAULT_SEED),
            recorder: syncperf_core::obs::Recorder::disabled(),
            cache: Vec::new(),
        }
    }

    /// Replaces the jitter RNG seed, leaving system and model intact.
    /// The sweep scheduler seeds each job's executor from the job's
    /// content hash so a measurement depends only on its own identity,
    /// never on execution order.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::seed_from_u64(seed);
        self
    }

    /// The active latency model.
    #[must_use]
    pub fn model(&self) -> &CpuModel {
        &self.model
    }

    /// The simulated system.
    #[must_use]
    pub fn system(&self) -> &SystemSpec {
        &self.system
    }

    /// Attaches a [`Recorder`](syncperf_core::obs::Recorder); engine
    /// runs then emit `cpu_sim.*` events/counters into it. Without one,
    /// the executor falls back to the globally installed recorder.
    #[must_use]
    pub fn with_recorder(mut self, rec: syncperf_core::obs::Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// The recorder engine runs observe into: this executor's own if
    /// enabled, otherwise the global one.
    fn effective_recorder(&self) -> &syncperf_core::obs::Recorder {
        if self.recorder.is_enabled() {
            &self.recorder
        } else {
            syncperf_core::obs::global()
        }
    }

    /// Runs the engine through the memo cache (recorder known to be
    /// disabled). Hits move to the front; misses evict the oldest entry
    /// beyond [`ENGINE_CACHE_CAP`].
    fn cached_run(&mut self, body: &[CpuOp], params: &ExecParams) -> Result<(EngineResult, bool)> {
        let reps = params.timed_reps();
        if let Some(pos) = self.cache.iter().position(|e| {
            e.threads == params.threads
                && e.affinity == params.affinity
                && e.reps == reps
                && e.body == body
        }) {
            let hit = self.cache.remove(pos);
            let out = (hit.result.clone(), hit.uses_hyperthreads);
            self.cache.insert(0, hit);
            return Ok(out);
        }
        let placement = Placement::new(&self.system.cpu, params.affinity, params.threads);
        let result = engine::run_observed(
            &self.model,
            &placement,
            body,
            reps,
            self.effective_recorder(),
        )?;
        let uses_hyperthreads = placement.uses_hyperthreads();
        self.cache.insert(
            0,
            CacheEntry {
                body: body.to_vec(),
                threads: params.threads,
                affinity: params.affinity,
                reps,
                result: result.clone(),
                uses_hyperthreads,
            },
        );
        self.cache.truncate(ENGINE_CACHE_CAP);
        Ok((result, uses_hyperthreads))
    }

    /// Seeds the engine memo with a precomputed result for
    /// `(body, params)`. The scheduler's batched sweep evaluation
    /// computes many same-shape engine runs in one struct-of-arrays
    /// pass ([`crate::trace::run_batch`]) and hands each job its
    /// slice; the protocol's executions then hit the memo instead of
    /// re-simulating. Priming is invisible to results: the engine is
    /// deterministic, the memo is bypassed whenever a recorder is
    /// live, and jitter is drawn after the (possibly memoized) run.
    pub fn prime_engine(&mut self, body: &[CpuOp], params: &ExecParams, result: EngineResult) {
        let placement = Placement::new(&self.system.cpu, params.affinity, params.threads);
        self.cache.insert(
            0,
            CacheEntry {
                body: body.to_vec(),
                threads: params.threads,
                affinity: params.affinity,
                reps: params.timed_reps(),
                result,
                uses_hyperthreads: placement.uses_hyperthreads(),
            },
        );
        self.cache.truncate(ENGINE_CACHE_CAP);
    }
}

impl Executor for CpuSimExecutor {
    type Op = CpuOp;

    fn name(&self) -> &str {
        "cpu-sim"
    }

    fn time_unit(&self) -> TimeUnit {
        TimeUnit::Seconds
    }

    fn execute(&mut self, body: &[CpuOp], params: &ExecParams) -> Result<ThreadTimes> {
        params.validate()?;
        if params.blocks != 1 {
            return Err(SyncPerfError::InvalidParams(
                "the CPU simulator runs a single team (blocks must be 1)".into(),
            ));
        }
        let (result, uses_hyperthreads) = if self.effective_recorder().is_enabled() {
            // Observed runs bypass the memo so every execution re-emits
            // its trace events and counters.
            let placement = Placement::new(&self.system.cpu, params.affinity, params.threads);
            let r = engine::run_observed(
                &self.model,
                &placement,
                body,
                params.timed_reps(),
                self.effective_recorder(),
            )?;
            let ht = placement.uses_hyperthreads();
            (r, ht)
        } else {
            self.cached_run(body, params)?
        };

        // Timing jitter: one run-wide component (OS/system noise hits
        // the whole measurement — it survives the max-across-threads)
        // plus a small per-thread component. Hyperthreading adds
        // variability (Section V-A2 observes exactly that). Drawn after
        // the (possibly memoized) engine run so the RNG sequence is
        // independent of cache hits.
        let amp = self.model.jitter_amplitude
            + if uses_hyperthreads {
                self.model.smt_jitter_boost
            } else {
                0.0
            };
        let run_noise: f64 = 1.0 + amp * self.rng.gen_symmetric();
        let per_thread = result
            .per_thread_ns
            .iter()
            .map(|&ns| {
                let u: f64 = self.rng.gen_symmetric();
                ns * 1e-9 * run_noise * (1.0 + 0.1 * amp * u)
            })
            .collect();
        Ok(ThreadTimes::per_thread(per_thread))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, Protocol, SYSTEM1, SYSTEM2, SYSTEM3};

    fn quick(threads: u32) -> ExecParams {
        ExecParams::new(threads).with_loops(50, 4)
    }

    #[test]
    fn reports_per_thread_seconds() {
        let mut sim = CpuSimExecutor::new(&SYSTEM3);
        let t = sim
            .execute(&kernel::omp_barrier().baseline, &quick(8))
            .unwrap();
        assert_eq!(t.len(), 8);
        for v in &t {
            assert!(v > 0.0 && v < 1.0, "unreasonable virtual time {v}");
        }
    }

    #[test]
    fn rejects_blocks() {
        let mut sim = CpuSimExecutor::new(&SYSTEM3);
        assert!(sim
            .execute(&kernel::omp_barrier().baseline, &quick(2).with_blocks(2))
            .is_err());
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut a = CpuSimExecutor::with_seed(&SYSTEM3, 42);
        let mut b = CpuSimExecutor::with_seed(&SYSTEM3, 42);
        let body = kernel::omp_atomic_update_scalar(DType::F32).test;
        assert_eq!(
            a.execute(&body, &quick(8)).unwrap(),
            b.execute(&body, &quick(8)).unwrap()
        );
    }

    #[test]
    fn jitter_varies_between_runs() {
        let mut sim = CpuSimExecutor::new(&SYSTEM3);
        let body = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let a = sim.execute(&body, &quick(4)).unwrap();
        let b = sim.execute(&body, &quick(4)).unwrap();
        assert_ne!(a, b, "jitter should perturb consecutive runs");
    }

    #[test]
    fn amd_system_noisier_than_intel() {
        let s3 = CpuSimExecutor::new(&SYSTEM3);
        let s2 = CpuSimExecutor::new(&SYSTEM2);
        assert!(s3.model().jitter_amplitude > s2.model().jitter_amplitude);
    }

    #[test]
    fn full_protocol_produces_positive_atomic_cost() {
        let mut sim = CpuSimExecutor::new(&SYSTEM3);
        let m = Protocol::PAPER
            .measure(
                &mut sim,
                &kernel::omp_atomic_update_scalar(DType::I32),
                &quick(8),
            )
            .unwrap();
        assert!(m.per_op > 0.0);
        // ~6.5 ns modeled base + contention; sanity-range check.
        let ns = m.runtime_seconds() * 1e9;
        assert!(ns > 10.0 && ns < 1000.0, "atomic cost {ns} ns out of range");
    }

    #[test]
    fn atomic_read_measures_negligible() {
        let mut sim = CpuSimExecutor::new(&SYSTEM2);
        let m = Protocol::PAPER
            .measure(&mut sim, &kernel::omp_atomic_read(DType::I32), &quick(8))
            .unwrap();
        assert!(
            m.is_negligible(),
            "atomic reads must be free (§V-A2): {}",
            m.per_op
        );
        assert!(m.throughput().is_none());
    }

    #[test]
    fn attached_recorder_observes_engine_counters() {
        let rec = syncperf_core::obs::Recorder::enabled();
        let mut sim = CpuSimExecutor::new(&SYSTEM3).with_recorder(rec.clone());
        sim.execute(&kernel::omp_barrier().test, &quick(4)).unwrap();
        sim.execute(
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            &quick(8),
        )
        .unwrap();
        let snap = rec.snapshot();
        assert!(snap.counter("cpu_sim.engine_runs") >= 2);
        assert!(snap.counter("cpu_sim.barrier_rounds") > 0);
        assert!(
            snap.counter("cpu_sim.mesi_transitions") > 0,
            "contended atomics move lines"
        );
        assert!(snap.gauge("cpu_sim.arb_queue_depth_max") > 0);
    }

    #[test]
    fn engine_memo_is_invisible_to_results() {
        // A cache-hitting executor and an observed (cache-bypassing)
        // executor with the same jitter seed must agree bit-for-bit.
        let body_a = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let body_b = kernel::omp_atomic_update_scalar(DType::I32).test;
        let mut cached = CpuSimExecutor::with_seed(&SYSTEM3, 7);
        let mut observed = CpuSimExecutor::with_seed(&SYSTEM3, 7)
            .with_recorder(syncperf_core::obs::Recorder::enabled());
        for _ in 0..3 {
            for body in [&body_a, &body_b] {
                assert_eq!(
                    cached.execute(body, &quick(8)).unwrap(),
                    observed.execute(body, &quick(8)).unwrap()
                );
            }
        }
    }

    #[test]
    fn all_three_systems_run() {
        for sys in [&SYSTEM1, &SYSTEM2, &SYSTEM3] {
            let mut sim = CpuSimExecutor::new(sys);
            let m = Protocol::SIM
                .measure(&mut sim, &kernel::omp_barrier(), &quick(4))
                .unwrap();
            assert!(m.per_op > 0.0, "{}", sys);
        }
    }
}
