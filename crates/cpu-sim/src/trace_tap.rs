//! Cross-check between the analyzer's race detector and the MESI
//! replay.
//!
//! The vector-clock detector ([`syncperf_analyze::vc`]) and the
//! explicit MESI state machine ([`crate::mesi`]) replay the *same*
//! per-thread access streams — the analyzer at element granularity, the
//! directory at line granularity. That overlap makes one direction of
//! each verdict checkable against the other:
//!
//! * every location the detector calls **raced** must keep its cache
//!   line generating coherence traffic in steady state (a race needs a
//!   write plus a concurrent access, which is exactly a MESI
//!   invalidation ping-pong), and
//! * the static linter must agree with the detector in full
//!   ([`syncperf_analyze::agree`]).
//!
//! The converse deliberately does **not** hold — atomics and false
//! sharing generate line traffic without any element-level race — which
//! is asserted by the tests below.

use std::collections::HashMap;

use syncperf_analyze::trace::{lower_cpu_op, Geometry, TraceEvent};
use syncperf_analyze::vc::replay_cpu;
use syncperf_analyze::{check_cpu_body, DynReport};
use syncperf_core::obs;
use syncperf_core::CpuOp;

use crate::memline::{line_of, lock_line, LineId};
use crate::mesi::{LineTraffic, MesiDirectory};

/// Cache-line size used by the cross-check replays.
const LINE_BYTES: usize = 64;

/// Steady-state line traffic from replaying `body` over `threads`
/// one-thread-per-core caches: one warmup iteration (cold fills), then
/// `iterations` measured iterations.
#[must_use]
pub fn mesi_steady_traffic(
    body: &[CpuOp],
    threads: usize,
    iterations: usize,
) -> HashMap<LineId, LineTraffic> {
    let mut dir = MesiDirectory::new(threads);
    let mut lines = Vec::new();
    let replay_once = |dir: &mut MesiDirectory, lines: &mut Vec<LineId>| {
        for &op in body {
            for tid in 0..threads {
                for ev in lower_cpu_op(op, tid) {
                    match ev {
                        TraceEvent::Access {
                            kind,
                            dtype,
                            target,
                            ..
                        } => {
                            let line = line_of(dtype, target, tid, LINE_BYTES);
                            lines.push(line);
                            if kind.is_write() {
                                dir.write(tid, line);
                            } else {
                                dir.read(tid, line);
                            }
                        }
                        // The lock itself is a read-modify-write word.
                        TraceEvent::LockAcquire(_) => {
                            lines.push(lock_line());
                            dir.write(tid, lock_line());
                        }
                        _ => {}
                    }
                }
            }
        }
    };
    replay_once(&mut dir, &mut lines);
    dir.reset_traffic();
    for _ in 0..iterations {
        replay_once(&mut dir, &mut lines);
    }
    lines.sort_unstable();
    lines.dedup();
    lines.into_iter().map(|l| (l, dir.traffic(l))).collect()
}

/// The result of a successful cross-check.
#[derive(Debug, Clone)]
pub struct MesiCrossCheck {
    /// The dynamic race report the check was run against.
    pub report: DynReport,
    /// Lines whose steady-state traffic corroborated a detected race.
    pub corroborated_lines: Vec<LineId>,
}

/// Cross-checks one CPU body three ways: static linter vs. vector-clock
/// detector (must agree exactly), and every detected race vs. the MESI
/// replay (the raced element's line must stay hot on the bus).
///
/// Records `analyze.mesi_crosscheck.{ok,fail}` on the global recorder.
///
/// # Errors
///
/// Returns a description of the first inconsistency found.
pub fn crosscheck_cpu_body(body: &[CpuOp]) -> Result<MesiCrossCheck, String> {
    let result = crosscheck_inner(body);
    let counter = if result.is_ok() {
        "analyze.mesi_crosscheck.ok"
    } else {
        "analyze.mesi_crosscheck.fail"
    };
    obs::global().counter(counter).inc();
    result
}

fn crosscheck_inner(body: &[CpuOp]) -> Result<MesiCrossCheck, String> {
    let agreement = check_cpu_body(body);
    if !agreement.holds() {
        return Err(format!(
            "static/dynamic disagreement: {}",
            agreement.explain()
        ));
    }
    let geom = Geometry::CPU_AUDIT;
    let report = replay_cpu(body, geom, syncperf_analyze::vc::AUDIT_ITERATIONS);
    let traffic = mesi_steady_traffic(body, geom.total_threads(), 2);
    let mut corroborated = Vec::new();
    for finding in report.races.values() {
        // Thread-shared targets resolve to the same line for every tid.
        let line = line_of(finding.dtype, finding.target, 0, LINE_BYTES);
        let t = traffic.get(&line).copied().unwrap_or_default();
        if t.invalidations == 0 {
            return Err(format!(
                "race on {:?} (op #{}) not corroborated: line {line:?} shows no steady-state \
                 invalidations ({t:?})",
                finding.target, finding.op_index
            ));
        }
        corroborated.push(line);
    }
    Ok(MesiCrossCheck {
        report,
        corroborated_lines: corroborated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, Target};

    #[test]
    fn seeded_race_is_corroborated_by_mesi_traffic() {
        let body = [CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        }];
        let check = crosscheck_cpu_body(&body).expect("halves must agree");
        assert_eq!(check.report.races.len(), 1);
        assert_eq!(check.corroborated_lines.len(), 1);
    }

    #[test]
    fn builtin_cpu_kernels_crosscheck_clean() {
        let kernels = [
            kernel::omp_barrier(),
            kernel::omp_atomic_update_scalar(DType::F64),
            kernel::omp_atomic_update_array(DType::I32, 1),
            kernel::omp_atomic_capture_scalar(DType::U64),
            kernel::omp_atomic_write(DType::F32),
            kernel::omp_atomic_read(DType::I32),
            kernel::omp_critical_add(DType::I32),
            kernel::omp_flush(DType::F64, 8),
        ];
        for k in kernels {
            for body in [&k.baseline, &k.test] {
                let check = crosscheck_cpu_body(body).unwrap_or_else(|e| panic!("{}: {e}", k.name));
                assert!(check.report.races.is_empty(), "{}: unexpected race", k.name);
            }
        }
    }

    #[test]
    fn traffic_without_race_is_fine() {
        // Contended atomics ping-pong the line but race-free: the
        // MESI⇒race direction must NOT be enforced.
        let body = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let check = crosscheck_cpu_body(&body).expect("agreement");
        assert!(check.report.races.is_empty());
        let geom = Geometry::CPU_AUDIT;
        let traffic = mesi_steady_traffic(&body, geom.total_threads(), 2);
        let line = line_of(DType::I32, Target::SHARED, 0, 64);
        assert!(traffic[&line].invalidations > 0, "atomics still contend");
    }

    #[test]
    fn false_sharing_traffic_without_race() {
        // Stride-1 private updates: distinct elements (no race) on one
        // line (heavy traffic).
        let body = [CpuOp::Update {
            dtype: DType::I32,
            target: Target::private(1),
        }];
        let check = crosscheck_cpu_body(&body).expect("agreement");
        assert!(check.report.races.is_empty());
        let traffic = mesi_steady_traffic(&body, 4, 2);
        let line = line_of(DType::I32, Target::private(1), 0, 64);
        assert!(traffic[&line].invalidations > 0, "false sharing contends");
    }

    #[test]
    fn padded_stride_generates_no_steady_traffic() {
        let body = [CpuOp::Update {
            dtype: DType::I32,
            target: Target::private(16),
        }];
        let traffic = mesi_steady_traffic(&body, 4, 2);
        for (line, t) in traffic {
            assert_eq!(t.bus_transactions(), 0, "{line:?} must be private");
        }
    }

    #[test]
    fn critical_add_hits_the_lock_line() {
        let body = [CpuOp::CriticalAdd {
            dtype: DType::I32,
            target: Target::SHARED,
        }];
        let traffic = mesi_steady_traffic(&body, 4, 2);
        assert!(traffic[&lock_line()].invalidations > 0);
    }
}
