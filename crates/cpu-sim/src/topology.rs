//! Thread placement over the simulated machine's sockets, cores, and
//! SMT ways.
//!
//! The placement decides which software threads are hyperthread
//! siblings (they share an L1 and cannot false-share with each other)
//! and which line contenders sit across a socket boundary (their
//! transfers cost more).

use syncperf_core::{Affinity, CpuSpec};

/// Where one software thread runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    /// Socket index.
    pub socket: u32,
    /// Global physical-core index (unique across sockets).
    pub core: u32,
    /// SMT way on the core.
    pub smt: u32,
}

/// A complete placement of `n` threads on a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    slots: Vec<Slot>,
    cores_per_socket: u32,
    smt_ways: u32,
    sockets: u32,
}

impl Placement {
    /// Computes the placement of `nthreads` threads on `cpu` under the
    /// given affinity policy.
    ///
    /// * `Close` fills socket 0's cores (first SMT way) in order, then
    ///   socket 1's, then comes back for the second SMT ways — the
    ///   behavior of `OMP_PROC_BIND=close` with core places on a
    ///   standard Linux CPU enumeration.
    /// * `Spread` round-robins over sockets so consecutive threads land
    ///   on alternating sockets, using second SMT ways only after every
    ///   core has a thread.
    /// * `SystemChoice` behaves like `Spread` (load balancing).
    ///
    /// Threads beyond the hardware-thread count wrap around.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` is zero.
    #[must_use]
    pub fn new(cpu: &CpuSpec, affinity: Affinity, nthreads: u32) -> Self {
        assert!(nthreads > 0, "placement of zero threads");
        let sockets = cpu.sockets;
        let cps = cpu.cores_per_socket;
        let ways = cpu.threads_per_core;
        let total_cores = sockets * cps;
        let hw_total = total_cores * ways;

        let slots = (0..nthreads)
            .map(|t| {
                let slot = t % hw_total;
                let (core, smt) = match affinity {
                    Affinity::Close => {
                        let smt = slot / total_cores;
                        let core = slot % total_cores;
                        (core, smt)
                    }
                    Affinity::Spread | Affinity::SystemChoice => {
                        let smt = slot / total_cores;
                        let within = slot % total_cores;
                        // Alternate sockets: thread 0 → socket 0 core 0,
                        // thread 1 → socket 1 core 0, …
                        let socket = within % sockets;
                        let core_in_socket = within / sockets;
                        (socket * cps + core_in_socket, smt)
                    }
                };
                Slot {
                    socket: core / cps,
                    core,
                    smt,
                }
            })
            .collect();

        Placement {
            slots,
            cores_per_socket: cps,
            smt_ways: ways,
            sockets,
        }
    }

    /// Number of placed threads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the placement is empty (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn slot(&self, tid: usize) -> Slot {
        self.slots[tid]
    }

    /// Whether both SMT ways of `tid`'s core are occupied by team
    /// threads — when true the core's issue bandwidth is shared and
    /// service times rise by the SMT factor.
    #[must_use]
    pub fn core_is_smt_loaded(&self, tid: usize) -> bool {
        let me = self.slots[tid];
        self.slots
            .iter()
            .enumerate()
            .any(|(i, s)| i != tid && s.core == me.core && s.smt != me.smt)
    }

    /// Whether any thread uses a second SMT way (hyperthreading region
    /// of the sweep, right of the dashed line in the paper's figures).
    #[must_use]
    pub fn uses_hyperthreads(&self) -> bool {
        self.slots.iter().any(|s| s.smt > 0)
    }

    /// Fraction of threads whose core is SMT-loaded.
    #[must_use]
    pub fn smt_loaded_fraction(&self) -> f64 {
        let loaded = (0..self.slots.len())
            .filter(|&t| self.core_is_smt_loaded(t))
            .count();
        loaded as f64 / self.slots.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{SYSTEM1, SYSTEM3};

    #[test]
    fn close_fills_socket0_first() {
        // System 1: 2 sockets × 10 cores × 2 SMT.
        let p = Placement::new(&SYSTEM1.cpu, Affinity::Close, 12);
        assert_eq!(
            p.slot(0),
            Slot {
                socket: 0,
                core: 0,
                smt: 0
            }
        );
        assert_eq!(
            p.slot(9),
            Slot {
                socket: 0,
                core: 9,
                smt: 0
            }
        );
        assert_eq!(
            p.slot(10),
            Slot {
                socket: 1,
                core: 10,
                smt: 0
            }
        );
    }

    #[test]
    fn spread_alternates_sockets() {
        let p = Placement::new(&SYSTEM1.cpu, Affinity::Spread, 4);
        assert_eq!(p.slot(0).socket, 0);
        assert_eq!(p.slot(1).socket, 1);
        assert_eq!(p.slot(2).socket, 0);
        assert_eq!(p.slot(3).socket, 1);
    }

    #[test]
    fn smt_engaged_only_beyond_core_count() {
        let cores = SYSTEM3.cpu.total_cores();
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, cores);
        assert!(!p.uses_hyperthreads());
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, cores + 1);
        assert!(p.uses_hyperthreads());
    }

    #[test]
    fn smt_sibling_detection() {
        let cores = SYSTEM3.cpu.total_cores(); // 16
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, cores + 1);
        // Thread `cores` is the second way of core 0; thread 0 shares.
        assert!(p.core_is_smt_loaded(0));
        assert!(p.core_is_smt_loaded(cores as usize));
        assert!(!p.core_is_smt_loaded(1));
    }

    #[test]
    fn all_threads_distinct_cores_below_core_count() {
        for aff in [Affinity::Spread, Affinity::Close] {
            let p = Placement::new(&SYSTEM3.cpu, aff, 16);
            let mut cores: Vec<u32> = (0..16).map(|t| p.slot(t).core).collect();
            cores.sort_unstable();
            cores.dedup();
            assert_eq!(cores.len(), 16, "{aff:?}");
        }
    }

    #[test]
    fn oversubscription_wraps() {
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 40);
        assert_eq!(p.slot(32), p.slot(0));
    }

    #[test]
    fn smt_fraction() {
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 16);
        assert_eq!(p.smt_loaded_fraction(), 0.0);
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 32);
        assert_eq!(p.smt_loaded_fraction(), 1.0);
    }

    #[test]
    fn socket_field_consistent_with_core() {
        let p = Placement::new(&SYSTEM1.cpu, Affinity::Close, 40);
        for t in 0..40 {
            let s = p.slot(t);
            assert_eq!(s.socket, s.core / SYSTEM1.cpu.cores_per_socket);
        }
    }
}
