//! The CPU simulation engine: advances every thread through
//! `reps` repetitions of a kernel body, charging coherence-aware costs
//! per operation and rendezvousing at barriers.
//!
//! The model is *cycle-approximate, mechanism-faithful*: per-op latency
//! is `service + contention(line)` where the contention term saturates
//! (a bounded coherence-arbitration queue), store buffers hide part of
//! a store's coherence latency until a fence drains them, hyperthread
//! pairs share issue bandwidth and an L1, and barriers release all
//! arrivals together after a participant-count-dependent cost.

use syncperf_core::obs::{ArgValue, Recorder};
use syncperf_core::{CpuOp, DType, Result, SyncPerfError};

use crate::config::CpuModel;
use crate::memline::{classify, line_of, Access, ContentionMap};
use crate::topology::Placement;

/// Outcome of one engine run: per-thread virtual nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineResult {
    /// Elapsed virtual time per thread for the whole timed region.
    pub per_thread_ns: Vec<f64>,
    /// Number of barrier episodes executed.
    pub barrier_episodes: u64,
}

/// Per-thread mutable state during a run.
#[derive(Debug, Clone)]
struct ThreadState {
    /// Current virtual time.
    t: f64,
    /// Latest time at which all of this thread's pending stores are
    /// globally visible (the store buffer drain horizon).
    pending_store_until: f64,
}

/// Runs `body` for `reps` repetitions on every placed thread.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] if `reps` is zero.
pub fn run(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    reps: u64,
) -> Result<EngineResult> {
    run_observed(model, placement, body, reps, syncperf_core::obs::global())
}

/// [`run`] with an explicit [`Recorder`]. With recording enabled this
/// emits, under category `cpu_sim`: an `engine_run` span, one per-op
/// instant (tagged `tid`/`rep`/`idx`/`cost_ns`) for each simulated warm
/// repetition, and `store_buffer_drain` instants at fences — plus the
/// `cpu_sim.barrier_rounds`, `cpu_sim.mesi_transitions` (analytic
/// coherence-transaction count derived from the contention map) and
/// `cpu_sim.store_buffer_drains` counters and the
/// `cpu_sim.arb_queue_depth_max` high-water gauge. A disabled recorder
/// costs one branch per site.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] if `reps` is zero.
pub fn run_observed(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    reps: u64,
    rec: &Recorder,
) -> Result<EngineResult> {
    if reps == 0 {
        return Err(SyncPerfError::InvalidParams("reps must be > 0".into()));
    }
    let n = placement.len();
    let contention = ContentionMap::analyze(body, placement, 64);
    let mut threads = vec![
        ThreadState {
            t: 0.0,
            pending_store_until: 0.0
        };
        n
    ];
    let mut barrier_episodes = 0u64;

    let mut span = rec.span("cpu_sim", "engine_run");
    span.push_arg("threads", n);
    span.push_arg("ops", body.len());
    span.push_arg("reps", reps);
    rec.counter("cpu_sim.engine_runs").inc();
    if rec.is_enabled() {
        record_coherence_profile(model, placement, &contention, body, reps, rec);
    }

    // Positions of barrier ops within the body; every thread executes
    // the identical body, so barrier rendezvous points align and the
    // run can proceed in lock-step segments between barriers.
    let barrier_positions: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, CpuOp::Barrier))
        .map(|(i, _)| i)
        .collect();

    if barrier_positions.is_empty() {
        // Fast path: threads never interact mid-run (contention is
        // captured analytically by the contention map), and per-rep
        // cost reaches steady state after the first rep (store-buffer
        // state is the only carry-over). Simulate a few reps and
        // extrapolate linearly from the steady-state rep.
        let warm = reps.min(4);
        let mut prev_t: Vec<f64> = vec![0.0; n];
        let mut last_delta: Vec<f64> = vec![0.0; n];
        for rep in 0..warm {
            for (tid, st) in threads.iter_mut().enumerate() {
                run_ops(model, placement, &contention, body, tid, st, rec, rep, 0);
                last_delta[tid] = st.t - prev_t[tid];
                prev_t[tid] = st.t;
            }
        }
        if reps > warm {
            let extra = (reps - warm) as f64;
            for (st, d) in threads.iter_mut().zip(&last_delta) {
                st.t += d * extra;
            }
        }
    } else {
        // Barrier path: run segment-by-segment with rendezvous. The
        // rendezvous collapses all thread clocks each rep, so per-rep
        // cost is steady after the first rep — simulate a few reps and
        // extrapolate.
        let warm = reps.min(4);
        let mut prev_t: Vec<f64> = vec![0.0; n];
        let mut last_delta: Vec<f64> = vec![0.0; n];
        for rep in 0..warm {
            let mut seg_start = 0usize;
            for &bpos in &barrier_positions {
                for (tid, st) in threads.iter_mut().enumerate() {
                    let seg = &body[seg_start..bpos];
                    run_ops(
                        model,
                        placement,
                        &contention,
                        seg,
                        tid,
                        st,
                        rec,
                        rep,
                        seg_start,
                    );
                }
                rendezvous(model, &mut threads);
                barrier_episodes += 1;
                seg_start = bpos + 1;
            }
            for (tid, st) in threads.iter_mut().enumerate() {
                let seg = &body[seg_start..];
                run_ops(
                    model,
                    placement,
                    &contention,
                    seg,
                    tid,
                    st,
                    rec,
                    rep,
                    seg_start,
                );
                last_delta[tid] = st.t - prev_t[tid];
                prev_t[tid] = st.t;
            }
        }
        if reps > warm {
            let extra = (reps - warm) as f64;
            for (st, d) in threads.iter_mut().zip(&last_delta) {
                st.t += d * extra;
            }
            barrier_episodes += barrier_positions.len() as u64 * (reps - warm);
        }
    }
    rec.counter("cpu_sim.barrier_rounds").add(barrier_episodes);

    Ok(EngineResult {
        per_thread_ns: threads.iter().map(|s| s.t).collect(),
        barrier_episodes,
    })
}

/// Records the analytic coherence profile of a run: the number of
/// MESI-level coherence transactions the contention map implies (every
/// contended access misses locally and goes through the directory) and
/// the arbitration-queue depth high-water mark. Called only when
/// recording is enabled.
fn record_coherence_profile(
    model: &CpuModel,
    placement: &Placement,
    contention: &ContentionMap,
    body: &[CpuOp],
    reps: u64,
    rec: &Recorder,
) {
    let arb = rec.gauge("cpu_sim.arb_queue_depth_max");
    let mut transitions = 0u64;
    for tid in 0..placement.len() {
        let core = placement.slot(tid).core;
        let mut lines: Vec<(crate::memline::LineId, bool)> = Vec::with_capacity(2);
        for op in body {
            lines.clear();
            match classify(op) {
                Access::None => {}
                Access::Read(dtype, target) => {
                    lines.push((line_of(dtype, target, tid, contention.line_bytes()), false));
                }
                Access::Write(dtype, target) => {
                    lines.push((line_of(dtype, target, tid, contention.line_bytes()), true));
                }
                Access::CriticalWrite(dtype, target) => {
                    lines.push((crate::memline::lock_line(), true));
                    lines.push((line_of(dtype, target, tid, contention.line_bytes()), true));
                }
            }
            for &(line, write) in &lines {
                let (c, _) = contention.contenders(line, core, write);
                arb.record(u64::from(c.min(model.contention_sat)));
                if c > 0 {
                    transitions += reps;
                }
            }
        }
    }
    rec.counter("cpu_sim.mesi_transitions").add(transitions);
}

/// Releases all threads from a barrier.
fn rendezvous(model: &CpuModel, threads: &mut [ThreadState]) {
    let n = threads.len() as u32;
    let max_arrival = threads.iter().map(|s| s.t).fold(f64::MIN, f64::max);
    let release = max_arrival + model.barrier_ns(n);
    // Order of release follows order of arrival.
    let mut order: Vec<usize> = (0..threads.len()).collect();
    order.sort_by(|&a, &b| threads[a].t.total_cmp(&threads[b].t));
    for (rank, &tid) in order.iter().enumerate() {
        threads[tid].t = release + rank as f64 * model.release_stagger_ns;
    }
}

/// Executes a straight-line (barrier-free) op slice for one thread.
/// `rep` and `base_idx` tag the per-op trace events emitted when the
/// recorder is enabled (the fast/barrier paths only simulate warm
/// repetitions, so event volume stays bounded).
#[allow(clippy::too_many_arguments)]
fn run_ops(
    model: &CpuModel,
    placement: &Placement,
    contention: &ContentionMap,
    ops: &[CpuOp],
    tid: usize,
    st: &mut ThreadState,
    rec: &Recorder,
    rep: u64,
    base_idx: usize,
) {
    let slot = placement.slot(tid);
    let smt = if placement.core_is_smt_loaded(tid) {
        model.smt_service_factor
    } else {
        1.0
    };
    let emit = rec.is_enabled();

    for (i, op) in ops.iter().enumerate() {
        let t_before = st.t;
        match *op {
            CpuOp::Barrier => unreachable!("barriers handled by rendezvous"),
            CpuOp::Flush => {
                let drain = (st.pending_store_until - st.t).max(0.0);
                st.t += model.fence_base_ns * smt + drain;
                st.pending_store_until = st.t;
                if emit && drain > 0.0 {
                    rec.counter("cpu_sim.store_buffer_drains").inc();
                    rec.instant_args(
                        "cpu_sim",
                        "store_buffer_drain",
                        vec![
                            ("tid", ArgValue::from(tid)),
                            ("drain_ns", ArgValue::F64(drain)),
                        ],
                    );
                }
            }
            CpuOp::CriticalAdd { dtype, target } => {
                // Lock acquire (RMW on the lock line), protected plain
                // update, lock release (store on the lock line).
                let (lc, lcross) =
                    contention.contenders(crate::memline::lock_line(), slot.core, true);
                let lock_line_cost = model.contention_ns(lc, lcross);
                let acquire = model.rmw_int_ns * smt + lock_line_cost;
                let release = model.store_ns * smt + lock_line_cost;
                let body_cost = write_cost(model, placement, contention, dtype, target, tid, smt);
                st.t += model.lock_overhead_ns * smt + acquire + body_cost.0 + release;
            }
            _ => {
                let (cost, pending) = op_cost(model, placement, contention, op, tid, smt);
                st.t += cost;
                if let Some(extra) = pending {
                    st.pending_store_until = st.pending_store_until.max(st.t + extra);
                }
            }
        }
        if emit {
            rec.instant_args(
                "cpu_sim.op",
                format!("{op:?}"),
                vec![
                    ("tid", ArgValue::from(tid)),
                    ("rep", ArgValue::from(rep)),
                    ("idx", ArgValue::from(base_idx + i)),
                    ("cost_ns", ArgValue::F64(st.t - t_before)),
                ],
            );
        }
    }
}

/// Cost of one non-barrier, non-critical, non-flush op, plus (for plain
/// stores) the extra time until the store becomes globally visible.
fn op_cost(
    model: &CpuModel,
    placement: &Placement,
    contention: &ContentionMap,
    op: &CpuOp,
    tid: usize,
    smt: f64,
) -> (f64, Option<f64>) {
    let slot = placement.slot(tid);
    match classify(op) {
        Access::None => (0.0, None),
        Access::Read(dtype, target) => {
            let line = line_of(dtype, target, tid, contention.line_bytes());
            let (c, cross) = contention.contenders(line, slot.core, false);
            (model.l1_hit_ns * smt + model.contention_ns(c, cross), None)
        }
        Access::Write(dtype, target) => {
            let is_plain_store = matches!(op, CpuOp::Update { .. });
            let is_pure_write = matches!(op, CpuOp::AtomicWrite { .. });
            let line = line_of(dtype, target, tid, contention.line_bytes());
            let (c, cross) = contention.contenders(line, slot.core, true);
            let coherence = model.contention_ns(c, cross);
            if is_plain_store {
                // The store buffer hides part of the coherence latency
                // from the issuing thread; a fence that drains the
                // buffer pays the hidden fraction.
                let visible = (model.l1_hit_ns + model.store_ns) * smt
                    + (1.0 - model.store_buffer_hiding) * coherence;
                (visible, Some(coherence * model.store_buffer_hiding))
            } else {
                let service = if is_pure_write {
                    // No arithmetic: word size and type are irrelevant
                    // (Fig. 4) — a 64-bit CPU stores ≤ 8 B in one go.
                    model.store_ns
                } else {
                    atomic_rmw_service(model, dtype, c)
                };
                (service * smt + coherence, None)
            }
        }
        Access::CriticalWrite(..) => unreachable!("handled in run_ops"),
    }
}

/// Cost of the protected body write inside a critical section.
fn write_cost(
    model: &CpuModel,
    placement: &Placement,
    contention: &ContentionMap,
    dtype: DType,
    target: syncperf_core::Target,
    tid: usize,
    smt: f64,
) -> (f64, Option<f64>) {
    let slot = placement.slot(tid);
    let line = line_of(dtype, target, tid, contention.line_bytes());
    let (c, cross) = contention.contenders(line, slot.core, true);
    (
        (model.l1_hit_ns + model.store_ns) * smt + model.contention_ns(c, cross),
        None,
    )
}

/// Service time of an atomic read-modify-write: integers use one
/// lock-prefixed instruction; floats run a compare-exchange loop that
/// retries under contention (hence the integer/floating-point gap in
/// Figs. 2 and 3).
fn atomic_rmw_service(model: &CpuModel, dtype: DType, contenders: u32) -> f64 {
    if dtype.is_integer() {
        model.rmw_int_ns
    } else {
        model.rmw_int_ns
            + model.fp_cas_extra_ns
            + model.fp_retry_ns * f64::from(contenders.min(model.contention_sat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, Affinity, SYSTEM3};

    fn setup(n: u32) -> (CpuModel, Placement) {
        (
            CpuModel::baseline(),
            Placement::new(&SYSTEM3.cpu, Affinity::Spread, n),
        )
    }

    fn per_op_ns(model: &CpuModel, placement: &Placement, body: &[CpuOp], reps: u64) -> f64 {
        let r = run(model, placement, body, reps).unwrap();
        r.per_thread_ns.iter().fold(f64::MIN, |a, &b| a.max(b)) / reps as f64
    }

    #[test]
    fn rejects_zero_reps() {
        let (m, p) = setup(2);
        assert!(run(&m, &p, &kernel::omp_barrier().baseline, 0).is_err());
    }

    #[test]
    fn barrier_cost_rises_then_plateaus() {
        let m = CpuModel::baseline();
        let body = kernel::omp_barrier().baseline;
        let mut costs = Vec::new();
        for n in [2u32, 4, 8, 16, 32] {
            let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, n);
            costs.push(per_op_ns(&m, &p, &body, 50));
        }
        assert!(costs[1] > costs[0], "4 threads costlier than 2");
        assert!(costs[2] > costs[1], "8 threads costlier than 4");
        // Beyond saturation the growth is only the small tax+stagger.
        let growth_late = costs[4] / costs[3];
        let growth_early = costs[1] / costs[0];
        assert!(
            growth_late < growth_early,
            "plateau expected beyond ~8 threads"
        );
        assert!(growth_late < 1.25);
    }

    #[test]
    fn shared_atomic_int_beats_float() {
        let (m, p) = setup(8);
        let int_cost = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let f64_cost = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::F64).baseline,
            10,
        );
        assert!(f64_cost > int_cost, "float atomics must be slower (Fig. 2)");
    }

    #[test]
    fn word_size_irrelevant_for_integer_atomics() {
        let (m, p) = setup(8);
        let i = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let u = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::U64).baseline,
            10,
        );
        assert!(
            (i - u).abs() < 1e-9,
            "int and ull identical on a 64-bit CPU (Fig. 2)"
        );
    }

    #[test]
    fn padded_private_atomics_much_faster_than_shared() {
        let (m, p) = setup(16);
        let shared = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let padded = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 16).baseline,
            10,
        );
        assert!(
            shared > 4.0 * padded,
            "contended {shared} vs padded {padded}"
        );
    }

    #[test]
    fn false_sharing_vanishes_at_the_padding_stride() {
        let (m, p) = setup(16);
        // 64-bit types: stride 8 × 8 B = 64 B → conflict-free (Fig. 3c)
        let s4 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::F64, 4).baseline,
            10,
        );
        let s8 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::F64, 8).baseline,
            10,
        );
        assert!(
            s4 > 2.0 * s8,
            "stride 8 should be dramatically faster for doubles"
        );
        // 32-bit types need stride 16 (Fig. 3d)
        let i8 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 8).baseline,
            10,
        );
        let i16 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 16).baseline,
            10,
        );
        assert!(
            i8 > 2.0 * i16,
            "stride 16 should be dramatically faster for ints"
        );
    }

    #[test]
    fn four_byte_types_slightly_worse_at_stride_one() {
        let (m, p) = setup(16);
        let i1 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 1).baseline,
            10,
        );
        let u1 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::U64, 1).baseline,
            10,
        );
        assert!(i1 > u1, "twice the words per line → more sharers (Fig. 3a)");
    }

    #[test]
    fn critical_slower_than_atomic() {
        let (m, p) = setup(8);
        let atomic = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let critical = per_op_ns(&m, &p, &kernel::omp_critical_add(DType::I32).baseline, 10);
        assert!(
            critical > 1.5 * atomic,
            "critical {critical} vs atomic {atomic} (Fig. 5)"
        );
    }

    #[test]
    fn atomic_read_costs_same_as_plain_read() {
        let (m, p) = setup(8);
        let k = kernel::omp_atomic_read(DType::I32);
        let base = per_op_ns(&m, &p, &k.baseline, 10);
        let test = per_op_ns(&m, &p, &k.test, 10);
        // The test substitutes an atomic read for the plain read; the
        // atomicity overhead is zero (§V-A2).
        assert!(
            (test - base).abs() < 0.05 * base,
            "atomic reads are free (§V-A2)"
        );
    }

    #[test]
    fn flush_cheap_without_false_sharing_expensive_with() {
        let (m, p) = setup(16);
        let k1 = kernel::omp_flush(DType::I32, 1);
        let k16 = kernel::omp_flush(DType::I32, 16);
        let fl1 = per_op_ns(&m, &p, &k1.test, 10) - per_op_ns(&m, &p, &k1.baseline, 10);
        let fl16 = per_op_ns(&m, &p, &k16.test, 10) - per_op_ns(&m, &p, &k16.baseline, 10);
        assert!(
            fl1 > 3.0 * fl16,
            "flush with sharing {fl1} vs padded {fl16} (Fig. 6)"
        );
        assert!(
            fl16 < 2.5 * m.fence_base_ns,
            "padded flush ≈ fence base cost"
        );
    }

    #[test]
    fn atomic_write_dtype_independent() {
        let (m, p) = setup(8);
        let costs: Vec<f64> = DType::ALL
            .iter()
            .map(|&dt| per_op_ns(&m, &p, &kernel::omp_atomic_write(dt).baseline, 10))
            .collect();
        for w in costs.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "atomic write is size/type blind (Fig. 4)"
            );
        }
    }

    #[test]
    fn hyperthreads_mild_slowdown() {
        let m = CpuModel::baseline();
        let body = kernel::omp_atomic_update_array(DType::I32, 16).baseline;
        let at_cores = {
            let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 16);
            per_op_ns(&m, &p, &body, 10)
        };
        let at_max = {
            let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 32);
            per_op_ns(&m, &p, &body, 10)
        };
        let ratio = at_max / at_cores;
        assert!(
            ratio > 1.0 && ratio < 1.3,
            "hyperthreading is mild: ratio {ratio}"
        );
    }

    #[test]
    fn barrier_episodes_counted() {
        let (m, p) = setup(4);
        let r = run(&m, &p, &kernel::omp_barrier().test, 10).unwrap();
        assert_eq!(r.barrier_episodes, 20);
    }

    #[test]
    fn deterministic() {
        let (m, p) = setup(8);
        let body = kernel::omp_atomic_update_scalar(DType::F32).test;
        let a = run(&m, &p, &body, 25).unwrap();
        let b = run(&m, &p, &body, 25).unwrap();
        assert_eq!(a, b);
    }
}
