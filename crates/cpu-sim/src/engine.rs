//! The CPU simulation engine: advances every thread through
//! `reps` repetitions of a kernel body, charging coherence-aware costs
//! per operation and rendezvousing at barriers.
//!
//! The model is *cycle-approximate, mechanism-faithful*: per-op latency
//! is `service + contention(line)` where the contention term saturates
//! (a bounded coherence-arbitration queue), store buffers hide part of
//! a store's coherence latency until a fence drains them, hyperthread
//! pairs share issue bandwidth and an L1, and barriers release all
//! arrivals together after a participant-count-dependent cost.
//!
//! Time is integer fixed-point (2²⁰ units per nanosecond, see
//! [`crate::plan`]): every `(thread, op)` cost is quantized once per run
//! by the compiled [`RunPlan`], and the engine detects the per-thread
//! *steady state* — consecutive repetitions with identical per-thread
//! deltas, barrier offsets, and store-buffer horizons — after which the
//! remaining repetitions are extrapolated with one exact integer
//! multiply instead of being stepped. [`run_full_stepping`] is the
//! oracle that never extrapolates; the fast path is bit-exact against
//! it by construction (property-tested in `tests/property_based.rs`).

use syncperf_core::obs::{ArgValue, Recorder};
use syncperf_core::{CpuOp, Result, SyncPerfError};

use crate::config::CpuModel;
use crate::memline::{classify, line_of, Access, ContentionMap};
use crate::plan::{units_to_ns, PlanOp, RunPlan};
use crate::topology::Placement;
use crate::trace::OpTrace;

/// With a live recorder the first `OBSERVED_REPS` repetitions are
/// always stepped with per-op event emission (bounding trace volume the
/// same way the previous engine's warm-rep window did); steady-state
/// extrapolation is only allowed past this window.
pub const OBSERVED_REPS: u64 = 4;

/// Outcome of one engine run: per-thread virtual nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineResult {
    /// Elapsed virtual time per thread for the whole timed region.
    pub per_thread_ns: Vec<f64>,
    /// Number of barrier episodes executed.
    pub barrier_episodes: u64,
}

/// Runs `body` for `reps` repetitions on every placed thread.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] if `reps` is zero.
pub fn run(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    reps: u64,
) -> Result<EngineResult> {
    run_observed(model, placement, body, reps, syncperf_core::obs::global())
}

/// [`run`] with an explicit [`Recorder`]. With recording enabled this
/// emits, under category `cpu_sim`: an `engine_run` span, one per-op
/// instant (tagged `tid`/`rep`/`idx`/`cost_ns`) for each of the first
/// [`OBSERVED_REPS`] repetitions, and `store_buffer_drain` instants at
/// fences — plus the `cpu_sim.barrier_rounds`,
/// `cpu_sim.mesi_transitions` (analytic coherence-transaction count
/// derived from the contention map) and `cpu_sim.store_buffer_drains`
/// counters and the `cpu_sim.arb_queue_depth_max` high-water gauge. A
/// disabled recorder costs one branch per site. Recording never changes
/// the simulated times: the steady-state fast path is exact, so
/// observed and unobserved runs return bit-identical results.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] if `reps` is zero.
pub fn run_observed(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    reps: u64,
    rec: &Recorder,
) -> Result<EngineResult> {
    run_impl(model, placement, body, reps, rec, false)
}

/// The reference path: identical to [`run_observed`] but steps every
/// repetition, never extrapolating. The property tests assert the fast
/// path is bit-exact against this oracle.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] if `reps` is zero.
pub fn run_full_stepping(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    reps: u64,
    rec: &Recorder,
) -> Result<EngineResult> {
    run_impl(model, placement, body, reps, rec, true)
}

/// Reusable per-run scratch: thread clocks, store-buffer horizons, the
/// barrier release order, and the steady-state detector's previous-rep
/// snapshot. One allocation set per run, none per rep or per op.
struct Scratch {
    /// Per-thread clock, fixed-point units.
    t: Vec<u64>,
    /// Per-thread store-buffer drain horizon, fixed-point units.
    pending: Vec<u64>,
    /// Barrier release order (reused across rendezvous).
    order: Vec<usize>,
    /// Previous rep boundary: per-thread clock.
    prev_t: Vec<u64>,
    /// Previous rep: per-thread delta.
    prev_delta: Vec<u64>,
    /// Previous rep boundary: clock offset above the slowest thread.
    prev_off: Vec<u64>,
    /// Previous rep boundary: `pending − t` (saturating).
    prev_pend: Vec<u64>,
}

fn run_impl(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    reps: u64,
    rec: &Recorder,
    force_full: bool,
) -> Result<EngineResult> {
    if reps == 0 {
        return Err(SyncPerfError::InvalidParams("reps must be > 0".into()));
    }
    let n = placement.len();
    let contention = ContentionMap::analyze(body, placement, 64);
    let plan = RunPlan::compile(model, placement, &contention, body);

    let mut span = rec.span("cpu_sim", "engine_run");
    span.push_arg("threads", n);
    span.push_arg("ops", body.len());
    span.push_arg("reps", reps);
    rec.counter("cpu_sim.engine_runs").inc();
    let enabled = rec.is_enabled();
    if enabled {
        record_coherence_profile(model, placement, &contention, body, reps, rec);
    }

    let mut s = Scratch {
        t: vec![0u64; n],
        pending: vec![0u64; n],
        order: Vec::with_capacity(n),
        prev_t: vec![0u64; n],
        prev_delta: vec![0u64; n],
        prev_off: vec![0u64; n],
        prev_pend: vec![0u64; n],
    };
    let mut barrier_episodes = 0u64;
    let emit_reps = if enabled { OBSERVED_REPS.min(reps) } else { 0 };
    let has_barriers = plan.barriers_per_rep() > 0;
    let mut have_prev = false;

    // Reps inside the emit window (and the full-stepping oracle) run
    // the op-by-op interpreter, which can narrate per-op events. Every
    // other rep runs the lowered branchless trace — bit-exact against
    // the interpreter (see [`crate::trace`]) and compiled lazily on
    // first use.
    let mut trace: Option<OpTrace> = None;
    let mut rep = 0u64;
    while rep < reps {
        if force_full || rep < emit_reps {
            step_rep(
                &plan,
                body,
                &mut s,
                rec,
                rep < emit_reps,
                rep,
                &mut barrier_episodes,
            );
        } else {
            let tr = trace.get_or_insert_with(|| compile_trace(&plan, rec, enabled));
            barrier_episodes += tr.step_rep(&mut s.t, &mut s.pending, &mut s.order);
        }
        rep += 1;
        if force_full {
            continue;
        }
        // Steady-state detection at the rep boundary: the stepping
        // relation is invariant under a uniform clock shift, so if this
        // rep's per-thread deltas, store-buffer horizons, and (when
        // barriers couple the threads) relative clock offsets all match
        // the previous rep's, every later rep repeats exactly — one
        // integer multiply extrapolates the rest bit-exactly.
        let min_t = s.t.iter().copied().min().unwrap_or(0);
        let mut steady = have_prev && rep >= emit_reps;
        for tid in 0..n {
            let delta = s.t[tid] - s.prev_t[tid];
            let off = s.t[tid] - min_t;
            let pend = s.pending[tid].saturating_sub(s.t[tid]);
            if steady
                && (delta != s.prev_delta[tid]
                    || pend != s.prev_pend[tid]
                    || (has_barriers && off != s.prev_off[tid]))
            {
                steady = false;
            }
            s.prev_delta[tid] = delta;
            s.prev_off[tid] = off;
            s.prev_pend[tid] = pend;
            s.prev_t[tid] = s.t[tid];
        }
        have_prev = true;
        if steady && rep < reps {
            let remaining = reps - rep;
            for tid in 0..n {
                s.t[tid] += s.prev_delta[tid] * remaining;
                s.pending[tid] = s.t[tid] + s.prev_pend[tid];
            }
            barrier_episodes += plan.barriers_per_rep() * remaining;
            break;
        }
    }
    rec.counter("cpu_sim.barrier_rounds").add(barrier_episodes);

    Ok(EngineResult {
        per_thread_ns: s.t.iter().map(|&u| units_to_ns(u)).collect(),
        barrier_episodes,
    })
}

/// Lowers the plan to a flat trace, recording `plan.compile_us` and
/// `plan.trace_ops` when observation is on.
fn compile_trace(plan: &RunPlan, rec: &Recorder, enabled: bool) -> OpTrace {
    if !enabled {
        return OpTrace::compile(plan);
    }
    let start = std::time::Instant::now();
    let tr = OpTrace::compile(plan);
    rec.histogram("plan.compile_us")
        .observe(start.elapsed().as_micros() as u64);
    rec.counter("plan.trace_ops").add(tr.trace_ops() as u64);
    tr
}

/// Steps one full repetition for all threads: segment by segment with a
/// rendezvous after every segment but the last.
fn step_rep(
    plan: &RunPlan,
    body: &[CpuOp],
    s: &mut Scratch,
    rec: &Recorder,
    emit: bool,
    rep: u64,
    barrier_episodes: &mut u64,
) {
    let segments = plan.segments();
    let last = segments.len() - 1;
    for (seg_idx, &(start, end)) in segments.iter().enumerate() {
        for tid in 0..plan.threads() {
            step_ops(plan, body, tid, start, end, s, rec, emit, rep);
        }
        if seg_idx < last {
            rendezvous(plan, &mut s.t, &mut s.order);
            *barrier_episodes += 1;
        }
    }
}

/// Executes a straight-line (barrier-free) op range for one thread.
#[allow(clippy::too_many_arguments)]
fn step_ops(
    plan: &RunPlan,
    body: &[CpuOp],
    tid: usize,
    start: usize,
    end: usize,
    s: &mut Scratch,
    rec: &Recorder,
    emit: bool,
    rep: u64,
) {
    let t = &mut s.t[tid];
    let pending = &mut s.pending[tid];
    for (idx, op) in body.iter().enumerate().take(end).skip(start) {
        let before = *t;
        match plan.op(tid, idx) {
            PlanOp::Barrier => unreachable!("barriers handled by rendezvous"),
            PlanOp::Fixed(cost) => *t += cost,
            PlanOp::Store {
                visible,
                pending_extra,
            } => {
                *t += visible;
                *pending = (*pending).max(*t + pending_extra);
            }
            PlanOp::Flush { base } => {
                let drain = pending.saturating_sub(*t);
                *t += base + drain;
                *pending = *t;
                if emit && drain > 0 {
                    rec.counter("cpu_sim.store_buffer_drains").inc();
                    rec.instant_args(
                        "cpu_sim",
                        "store_buffer_drain",
                        vec![
                            ("tid", ArgValue::from(tid)),
                            ("drain_ns", ArgValue::F64(units_to_ns(drain))),
                        ],
                    );
                }
            }
        }
        if emit {
            rec.instant_args(
                "cpu_sim.op",
                format!("{op:?}"),
                vec![
                    ("tid", ArgValue::from(tid)),
                    ("rep", ArgValue::from(rep)),
                    ("idx", ArgValue::from(idx)),
                    ("cost_ns", ArgValue::F64(units_to_ns(*t - before))),
                ],
            );
        }
    }
}

/// Releases all threads from a barrier. Order of release follows order
/// of arrival (stable: ties release in thread-id order).
fn rendezvous(plan: &RunPlan, t: &mut [u64], order: &mut Vec<usize>) {
    let max_arrival = t.iter().copied().max().unwrap_or(0);
    let release = max_arrival + plan.barrier_units();
    order.clear();
    order.extend(0..t.len());
    order.sort_by_key(|&tid| t[tid]);
    for (rank, &tid) in order.iter().enumerate() {
        t[tid] = release + rank as u64 * plan.stagger_units();
    }
}

/// Records the analytic coherence profile of a run: the number of
/// MESI-level coherence transactions the contention map implies (every
/// contended access misses locally and goes through the directory) and
/// the arbitration-queue depth high-water mark. Called only when
/// recording is enabled.
fn record_coherence_profile(
    model: &CpuModel,
    placement: &Placement,
    contention: &ContentionMap,
    body: &[CpuOp],
    reps: u64,
    rec: &Recorder,
) {
    let arb = rec.gauge("cpu_sim.arb_queue_depth_max");
    let mut transitions = 0u64;
    let mut lines: Vec<(crate::memline::LineId, bool)> = Vec::with_capacity(2);
    for tid in 0..placement.len() {
        let core = placement.slot(tid).core;
        for op in body {
            lines.clear();
            match classify(op) {
                Access::None => {}
                Access::Read(dtype, target) => {
                    lines.push((line_of(dtype, target, tid, contention.line_bytes()), false));
                }
                Access::Write(dtype, target) => {
                    lines.push((line_of(dtype, target, tid, contention.line_bytes()), true));
                }
                Access::CriticalWrite(dtype, target) => {
                    lines.push((crate::memline::lock_line(), true));
                    lines.push((line_of(dtype, target, tid, contention.line_bytes()), true));
                }
            }
            for &(line, write) in &lines {
                let (c, _) = contention.contenders(line, core, write);
                arb.record(u64::from(c.min(model.contention_sat)));
                if c > 0 {
                    transitions += reps;
                }
            }
        }
    }
    rec.counter("cpu_sim.mesi_transitions").add(transitions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, Affinity, DType, SYSTEM3};

    fn setup(n: u32) -> (CpuModel, Placement) {
        (
            CpuModel::baseline(),
            Placement::new(&SYSTEM3.cpu, Affinity::Spread, n),
        )
    }

    fn per_op_ns(model: &CpuModel, placement: &Placement, body: &[CpuOp], reps: u64) -> f64 {
        let r = run(model, placement, body, reps).unwrap();
        r.per_thread_ns.iter().fold(f64::MIN, |a, &b| a.max(b)) / reps as f64
    }

    #[test]
    fn rejects_zero_reps() {
        let (m, p) = setup(2);
        assert!(run(&m, &p, &kernel::omp_barrier().baseline, 0).is_err());
    }

    #[test]
    fn barrier_cost_rises_then_plateaus() {
        let m = CpuModel::baseline();
        let body = kernel::omp_barrier().baseline;
        let mut costs = Vec::new();
        for n in [2u32, 4, 8, 16, 32] {
            let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, n);
            costs.push(per_op_ns(&m, &p, &body, 50));
        }
        assert!(costs[1] > costs[0], "4 threads costlier than 2");
        assert!(costs[2] > costs[1], "8 threads costlier than 4");
        // Beyond saturation the growth is only the small tax+stagger.
        let growth_late = costs[4] / costs[3];
        let growth_early = costs[1] / costs[0];
        assert!(
            growth_late < growth_early,
            "plateau expected beyond ~8 threads"
        );
        assert!(growth_late < 1.25);
    }

    #[test]
    fn shared_atomic_int_beats_float() {
        let (m, p) = setup(8);
        let int_cost = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let f64_cost = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::F64).baseline,
            10,
        );
        assert!(f64_cost > int_cost, "float atomics must be slower (Fig. 2)");
    }

    #[test]
    fn word_size_irrelevant_for_integer_atomics() {
        let (m, p) = setup(8);
        let i = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let u = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::U64).baseline,
            10,
        );
        assert!(
            (i - u).abs() < 1e-9,
            "int and ull identical on a 64-bit CPU (Fig. 2)"
        );
    }

    #[test]
    fn padded_private_atomics_much_faster_than_shared() {
        let (m, p) = setup(16);
        let shared = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let padded = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 16).baseline,
            10,
        );
        assert!(
            shared > 4.0 * padded,
            "contended {shared} vs padded {padded}"
        );
    }

    #[test]
    fn false_sharing_vanishes_at_the_padding_stride() {
        let (m, p) = setup(16);
        // 64-bit types: stride 8 × 8 B = 64 B → conflict-free (Fig. 3c)
        let s4 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::F64, 4).baseline,
            10,
        );
        let s8 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::F64, 8).baseline,
            10,
        );
        assert!(
            s4 > 2.0 * s8,
            "stride 8 should be dramatically faster for doubles"
        );
        // 32-bit types need stride 16 (Fig. 3d)
        let i8 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 8).baseline,
            10,
        );
        let i16 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 16).baseline,
            10,
        );
        assert!(
            i8 > 2.0 * i16,
            "stride 16 should be dramatically faster for ints"
        );
    }

    #[test]
    fn four_byte_types_slightly_worse_at_stride_one() {
        let (m, p) = setup(16);
        let i1 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::I32, 1).baseline,
            10,
        );
        let u1 = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_array(DType::U64, 1).baseline,
            10,
        );
        assert!(i1 > u1, "twice the words per line → more sharers (Fig. 3a)");
    }

    #[test]
    fn critical_slower_than_atomic() {
        let (m, p) = setup(8);
        let atomic = per_op_ns(
            &m,
            &p,
            &kernel::omp_atomic_update_scalar(DType::I32).baseline,
            10,
        );
        let critical = per_op_ns(&m, &p, &kernel::omp_critical_add(DType::I32).baseline, 10);
        assert!(
            critical > 1.5 * atomic,
            "critical {critical} vs atomic {atomic} (Fig. 5)"
        );
    }

    #[test]
    fn atomic_read_costs_same_as_plain_read() {
        let (m, p) = setup(8);
        let k = kernel::omp_atomic_read(DType::I32);
        let base = per_op_ns(&m, &p, &k.baseline, 10);
        let test = per_op_ns(&m, &p, &k.test, 10);
        // The test substitutes an atomic read for the plain read; the
        // atomicity overhead is zero (§V-A2).
        assert!(
            (test - base).abs() < 0.05 * base,
            "atomic reads are free (§V-A2)"
        );
    }

    #[test]
    fn flush_cheap_without_false_sharing_expensive_with() {
        let (m, p) = setup(16);
        let k1 = kernel::omp_flush(DType::I32, 1);
        let k16 = kernel::omp_flush(DType::I32, 16);
        let fl1 = per_op_ns(&m, &p, &k1.test, 10) - per_op_ns(&m, &p, &k1.baseline, 10);
        let fl16 = per_op_ns(&m, &p, &k16.test, 10) - per_op_ns(&m, &p, &k16.baseline, 10);
        assert!(
            fl1 > 3.0 * fl16,
            "flush with sharing {fl1} vs padded {fl16} (Fig. 6)"
        );
        assert!(
            fl16 < 2.5 * m.fence_base_ns,
            "padded flush ≈ fence base cost"
        );
    }

    #[test]
    fn atomic_write_dtype_independent() {
        let (m, p) = setup(8);
        let costs: Vec<f64> = DType::ALL
            .iter()
            .map(|&dt| per_op_ns(&m, &p, &kernel::omp_atomic_write(dt).baseline, 10))
            .collect();
        for w in costs.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "atomic write is size/type blind (Fig. 4)"
            );
        }
    }

    #[test]
    fn hyperthreads_mild_slowdown() {
        let m = CpuModel::baseline();
        let body = kernel::omp_atomic_update_array(DType::I32, 16).baseline;
        let at_cores = {
            let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 16);
            per_op_ns(&m, &p, &body, 10)
        };
        let at_max = {
            let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 32);
            per_op_ns(&m, &p, &body, 10)
        };
        let ratio = at_max / at_cores;
        assert!(
            ratio > 1.0 && ratio < 1.3,
            "hyperthreading is mild: ratio {ratio}"
        );
    }

    #[test]
    fn barrier_episodes_counted() {
        let (m, p) = setup(4);
        let r = run(&m, &p, &kernel::omp_barrier().test, 10).unwrap();
        assert_eq!(r.barrier_episodes, 20);
    }

    #[test]
    fn deterministic() {
        let (m, p) = setup(8);
        let body = kernel::omp_atomic_update_scalar(DType::F32).test;
        let a = run(&m, &p, &body, 25).unwrap();
        let b = run(&m, &p, &body, 25).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fast_path_matches_full_stepping_bit_exactly() {
        let rec = Recorder::disabled();
        for (name, body) in [
            ("barrier", kernel::omp_barrier().test),
            ("flush", kernel::omp_flush(DType::I32, 1).test),
            ("critical", kernel::omp_critical_add(DType::F64).test),
            (
                "atomic",
                kernel::omp_atomic_update_scalar(DType::F32).baseline,
            ),
        ] {
            let (m, p) = setup(8);
            let fast = run(&m, &p, &body, 500).unwrap();
            let full = run_full_stepping(&m, &p, &body, 500, &rec).unwrap();
            assert_eq!(fast, full, "{name}");
        }
    }

    #[test]
    fn recorder_does_not_change_results() {
        let (m, p) = setup(32); // SMT-loaded: differing per-thread deltas
        let body = kernel::omp_flush(DType::I32, 1).test;
        let quiet = run(&m, &p, &body, 200).unwrap();
        let observed = run_observed(&m, &p, &body, 200, &Recorder::enabled()).unwrap();
        assert_eq!(quiet, observed);
    }
}
