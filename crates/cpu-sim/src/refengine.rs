//! A reference event-driven engine that derives coherence costs from
//! the *dynamic* MESI protocol instead of the fast engine's static
//! analysis — a second, independent implementation used as an oracle.
//!
//! Where [`crate::engine`] charges every access a precomputed
//! contention cost, this engine interleaves the threads' op streams in
//! global time order and consults a live [`MesiDirectory`]: a hit is an
//! L1 hit, a transfer is a transfer, an invalidation pays arbitration
//! for the copies actually invalidated. It is slower and less smooth,
//! but it does not *assume* a sharing pattern — it discovers one. Tests
//! in `tests/engine_agreement.rs` bound the disagreement between the
//! two engines.
//!
//! One intentional difference: this engine serializes transfers through
//! a per-line availability timeline (a line cannot be in two places at
//! once), which yields a *linear* contention law; the fast engine's
//! arbitration **saturates** (the bounded-queue hypothesis behind the
//! paper's Fig. 1/2 plateau). Below the saturation point the engines
//! agree; beyond it they diverge in exactly the way
//! `ablation_contention_model` demonstrates.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use syncperf_core::{CpuOp, Result, SyncPerfError};

use crate::config::CpuModel;
use crate::memline::{classify, line_of, lock_line, Access};
use crate::mesi::{MesiDirectory, Transaction};
use crate::topology::Placement;

/// Outcome of a reference run.
#[derive(Debug, Clone, PartialEq)]
pub struct RefEngineResult {
    /// Elapsed virtual nanoseconds per thread.
    pub per_thread_ns: Vec<f64>,
    /// Total bus transactions observed.
    pub bus_transactions: u64,
}

/// Event-queue entry: next-ready thread ordered by its virtual clock.
#[derive(Debug, PartialEq)]
struct Ready {
    t: f64,
    tid: usize,
}

impl Eq for Ready {}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.total_cmp(&other.t).then(self.tid.cmp(&other.tid))
    }
}

/// Runs `body` for `reps` repetitions per thread, interleaving threads
/// in virtual-time order and charging costs from live MESI state.
///
/// Barriers are supported (rendezvous as in the fast engine); critical
/// sections are modeled as lock-line write + body + lock-line write.
///
/// # Errors
///
/// Rejects `reps == 0`.
pub fn run_reference(
    model: &CpuModel,
    placement: &Placement,
    body: &[CpuOp],
    reps: u64,
) -> Result<RefEngineResult> {
    if reps == 0 {
        return Err(SyncPerfError::InvalidParams("reps must be > 0".into()));
    }
    let n = placement.len();
    let n_cores = placement_cores(placement);
    let mut mesi = MesiDirectory::new(n_cores);
    let mut line_avail: HashMap<crate::memline::LineId, f64> = HashMap::new();
    // The critical-section lock is held for the whole protected region:
    // sections fully serialize behind this horizon.
    let mut lock_free_at = 0.0f64;
    let total_ops = body.len() as u64 * reps;

    let mut clocks = vec![0.0f64; n];
    let mut pc = vec![0u64; n]; // global op index per thread
    let mut heap: BinaryHeap<Reverse<Ready>> = (0..n)
        .map(|tid| {
            Reverse(Ready {
                t: tid as f64 * 0.1,
                tid,
            })
        })
        .collect();
    let mut bus = 0u64;

    // Barrier state: which threads have arrived and at what time.
    let mut waiting: Vec<(usize, f64)> = Vec::new();

    while let Some(Reverse(Ready { t, tid })) = heap.pop() {
        if pc[tid] >= total_ops {
            continue;
        }
        let op = &body[(pc[tid] % body.len() as u64) as usize];
        pc[tid] += 1;

        if matches!(op, CpuOp::Barrier) {
            waiting.push((tid, t));
            if waiting.len() == n {
                let max_arrival = waiting.iter().map(|&(_, a)| a).fold(f64::MIN, f64::max);
                let release = max_arrival + model.barrier_ns(n as u32);
                waiting.sort_by(|a, b| a.1.total_cmp(&b.1));
                for (rank, &(wtid, _)) in waiting.iter().enumerate() {
                    let t_out = release + rank as f64 * model.release_stagger_ns;
                    clocks[wtid] = t_out;
                    heap.push(Reverse(Ready {
                        t: t_out,
                        tid: wtid,
                    }));
                }
                waiting.clear();
            }
            continue;
        }

        let cost = charge(
            model,
            placement,
            &mut mesi,
            &mut line_avail,
            &mut lock_free_at,
            &mut bus,
            t,
            tid,
            op,
        );
        let t_next = t + cost;
        clocks[tid] = t_next;
        heap.push(Reverse(Ready { t: t_next, tid }));
    }

    if !waiting.is_empty() {
        return Err(SyncPerfError::InvalidParams(
            "threads ended while a barrier was incomplete".into(),
        ));
    }
    Ok(RefEngineResult {
        per_thread_ns: clocks,
        bus_transactions: bus,
    })
}

fn placement_cores(placement: &Placement) -> usize {
    (0..placement.len())
        .map(|t| placement.slot(t).core as usize + 1)
        .max()
        .unwrap_or(1)
}

/// Charges one non-barrier op from live MESI state. Bus transactions
/// additionally serialize through the touched line's availability
/// timeline: the requester waits until the line is free, and occupies
/// it for the transfer duration.
#[allow(clippy::too_many_arguments)]
fn charge(
    model: &CpuModel,
    placement: &Placement,
    mesi: &mut MesiDirectory,
    line_avail: &mut HashMap<crate::memline::LineId, f64>,
    lock_free_at: &mut f64,
    bus: &mut u64,
    now: f64,
    tid: usize,
    op: &CpuOp,
) -> f64 {
    let core = placement.slot(tid).core as usize;
    let smt = if placement.core_is_smt_loaded(tid) {
        model.smt_service_factor
    } else {
        1.0
    };

    let mut tx_cost = |tx: Transaction, line: crate::memline::LineId, bus: &mut u64| -> f64 {
        let raw = match tx {
            Transaction::Hit | Transaction::SilentUpgrade => return 0.0,
            Transaction::FillFromMemory | Transaction::CacheToCache => {
                *bus += 1;
                model.line_transfer_ns
            }
            Transaction::Invalidation { copies } => {
                *bus += 1;
                model.line_transfer_ns + model.sharer_tax_ns * f64::from(copies)
            }
        };
        // The line is a physical resource: wait for it, then hold it.
        let avail = line_avail.entry(line).or_insert(0.0);
        let start = now.max(*avail);
        let wait = start - now;
        *avail = start + raw;
        wait + raw
    };

    match classify(op) {
        Access::None => match op {
            CpuOp::Flush => model.fence_base_ns * smt,
            _ => 0.0,
        },
        Access::Read(dt, tg) => {
            let line = line_of(dt, tg, tid, 64);
            let tx = mesi.read(core, line);
            model.l1_hit_ns * smt + tx_cost(tx, line, bus)
        }
        Access::Write(dt, tg) => {
            let line = line_of(dt, tg, tid, 64);
            let tx = mesi.write(core, line);
            let service = match op {
                CpuOp::AtomicWrite { .. } => model.store_ns,
                CpuOp::Update { .. } => model.l1_hit_ns + model.store_ns,
                _ if dt.is_float() => model.rmw_int_ns + model.fp_cas_extra_ns,
                _ => model.rmw_int_ns,
            };
            let fp_retry = if matches!(op, CpuOp::AtomicUpdate { .. } | CpuOp::AtomicCapture { .. })
                && dt.is_float()
            {
                // Retry pressure approximated from the observed
                // invalidation width.
                match tx {
                    Transaction::Invalidation { copies } => {
                        model.fp_retry_ns * f64::from(copies.min(model.contention_sat))
                    }
                    _ => 0.0,
                }
            } else {
                0.0
            };
            service * smt + tx_cost(tx, line, bus) + fp_retry
        }
        Access::CriticalWrite(dt, tg) => {
            // Wait for the lock to be free — critical sections fully
            // serialize, which is what makes them slower than the
            // equivalent atomic (Fig. 5).
            let start = now.max(*lock_free_at);
            let lock_wait = start - now;
            let body_line = line_of(dt, tg, tid, 64);
            let lt = mesi.write(core, lock_line());
            let acquire = model.rmw_int_ns * smt + tx_cost(lt, lock_line(), bus);
            let bt = mesi.write(core, body_line);
            let body_cost = (model.l1_hit_ns + model.store_ns) * smt + tx_cost(bt, body_line, bus);
            let rt = mesi.write(core, lock_line());
            let release = model.store_ns * smt + tx_cost(rt, lock_line(), bus);
            let held = model.lock_overhead_ns * smt + acquire + body_cost + release;
            *lock_free_at = start + held;
            lock_wait + held
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, Affinity, DType, SYSTEM3};

    fn setup(n: u32) -> (CpuModel, Placement) {
        (
            CpuModel::baseline(),
            Placement::new(&SYSTEM3.cpu, Affinity::Spread, n),
        )
    }

    #[test]
    fn conflict_free_workload_has_no_bus_traffic_after_warmup() {
        let (m, p) = setup(8);
        let body = kernel::omp_atomic_update_array(DType::I32, 16).baseline;
        let r = run_reference(&m, &p, &body, 50).unwrap();
        // Warmup fills: one per thread; nothing after.
        assert_eq!(r.bus_transactions, 8);
    }

    #[test]
    fn contended_workload_keeps_the_bus_busy() {
        let (m, p) = setup(8);
        let body = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let r = run_reference(&m, &p, &body, 50).unwrap();
        // Round-robin over one line: nearly every access transacts.
        assert!(r.bus_transactions > 8 * 40, "got {}", r.bus_transactions);
    }

    #[test]
    fn barrier_bodies_rendezvous() {
        let (m, p) = setup(4);
        let r = run_reference(&m, &p, &kernel::omp_barrier().test, 10).unwrap();
        assert_eq!(r.per_thread_ns.len(), 4);
        let min = r.per_thread_ns.iter().copied().fold(f64::MAX, f64::min);
        let max = r.per_thread_ns.iter().copied().fold(f64::MIN, f64::max);
        assert!(max - min <= 4.0 * m.release_stagger_ns + 1e-9);
    }

    #[test]
    fn rejects_zero_reps() {
        let (m, p) = setup(2);
        assert!(run_reference(&m, &p, &kernel::omp_barrier().baseline, 0).is_err());
    }

    #[test]
    fn deterministic() {
        let (m, p) = setup(6);
        let body = kernel::omp_atomic_update_scalar(DType::F32).test;
        assert_eq!(
            run_reference(&m, &p, &body, 20).unwrap(),
            run_reference(&m, &p, &body, 20).unwrap()
        );
    }
}
