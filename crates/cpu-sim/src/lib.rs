//! # syncperf-cpu-sim
//!
//! A cycle-approximate multicore CPU simulator: the hardware substrate
//! for regenerating the paper's OpenMP figures (Figs. 1-6) without the
//! paper's physical test systems.
//!
//! The model captures the mechanisms that drive every CPU-side result
//! in the paper:
//!
//! * **64-byte cache lines and false sharing** — private elements of a
//!   strided array map to lines; threads on distinct cores writing the
//!   same line pay transfer + arbitration ([`memline`], Fig. 3).
//! * **A saturating coherence-arbitration queue** — contended-line
//!   latency stops growing beyond ~8 contenders, producing the paper's
//!   throughput plateau ([`CpuModel::contention_ns`], Figs. 1-2).
//! * **Floating-point atomics as CAS loops** — the int/float gap
//!   (Fig. 2).
//! * **Store buffers drained by flushes** — flushes are nearly free
//!   without false sharing and expensive with it (Fig. 6).
//! * **SMT topology** — hyperthread siblings share an L1 (no false
//!   sharing between them) and issue bandwidth (mild slowdown), and add
//!   timing variability.
//! * **Per-system jitter** — System 3's AMD CPU is noisier (Fig. 4a).
//!
//! ## Example
//!
//! ```
//! use syncperf_core::{kernel, DType, ExecParams, Protocol, SYSTEM3};
//! use syncperf_cpu_sim::CpuSimExecutor;
//!
//! # fn main() -> syncperf_core::Result<()> {
//! let mut sim = CpuSimExecutor::new(&SYSTEM3);
//! // False sharing: stride-1 atomics are far slower than stride-16.
//! let p = ExecParams::new(16).with_loops(50, 4);
//! let s1 = Protocol::SIM.measure(&mut sim, &kernel::omp_atomic_update_array(DType::I32, 1), &p)?;
//! let s16 = Protocol::SIM.measure(&mut sim, &kernel::omp_atomic_update_array(DType::I32, 16), &p)?;
//! assert!(s1.runtime_seconds() > 3.0 * s16.runtime_seconds());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod executor;
pub mod explain;
pub mod memline;
pub mod mesi;
pub mod plan;
pub mod program;
pub mod refengine;
pub mod topology;
pub mod trace;
pub mod trace_tap;

pub use config::{BarrierKind, CpuModel};
pub use engine::{run_full_stepping, EngineResult, OBSERVED_REPS};
pub use executor::CpuSimExecutor;
pub use explain::{explain_body, explain_op, CpuCostBreakdown};
pub use mesi::{MesiDirectory, MesiState, Transaction};
pub use program::{simulate_cpu_reduction, CpuReductionReport, CpuReductionStrategy};
pub use refengine::{run_reference, RefEngineResult};
pub use topology::{Placement, Slot};
pub use trace_tap::{crosscheck_cpu_body, mesi_steady_traffic, MesiCrossCheck};
