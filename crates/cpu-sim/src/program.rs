//! Whole-program case study: summing `N` values on the simulated CPU
//! with the synchronization strategies the paper's recommendations
//! rank (Section V-A5).
//!
//! The strategies differ only in how per-element updates are
//! synchronized; the simulation reuses the microbenchmark engine by
//! running each phase's loop body for the right repetition count, so a
//! strategy's cost follows directly from the validated per-op model.

use syncperf_core::{CpuOp, DType, Result, SyncPerfError, Target};

use crate::config::CpuModel;
use crate::engine;
use crate::topology::Placement;

/// How the parallel sum synchronizes its updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuReductionStrategy {
    /// Every element added straight into one shared variable with an
    /// atomic update (what recommendation 2 warns against).
    SharedAtomic,
    /// Every element added under `#pragma omp critical`
    /// (recommendation 5: avoid).
    CriticalSection,
    /// Thread-private partial sums in a stride-1 array — privatized,
    /// but false-shared (recommendation 3's trap) — then one atomic
    /// merge per thread.
    FalseSharedPartials,
    /// Thread-private partial sums padded to one cache line each, then
    /// one atomic merge per thread — the recommended pattern.
    PaddedPartials,
}

impl CpuReductionStrategy {
    /// All four strategies, worst to best (expected).
    pub const ALL: [CpuReductionStrategy; 4] = [
        CpuReductionStrategy::CriticalSection,
        CpuReductionStrategy::SharedAtomic,
        CpuReductionStrategy::FalseSharedPartials,
        CpuReductionStrategy::PaddedPartials,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CpuReductionStrategy::SharedAtomic => "atomic on one shared variable",
            CpuReductionStrategy::CriticalSection => "critical section",
            CpuReductionStrategy::FalseSharedPartials => "private partials, false-shared",
            CpuReductionStrategy::PaddedPartials => "private partials, padded",
        }
    }
}

/// Result of one simulated CPU reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuReductionReport {
    /// The strategy simulated.
    pub strategy: CpuReductionStrategy,
    /// Total wall-clock nanoseconds (max across threads, both phases).
    pub total_ns: f64,
    /// Nanoseconds spent in the per-element accumulation phase.
    pub accumulate_ns: f64,
    /// Nanoseconds spent merging partials (zero for the direct
    /// strategies).
    pub merge_ns: f64,
}

/// Simulates summing `elements` `f64` values across `threads` threads
/// under the given strategy.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] for a zero-sized workload.
pub fn simulate_cpu_reduction(
    model: &CpuModel,
    placement: &Placement,
    strategy: CpuReductionStrategy,
    elements: u64,
) -> Result<CpuReductionReport> {
    if elements == 0 || placement.is_empty() {
        return Err(SyncPerfError::InvalidParams("empty reduction".into()));
    }
    let threads = placement.len() as u64;
    let per_thread = elements.div_ceil(threads);
    let dtype = DType::F64;

    let max_ns = |body: &[CpuOp], reps: u64| -> Result<f64> {
        let r = engine::run(model, placement, body, reps)?;
        Ok(r.per_thread_ns.iter().copied().fold(f64::MIN, f64::max))
    };

    // Each accumulation iteration also reads its input element.
    let read_input = CpuOp::Read {
        dtype,
        target: Target::Private {
            array: 1,
            stride: 8,
        },
    };

    let (accumulate_ns, merge_ns) = match strategy {
        CpuReductionStrategy::SharedAtomic => {
            let body = [
                read_input,
                CpuOp::AtomicUpdate {
                    dtype,
                    target: Target::SHARED,
                },
            ];
            (max_ns(&body, per_thread)?, 0.0)
        }
        CpuReductionStrategy::CriticalSection => {
            let body = [
                read_input,
                CpuOp::CriticalAdd {
                    dtype,
                    target: Target::SHARED,
                },
            ];
            (max_ns(&body, per_thread)?, 0.0)
        }
        CpuReductionStrategy::FalseSharedPartials => {
            let body = [
                read_input,
                CpuOp::Update {
                    dtype,
                    target: Target::Private {
                        array: 0,
                        stride: 1,
                    },
                },
            ];
            let acc = max_ns(&body, per_thread)?;
            let merge = max_ns(
                &[CpuOp::AtomicUpdate {
                    dtype,
                    target: Target::SHARED,
                }],
                1,
            )?;
            (acc, merge)
        }
        CpuReductionStrategy::PaddedPartials => {
            let body = [
                read_input,
                CpuOp::Update {
                    dtype,
                    target: Target::Private {
                        array: 0,
                        stride: 8,
                    },
                },
            ];
            let acc = max_ns(&body, per_thread)?;
            let merge = max_ns(
                &[CpuOp::AtomicUpdate {
                    dtype,
                    target: Target::SHARED,
                }],
                1,
            )?;
            (acc, merge)
        }
    };

    Ok(CpuReductionReport {
        strategy,
        total_ns: accumulate_ns + merge_ns,
        accumulate_ns,
        merge_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{Affinity, SYSTEM3};

    fn run_all(threads: u32, elements: u64) -> Vec<CpuReductionReport> {
        let model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
        let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
        CpuReductionStrategy::ALL
            .iter()
            .map(|&s| simulate_cpu_reduction(&model, &placement, s, elements).unwrap())
            .collect()
    }

    #[test]
    fn recommended_ordering_holds() {
        // critical > shared atomic > false-shared partials > padded.
        let r = run_all(16, 1 << 20);
        assert!(r[0].total_ns > r[1].total_ns, "critical slowest");
        assert!(
            r[1].total_ns > r[2].total_ns,
            "shared atomic beats critical only"
        );
        assert!(r[2].total_ns > r[3].total_ns, "padding beats false sharing");
    }

    #[test]
    fn padded_partials_scale_with_threads() {
        // The recommended pattern gets faster with more threads; the
        // shared-atomic one barely does (serialized line).
        let few = run_all(2, 1 << 20);
        let many = run_all(16, 1 << 20);
        let padded_speedup = few[3].total_ns / many[3].total_ns;
        let shared_speedup = few[1].total_ns / many[1].total_ns;
        assert!(
            padded_speedup > 6.0,
            "near-linear scaling, got {padded_speedup}"
        );
        assert!(
            shared_speedup < padded_speedup / 2.0,
            "contended scaling must lag"
        );
    }

    #[test]
    fn merge_phase_negligible_but_present() {
        let r = run_all(16, 1 << 20);
        let padded = &r[3];
        assert!(padded.merge_ns > 0.0);
        assert!(padded.merge_ns < 0.01 * padded.accumulate_ns);
        // Direct strategies have no merge phase.
        assert_eq!(r[0].merge_ns, 0.0);
        assert_eq!(r[1].merge_ns, 0.0);
    }

    #[test]
    fn false_sharing_penalty_factor() {
        let r = run_all(16, 1 << 18);
        let penalty = r[2].accumulate_ns / r[3].accumulate_ns;
        assert!(penalty > 2.0, "false sharing must hurt clearly: {penalty}x");
    }

    #[test]
    fn rejects_empty_workload() {
        let model = CpuModel::baseline();
        let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 4);
        assert!(simulate_cpu_reduction(
            &model,
            &placement,
            CpuReductionStrategy::PaddedPartials,
            0
        )
        .is_err());
    }
}
