//! Address → cache-line mapping and static contention analysis.
//!
//! The measured workloads are regular: every thread touches the same
//! addresses every iteration. The sharing pattern of each 64-byte line
//! is therefore static and can be computed up front: which cores write
//! the line, which cores touch it, and whether those cores span
//! sockets. The engine turns this into per-op coherence costs.

use std::collections::{BTreeSet, HashMap};

use syncperf_core::{CpuOp, DType, Target};

use crate::topology::Placement;

/// FNV-1a hasher for [`LineId`] keys. The line map is probed once per
/// `(thread, op)` during plan compilation — batched sweep compilation
/// runs that per point — and SipHash's per-lookup setup cost is
/// measurable there. Line ids are tiny structured keys, not
/// attacker-controlled input, so a fast non-keyed hash is fine.
#[derive(Debug, Default, Clone)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
#[derive(Debug, Default, Clone)]
struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// Dense id set for core/socket numbers: a 256-bit bitmask with an
/// exact spill set for larger ids (no shipped or configurable topology
/// comes close to 256 cores, but correctness must not depend on that).
/// Membership and cardinality are O(1) on the mask path, which is what
/// makes [`ContentionMap::analyze`] and [`ContentionMap::contenders`]
/// cheap enough to run once per sweep point during batched plan
/// compilation.
#[derive(Debug, Default, Clone)]
struct IdSet {
    words: [u64; 4],
    spill: BTreeSet<u32>,
}

impl IdSet {
    fn insert(&mut self, id: u32) {
        if id < 256 {
            self.words[(id / 64) as usize] |= 1u64 << (id % 64);
        } else {
            self.spill.insert(id);
        }
    }

    fn contains(&self, id: u32) -> bool {
        if id < 256 {
            self.words[(id / 64) as usize] & (1u64 << (id % 64)) != 0
        } else {
            self.spill.contains(&id)
        }
    }

    fn len(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
            + self.spill.len()
    }
}

/// Identifies one cache line of the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId {
    /// Memory region: scalars and each (dtype, array) pair live in
    /// disjoint regions so they can never share a line.
    region: u32,
    /// Line index within the region.
    index: u64,
}

/// Region id of the critical-section lock word.
const REGION_LOCK: u32 = 0xFFFF_0000;

fn dtype_idx(dtype: DType) -> u32 {
    match dtype {
        DType::I32 => 0,
        DType::U64 => 1,
        DType::F32 => 2,
        DType::F64 => 3,
    }
}

/// The line touched by `(dtype, target)` for thread `tid`.
///
/// Shared scalars each occupy their own line (the paper pads them to
/// separate cache lines); private elements land at byte offset
/// `tid × stride × sizeof(dtype)` of their array.
#[must_use]
pub fn line_of(dtype: DType, target: Target, tid: usize, line_bytes: usize) -> LineId {
    match target {
        Target::SharedScalar(i) => LineId {
            region: 0x1000 + u32::from(i),
            index: u64::from(dtype_idx(dtype)),
        },
        Target::Private { array, stride } => {
            let byte = tid as u64 * u64::from(stride) * dtype.size_bytes() as u64;
            LineId {
                region: 0x2000 + dtype_idx(dtype) * 16 + u32::from(array),
                index: byte / line_bytes as u64,
            }
        }
    }
}

/// The line holding the (unnamed) critical-section lock.
#[must_use]
pub fn lock_line() -> LineId {
    LineId {
        region: REGION_LOCK,
        index: 0,
    }
}

/// Static per-line sharing facts.
#[derive(Debug, Default, Clone)]
pub struct LineStats {
    writer_cores: IdSet,
    accessor_cores: IdSet,
    sockets: IdSet,
}

impl LineStats {
    /// Records that `slot`'s core touches the line, writing it when
    /// `writes`.
    fn touch(&mut self, core: u32, socket: u32, writes: bool) {
        self.accessor_cores.insert(core);
        self.sockets.insert(socket);
        if writes {
            self.writer_cores.insert(core);
        }
    }
}

/// What one op does to memory, for analysis purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// No memory target (barrier, flush).
    None,
    /// Reads the target.
    Read(DType, Target),
    /// Writes (or read-modify-writes) the target.
    Write(DType, Target),
    /// Critical section around a write: also hammers the lock line.
    CriticalWrite(DType, Target),
}

/// Classifies a CPU op.
#[must_use]
pub fn classify(op: &CpuOp) -> Access {
    match *op {
        // CriticalBegin/End touch only the lock line, which
        // `ContentionMap::analyze` registers explicitly.
        CpuOp::Barrier | CpuOp::Flush | CpuOp::CriticalBegin { .. } | CpuOp::CriticalEnd { .. } => {
            Access::None
        }
        CpuOp::AtomicRead { dtype, target } | CpuOp::Read { dtype, target } => {
            Access::Read(dtype, target)
        }
        CpuOp::AtomicUpdate { dtype, target }
        | CpuOp::AtomicCapture { dtype, target }
        | CpuOp::AtomicWrite { dtype, target }
        | CpuOp::Update { dtype, target } => Access::Write(dtype, target),
        CpuOp::CriticalAdd { dtype, target } => Access::CriticalWrite(dtype, target),
    }
}

/// The static contention map of one (body, placement) combination.
#[derive(Debug, Clone)]
pub struct ContentionMap {
    lines: HashMap<LineId, LineStats, FnvBuild>,
    line_bytes: usize,
}

impl ContentionMap {
    /// Analyzes which cores access/write every line when all placed
    /// threads execute `body`.
    #[must_use]
    pub fn analyze(body: &[CpuOp], placement: &Placement, line_bytes: usize) -> Self {
        let mut lines: HashMap<LineId, LineStats, FnvBuild> = HashMap::default();
        // Op-major so every op resolves its line map entry once where
        // the line is thread-independent (scalars, the lock line) —
        // the sweep's batched plan compilation runs this per point.
        for op in body {
            // Explicit critical brackets write the lock line even
            // though they carry no memory operand of their own.
            let (access, hits_lock) = match op {
                CpuOp::CriticalBegin { .. } | CpuOp::CriticalEnd { .. } => (Access::None, true),
                op => match classify(op) {
                    // The lock line is written by every participant.
                    Access::CriticalWrite(dt, tg) => (Access::Write(dt, tg), true),
                    a => (a, false),
                },
            };
            if hits_lock {
                let s = lines.entry(lock_line()).or_default();
                for tid in 0..placement.len() {
                    let slot = placement.slot(tid);
                    s.touch(slot.core, slot.socket, true);
                }
            }
            let (dt, tg, writes) = match access {
                Access::None => continue,
                Access::Read(dt, tg) => (dt, tg, false),
                Access::Write(dt, tg) | Access::CriticalWrite(dt, tg) => (dt, tg, true),
            };
            match tg {
                Target::SharedScalar(_) => {
                    // One line regardless of thread: probe the map once.
                    let s = lines.entry(line_of(dt, tg, 0, line_bytes)).or_default();
                    for tid in 0..placement.len() {
                        let slot = placement.slot(tid);
                        s.touch(slot.core, slot.socket, writes);
                    }
                }
                Target::Private { .. } => {
                    for tid in 0..placement.len() {
                        let slot = placement.slot(tid);
                        lines
                            .entry(line_of(dt, tg, tid, line_bytes))
                            .or_default()
                            .touch(slot.core, slot.socket, writes);
                    }
                }
            }
        }
        ContentionMap { lines, line_bytes }
    }

    /// The configured cache-line size.
    #[must_use]
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Returns `(contenders, cross_socket)` for an access to `line` by
    /// a thread on `my_core`:
    ///
    /// * For a **read**, contenders are *other* cores that write the
    ///   line (read-only sharing is free — every core keeps a Shared
    ///   copy).
    /// * For a **write**, contenders are *other* cores that access the
    ///   line at all (their copies must be invalidated).
    ///
    /// Hyperthread siblings run on the same core and share the L1, so
    /// they never count as contenders (Section V-A2).
    #[must_use]
    pub fn contenders(&self, line: LineId, my_core: u32, is_write: bool) -> (u32, bool) {
        let Some(s) = self.lines.get(&line) else {
            return (0, false);
        };
        let set = if is_write {
            &s.accessor_cores
        } else {
            &s.writer_cores
        };
        let others = (set.len() - usize::from(set.contains(my_core))) as u32;
        let cross = s.sockets.len() > 1;
        (others, cross)
    }

    /// Number of distinct lines with at least one inter-core writer
    /// conflict — a false-sharing indicator used in reports.
    #[must_use]
    pub fn contended_line_count(&self) -> usize {
        self.lines
            .values()
            .filter(|s| s.writer_cores.len() > 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, Affinity, SYSTEM3};

    fn placement(n: u32) -> Placement {
        Placement::new(&SYSTEM3.cpu, Affinity::Spread, n)
    }

    #[test]
    fn scalars_on_distinct_lines() {
        let a = line_of(DType::I32, Target::SHARED, 0, 64);
        let b = line_of(DType::I32, Target::SHARED2, 0, 64);
        assert_ne!(a, b);
        // Same scalar from different threads: same line.
        assert_eq!(a, line_of(DType::I32, Target::SHARED, 7, 64));
    }

    #[test]
    fn dtypes_never_share_lines() {
        let a = line_of(DType::I32, Target::private(1), 0, 64);
        let b = line_of(DType::F32, Target::private(1), 0, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn stride_controls_line_sharing() {
        // int, stride 1: threads 0..15 share line 0.
        let l0 = line_of(DType::I32, Target::private(1), 0, 64);
        let l15 = line_of(DType::I32, Target::private(1), 15, 64);
        let l16 = line_of(DType::I32, Target::private(1), 16, 64);
        assert_eq!(l0, l15);
        assert_ne!(l0, l16);
        // int, stride 16: every thread its own line.
        let s0 = line_of(DType::I32, Target::private(16), 0, 64);
        let s1 = line_of(DType::I32, Target::private(16), 1, 64);
        assert_ne!(s0, s1);
        // double, stride 8 = 64 B: own line each (Fig. 3c).
        let d0 = line_of(DType::F64, Target::private(8), 0, 64);
        let d1 = line_of(DType::F64, Target::private(8), 1, 64);
        assert_ne!(d0, d1);
    }

    #[test]
    fn shared_scalar_contention_counts_other_cores() {
        let body = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let p = placement(8);
        let m = ContentionMap::analyze(&body, &p, 64);
        let line = line_of(DType::I32, Target::SHARED, 0, 64);
        let (c, _) = m.contenders(line, p.slot(0).core, true);
        assert_eq!(c, 7);
    }

    #[test]
    fn private_strided_no_contention_when_padded() {
        let body = kernel::omp_atomic_update_array(DType::U64, 8).baseline;
        let p = placement(8);
        let m = ContentionMap::analyze(&body, &p, 64);
        for tid in 0..8 {
            let line = line_of(DType::U64, Target::private(8), tid, 64);
            let (c, _) = m.contenders(line, p.slot(tid).core, true);
            assert_eq!(c, 0, "tid {tid}");
        }
        assert_eq!(m.contended_line_count(), 0);
    }

    #[test]
    fn false_sharing_at_stride_one() {
        let body = kernel::omp_atomic_update_array(DType::I32, 1).baseline;
        let p = placement(8);
        let m = ContentionMap::analyze(&body, &p, 64);
        let line = line_of(DType::I32, Target::private(1), 0, 64);
        let (c, _) = m.contenders(line, p.slot(0).core, true);
        assert_eq!(c, 7); // 8 threads, 8 distinct cores, 1 line
        assert!(m.contended_line_count() >= 1);
    }

    #[test]
    fn smt_siblings_not_contenders() {
        // 17 threads close on System 3 (16 cores): thread 16 is the SMT
        // sibling of thread 0. With stride 1 + int they share line 0
        // *and* core 0 → not a contender of each other.
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Close, 17);
        let body = kernel::omp_atomic_update_array(DType::I32, 1).baseline;
        let m = ContentionMap::analyze(&body, &p, 64);
        let line0 = line_of(DType::I32, Target::private(1), 0, 64);
        let (c, _) = m.contenders(line0, p.slot(0).core, true);
        // Threads 1..=15 are on line 0 too (ints, stride 1), on 15
        // other cores; thread 16 shares core 0 with thread 0.
        assert_eq!(c, 15);
    }

    #[test]
    fn read_only_sharing_is_free() {
        let body = kernel::omp_atomic_read(DType::I32).baseline; // plain read
        let p = placement(8);
        let m = ContentionMap::analyze(&body, &p, 64);
        let line = line_of(DType::I32, Target::SHARED, 0, 64);
        let (c, _) = m.contenders(line, p.slot(0).core, false);
        assert_eq!(c, 0, "no writers → no read contention");
    }

    #[test]
    fn critical_registers_lock_line() {
        let body = kernel::omp_critical_add(DType::I32).baseline;
        let p = placement(4);
        let m = ContentionMap::analyze(&body, &p, 64);
        let (c, _) = m.contenders(lock_line(), p.slot(0).core, true);
        assert_eq!(c, 3);
    }

    #[test]
    fn cross_socket_detected_on_two_socket_system() {
        use syncperf_core::SYSTEM1;
        let p = Placement::new(&SYSTEM1.cpu, Affinity::Spread, 2); // sockets 0 and 1
        let body = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let m = ContentionMap::analyze(&body, &p, 64);
        let line = line_of(DType::I32, Target::SHARED, 0, 64);
        let (_, cross) = m.contenders(line, p.slot(0).core, true);
        assert!(cross);
    }
}
