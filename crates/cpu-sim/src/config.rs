//! The CPU latency/contention model and its per-system instantiation.
//!
//! All latencies are in nanoseconds of virtual time. The defaults are
//! calibrated so the regenerated figures land in the paper's reported
//! orders of magnitude (e.g. flush throughput ×10⁷ with false sharing,
//! ×10⁸ without — Fig. 6), but the *shapes* — knees, plateaus,
//! orderings — come from the modeled mechanisms, not the constants.

use syncperf_core::CpuSpec;

/// Which barrier algorithm the simulated OpenMP runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Centralized sense-reversing barrier: every arrival RMWs one
    /// shared counter line. Its cost follows the same saturating
    /// contention curve as a shared atomic — which is exactly the
    /// paper's observation that the barrier and atomic-update figures
    /// share a trend (Figs. 1-2).
    Centralized,
    /// Combining-tree barrier: arrivals combine in groups of `fanin`;
    /// cost grows with tree depth (log) instead of participant count.
    CombiningTree {
        /// Children per tree node.
        fanin: u32,
    },
}

/// Latency and contention parameters of the simulated multicore.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// L1 hit / plain ALU-visible load latency.
    pub l1_hit_ns: f64,
    /// Plain store issue latency (the store buffer absorbs the rest).
    pub store_ns: f64,
    /// Uncontended lock-prefixed integer read-modify-write.
    pub rmw_int_ns: f64,
    /// Extra service time of a floating-point atomic (compare-exchange
    /// loop: load, FP add, CAS) over the integer RMW.
    pub fp_cas_extra_ns: f64,
    /// Extra FP retry cost per contending core (CAS loops retry under
    /// contention), saturating like the arbitration term.
    pub fp_retry_ns: f64,
    /// Cache-to-cache line transfer within a socket.
    pub line_transfer_ns: f64,
    /// Multiplier on the transfer cost when contenders span sockets.
    pub cross_socket_factor: f64,
    /// Queuing/arbitration delay per contending core, up to
    /// [`CpuModel::contention_sat`] cores. The *saturation* is what
    /// produces the paper's throughput plateau beyond ~8 threads
    /// (Figs. 1, 2, 5) — see the `ablation_contention_model` bench.
    pub arbitration_ns: f64,
    /// Number of contenders after which arbitration stops growing.
    pub contention_sat: u32,
    /// Small unbounded per-sharer tax (directory bookkeeping). This is
    /// why 4-byte types, with twice as many words per line, are
    /// slightly worse than 8-byte types at stride 1 (Fig. 3a).
    pub sharer_tax_ns: f64,
    /// Barrier algorithm.
    pub barrier_kind: BarrierKind,
    /// Barrier fixed cost.
    pub barrier_base_ns: f64,
    /// Barrier per-participant cost, saturating at `contention_sat`.
    pub barrier_arb_ns: f64,
    /// Extra fixed cost of a critical section entry+exit beyond its two
    /// lock-line RMWs.
    pub lock_overhead_ns: f64,
    /// Fixed cost of a memory fence with an empty store buffer.
    pub fence_base_ns: f64,
    /// Fraction of a store's coherence latency that the store buffer
    /// hides from the issuing thread; a fence that drains the buffer
    /// pays this hidden fraction.
    pub store_buffer_hiding: f64,
    /// Service-time multiplier when both SMT ways of a core are busy.
    pub smt_service_factor: f64,
    /// Release stagger between threads leaving a barrier.
    pub release_stagger_ns: f64,
    /// Relative timing-noise amplitude (multiplicative, zero-mean).
    pub jitter_amplitude: f64,
    /// Additional jitter when hyperthreads are in use — the paper notes
    /// "hyperthreading yields more variability in thread timing".
    pub smt_jitter_boost: f64,
}

impl CpuModel {
    /// Baseline model constants (roughly a modern x86 server core).
    #[must_use]
    pub fn baseline() -> Self {
        CpuModel {
            l1_hit_ns: 1.0,
            store_ns: 1.0,
            rmw_int_ns: 6.5,
            fp_cas_extra_ns: 8.0,
            fp_retry_ns: 4.0,
            line_transfer_ns: 40.0,
            cross_socket_factor: 1.5,
            arbitration_ns: 18.0,
            contention_sat: 7,
            sharer_tax_ns: 2.0,
            barrier_kind: BarrierKind::Centralized,
            barrier_base_ns: 150.0,
            barrier_arb_ns: 140.0,
            lock_overhead_ns: 50.0,
            fence_base_ns: 10.0,
            store_buffer_hiding: 0.6,
            smt_service_factor: 1.15,
            release_stagger_ns: 3.0,
            jitter_amplitude: 0.01,
            smt_jitter_boost: 0.01,
        }
    }

    /// Scales time-like constants by the inverse clock ratio so faster
    /// parts finish ops sooner, and applies the system's jitter.
    #[must_use]
    pub fn for_system(cpu: &CpuSpec, cpu_jitter: f64) -> Self {
        let mut m = CpuModel::baseline();
        // Constants were calibrated at 3.5 GHz (System 3's CPU).
        let scale = 3.5 / cpu.base_clock_ghz;
        for v in [
            &mut m.l1_hit_ns,
            &mut m.store_ns,
            &mut m.rmw_int_ns,
            &mut m.fp_cas_extra_ns,
            &mut m.fp_retry_ns,
            &mut m.barrier_base_ns,
            &mut m.lock_overhead_ns,
            &mut m.fence_base_ns,
        ] {
            *v *= scale;
        }
        // Interconnect latencies scale much less with core clock.
        m.jitter_amplitude = (cpu_jitter * 0.4).min(0.06);
        m
    }

    /// A stable 64-bit digest of every model constant (FNV-1a over the
    /// canonical debug rendering). Two models agree on the digest iff
    /// they would produce identical simulations, which is what lets
    /// the sweep scheduler use it as part of a content-addressed cache
    /// key: recalibrating any constant invalidates cached results.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        // Local FNV-1a: the digest must be process- and
        // platform-independent, unlike `std::hash`.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Contention-limited extra latency for `contenders` other cores
    /// fighting over a line (transfer + saturating arbitration +
    /// unbounded sharer tax), `cross_socket` marking whether the
    /// contenders span sockets.
    #[must_use]
    pub fn contention_ns(&self, contenders: u32, cross_socket: bool) -> f64 {
        if contenders == 0 {
            return 0.0;
        }
        let transfer = if cross_socket {
            self.line_transfer_ns * self.cross_socket_factor
        } else {
            self.line_transfer_ns
        };
        transfer
            + self.arbitration_ns * f64::from(contenders.min(self.contention_sat))
            + self.sharer_tax_ns * f64::from(contenders)
    }

    /// Barrier cost for `n` participants, under the configured
    /// [`BarrierKind`].
    #[must_use]
    pub fn barrier_ns(&self, n: u32) -> f64 {
        match self.barrier_kind {
            BarrierKind::Centralized => {
                self.barrier_base_ns
                    + self.barrier_arb_ns
                        * f64::from((n.saturating_sub(1)).min(self.contention_sat))
                    + self.sharer_tax_ns * f64::from(n.saturating_sub(1))
            }
            BarrierKind::CombiningTree { fanin } => {
                let fanin = fanin.max(2);
                // Tree depth: arrivals combine level by level; the
                // release broadcast adds one more traversal.
                let mut levels = 0u32;
                let mut width = n.max(1);
                while width > 1 {
                    width = width.div_ceil(fanin);
                    levels += 1;
                }
                // Each tree node is contended only fan-in wide, so a
                // stage pays ordinary line arbitration, not the heavily
                // contended central-counter rate.
                let stage = self.arbitration_ns * f64::from(fanin - 1) + self.line_transfer_ns;
                self.barrier_base_ns + 2.0 * f64::from(levels) * stage
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{SYSTEM1, SYSTEM3};

    #[test]
    fn contention_zero_when_private() {
        let m = CpuModel::baseline();
        assert_eq!(m.contention_ns(0, false), 0.0);
    }

    #[test]
    fn contention_saturates() {
        let m = CpuModel::baseline();
        let at_sat = m.contention_ns(m.contention_sat, false);
        let beyond = m.contention_ns(m.contention_sat + 8, false);
        // Only the small sharer tax keeps growing past saturation.
        let tax_delta = m.sharer_tax_ns * 8.0;
        assert!((beyond - at_sat - tax_delta).abs() < 1e-9);
    }

    #[test]
    fn contention_monotonic() {
        let m = CpuModel::baseline();
        let mut prev = 0.0;
        for c in 1..20 {
            let v = m.contention_ns(c, false);
            assert!(v > prev, "c={c}");
            prev = v;
        }
    }

    #[test]
    fn cross_socket_costs_more() {
        let m = CpuModel::baseline();
        assert!(m.contention_ns(3, true) > m.contention_ns(3, false));
    }

    #[test]
    fn barrier_grows_then_saturates() {
        let m = CpuModel::baseline();
        assert!(m.barrier_ns(4) > m.barrier_ns(2));
        let d_small = m.barrier_ns(4) - m.barrier_ns(3);
        let d_large = m.barrier_ns(20) - m.barrier_ns(19);
        assert!(
            d_large < d_small,
            "barrier cost must flatten at high thread counts"
        );
    }

    #[test]
    fn tree_barrier_grows_logarithmically() {
        let mut m = CpuModel::baseline();
        m.barrier_kind = BarrierKind::CombiningTree { fanin: 4 };
        let b4 = m.barrier_ns(4);
        let b16 = m.barrier_ns(16);
        let b64 = m.barrier_ns(64);
        // Equal depth increments → equal cost increments (log growth).
        assert!((b16 - b4 - (b64 - b16)).abs() < 1e-9, "{b4} {b16} {b64}");
        // And flatter than the centralized barrier at mid scale.
        let central = CpuModel::baseline();
        assert!(m.barrier_ns(16) < central.barrier_ns(16));
    }

    #[test]
    fn tree_barrier_fanin_floor() {
        let mut m = CpuModel::baseline();
        m.barrier_kind = BarrierKind::CombiningTree { fanin: 0 };
        // Degenerate fan-in clamps to 2 rather than looping forever.
        assert!(m.barrier_ns(8).is_finite());
    }

    #[test]
    fn per_system_scaling() {
        let s3 = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
        let s1 = CpuModel::for_system(&SYSTEM1.cpu, SYSTEM1.cpu_jitter);
        // System 1 runs at 3.1 GHz < 3.5 GHz: core-bound ops take longer.
        assert!(s1.rmw_int_ns > s3.rmw_int_ns);
        // System 3 (AMD) is the jittery one (Fig. 4a).
        assert!(s3.jitter_amplitude > s1.jitter_amplitude);
    }
}
