//! Compiled per-run execution plan: integer fixed-point op costs.
//!
//! The engine used to recompute every op's latency (model lookups,
//! contention-map queries, SMT factors) on every repetition of every
//! thread. All of those inputs are constant for the duration of a run,
//! so the plan computes each `(thread, op)` cost exactly once and
//! quantizes it to an integer number of fixed-point time units.
//!
//! Quantization is what makes the steady-state fast path *bit-exact*:
//! integer addition is associative, so `delta × remaining_reps` (one
//! multiply) equals stepping `remaining_reps` more repetitions — which
//! is never true of repeated `f64` addition. A nanosecond is split into
//! 2²⁰ units; the worst-case run total stays far below 2⁵³ units, so
//! the single conversion back to `f64` at the end of a run is exact.

use syncperf_core::CpuOp;

use crate::config::CpuModel;
use crate::memline::{classify, line_of, Access, ContentionMap};
use crate::topology::Placement;

/// log₂ of the number of fixed-point units per nanosecond.
pub const SCALE_BITS: u32 = 20;

/// Fixed-point units per nanosecond (2²⁰).
pub const SCALE: f64 = (1u64 << SCALE_BITS) as f64;

/// Quantizes a latency in nanoseconds to fixed-point units.
#[must_use]
pub fn quantize(ns: f64) -> u64 {
    debug_assert!(ns >= 0.0, "negative latency {ns}");
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (ns * SCALE).round() as u64
    }
}

/// Converts fixed-point units back to nanoseconds. Exact for any total
/// below 2⁵³ units (≈ 8.6 × 10⁶ seconds of virtual time).
#[must_use]
pub fn units_to_ns(units: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        units as f64 / SCALE
    }
}

/// One precompiled op cost for a specific thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// State-independent cost: the thread clock advances by the units.
    Fixed(u64),
    /// A plain store: `visible` is charged to the clock, and the store
    /// buffer's drain horizon rises to `t + pending_extra`.
    Store {
        /// Cost visible to the issuing thread.
        visible: u64,
        /// Hidden coherence latency a later fence must pay.
        pending_extra: u64,
    },
    /// A fence: charges `base` plus whatever the store buffer still
    /// hides (`pending − t`), then drains the buffer.
    Flush {
        /// Fixed fence cost with an empty store buffer.
        base: u64,
    },
    /// Placeholder at a barrier position; never stepped — the engine
    /// rendezvouses instead.
    Barrier,
}

/// The fully compiled plan of one engine run: per-`(thread, op)` integer
/// costs, the barrier segmentation of the body, and the quantized
/// barrier constants.
#[derive(Debug, Clone)]
pub struct RunPlan {
    threads: usize,
    body_len: usize,
    /// `threads × body_len` cost table, thread-major.
    ops: Vec<PlanOp>,
    /// `[start, end)` op ranges between barriers; rendezvous happens
    /// after every segment except the last.
    segments: Vec<(usize, usize)>,
    /// Quantized release cost of one barrier episode.
    barrier_units: u64,
    /// Quantized release stagger between consecutive barrier leavers.
    stagger_units: u64,
}

impl RunPlan {
    /// Compiles `body` against a model, placement, and contention map.
    #[must_use]
    pub fn compile(
        model: &CpuModel,
        placement: &Placement,
        contention: &ContentionMap,
        body: &[CpuOp],
    ) -> Self {
        let n = placement.len();
        let mut ops = Vec::with_capacity(n * body.len());
        for tid in 0..n {
            let smt = if placement.core_is_smt_loaded(tid) {
                model.smt_service_factor
            } else {
                1.0
            };
            for op in body {
                ops.push(compile_op(model, placement, contention, op, tid, smt));
            }
        }

        let mut segments = Vec::new();
        let mut start = 0usize;
        for (i, op) in body.iter().enumerate() {
            if matches!(op, CpuOp::Barrier) {
                segments.push((start, i));
                start = i + 1;
            }
        }
        segments.push((start, body.len()));

        #[allow(clippy::cast_possible_truncation)]
        let barrier_units = quantize(model.barrier_ns(n as u32));
        RunPlan {
            threads: n,
            body_len: body.len(),
            ops,
            segments,
            barrier_units,
            stagger_units: quantize(model.release_stagger_ns),
        }
    }

    /// Number of placed threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The compiled cost of op `idx` for thread `tid`.
    #[must_use]
    pub fn op(&self, tid: usize, idx: usize) -> PlanOp {
        self.ops[tid * self.body_len + idx]
    }

    /// The barrier-free segments of the body, in execution order.
    #[must_use]
    pub fn segments(&self) -> &[(usize, usize)] {
        &self.segments
    }

    /// Barriers executed per repetition.
    #[must_use]
    pub fn barriers_per_rep(&self) -> u64 {
        self.segments.len() as u64 - 1
    }

    /// Quantized cost of one barrier release.
    #[must_use]
    pub fn barrier_units(&self) -> u64 {
        self.barrier_units
    }

    /// Quantized stagger between consecutive barrier leavers.
    #[must_use]
    pub fn stagger_units(&self) -> u64 {
        self.stagger_units
    }
}

/// Compiles one op's latency for one thread, mirroring the cost model
/// the engine previously evaluated per repetition.
fn compile_op(
    model: &CpuModel,
    placement: &Placement,
    contention: &ContentionMap,
    op: &CpuOp,
    tid: usize,
    smt: f64,
) -> PlanOp {
    let slot = placement.slot(tid);
    match *op {
        CpuOp::Barrier => PlanOp::Barrier,
        CpuOp::Flush => PlanOp::Flush {
            base: quantize(model.fence_base_ns * smt),
        },
        CpuOp::CriticalAdd { dtype, target } => {
            // Lock acquire (RMW on the lock line), protected plain
            // update, lock release (store on the lock line).
            let (lc, lcross) = contention.contenders(crate::memline::lock_line(), slot.core, true);
            let lock_line_cost = model.contention_ns(lc, lcross);
            let acquire = model.rmw_int_ns * smt + lock_line_cost;
            let release = model.store_ns * smt + lock_line_cost;
            let line = line_of(dtype, target, tid, contention.line_bytes());
            let (c, cross) = contention.contenders(line, slot.core, true);
            let body_cost =
                (model.l1_hit_ns + model.store_ns) * smt + model.contention_ns(c, cross);
            PlanOp::Fixed(quantize(
                model.lock_overhead_ns * smt + acquire + body_cost + release,
            ))
        }
        CpuOp::CriticalBegin { .. } => {
            // The acquire half of the CriticalAdd cost split: lock
            // overhead plus an RMW on the contended lock line.
            let (lc, lcross) = contention.contenders(crate::memline::lock_line(), slot.core, true);
            let lock_line_cost = model.contention_ns(lc, lcross);
            PlanOp::Fixed(quantize(
                model.lock_overhead_ns * smt + model.rmw_int_ns * smt + lock_line_cost,
            ))
        }
        CpuOp::CriticalEnd { .. } => {
            // The release half: a store on the lock line.
            let (lc, lcross) = contention.contenders(crate::memline::lock_line(), slot.core, true);
            let lock_line_cost = model.contention_ns(lc, lcross);
            PlanOp::Fixed(quantize(model.store_ns * smt + lock_line_cost))
        }
        _ => match classify(op) {
            Access::None => PlanOp::Fixed(0),
            Access::Read(dtype, target) => {
                let line = line_of(dtype, target, tid, contention.line_bytes());
                let (c, cross) = contention.contenders(line, slot.core, false);
                PlanOp::Fixed(quantize(
                    model.l1_hit_ns * smt + model.contention_ns(c, cross),
                ))
            }
            Access::Write(dtype, target) => {
                let is_plain_store = matches!(op, CpuOp::Update { .. });
                let is_pure_write = matches!(op, CpuOp::AtomicWrite { .. });
                let line = line_of(dtype, target, tid, contention.line_bytes());
                let (c, cross) = contention.contenders(line, slot.core, true);
                let coherence = model.contention_ns(c, cross);
                if is_plain_store {
                    // The store buffer hides part of the coherence
                    // latency from the issuing thread; a fence that
                    // drains the buffer pays the hidden fraction.
                    let visible = (model.l1_hit_ns + model.store_ns) * smt
                        + (1.0 - model.store_buffer_hiding) * coherence;
                    PlanOp::Store {
                        visible: quantize(visible),
                        pending_extra: quantize(coherence * model.store_buffer_hiding),
                    }
                } else {
                    let service = if is_pure_write {
                        // No arithmetic: word size and type are
                        // irrelevant (Fig. 4) — a 64-bit CPU stores
                        // ≤ 8 B in one go.
                        model.store_ns
                    } else {
                        atomic_rmw_service(model, dtype, c)
                    };
                    PlanOp::Fixed(quantize(service * smt + coherence))
                }
            }
            Access::CriticalWrite(..) => unreachable!("handled above"),
        },
    }
}

/// Service time of an atomic read-modify-write: integers use one
/// lock-prefixed instruction; floats run a compare-exchange loop that
/// retries under contention (hence the integer/floating-point gap in
/// Figs. 2 and 3).
fn atomic_rmw_service(model: &CpuModel, dtype: syncperf_core::DType, contenders: u32) -> f64 {
    if dtype.is_integer() {
        model.rmw_int_ns
    } else {
        model.rmw_int_ns
            + model.fp_cas_extra_ns
            + model.fp_retry_ns * f64::from(contenders.min(model.contention_sat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, Affinity, DType, SYSTEM3};

    #[test]
    fn quantization_round_trips_small_integers() {
        for ns in [0.0, 1.0, 6.5, 10.0, 150.0, 40.0] {
            assert!((units_to_ns(quantize(ns)) - ns).abs() < 1e-6);
        }
    }

    #[test]
    fn plan_segments_split_at_barriers() {
        let model = CpuModel::baseline();
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 4);
        let body = kernel::omp_barrier().test;
        let c = ContentionMap::analyze(&body, &p, 64);
        let plan = RunPlan::compile(&model, &p, &c, &body);
        let barriers = body
            .iter()
            .filter(|op| matches!(op, CpuOp::Barrier))
            .count() as u64;
        assert_eq!(plan.barriers_per_rep(), barriers);
        assert_eq!(plan.segments().len() as u64, barriers + 1);
        assert!(plan.barrier_units() > 0);
    }

    #[test]
    fn identical_costs_quantize_identically() {
        // The word-size-irrelevance claims (Fig. 4) rely on equal f64
        // costs staying equal after quantization.
        let model = CpuModel::baseline();
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 8);
        let bi = kernel::omp_atomic_update_scalar(DType::I32).baseline;
        let bu = kernel::omp_atomic_update_scalar(DType::U64).baseline;
        let ci = ContentionMap::analyze(&bi, &p, 64);
        let cu = ContentionMap::analyze(&bu, &p, 64);
        let pi = RunPlan::compile(&model, &p, &ci, &bi);
        let pu = RunPlan::compile(&model, &p, &cu, &bu);
        for tid in 0..8 {
            for idx in 0..bi.len() {
                assert_eq!(pi.op(tid, idx), pu.op(tid, idx));
            }
        }
    }
}
