//! An explicit MESI coherence protocol, used to *validate* the engine's
//! static contention analysis.
//!
//! The engine charges coherence costs from a static sharing analysis
//! ([`crate::memline::ContentionMap`]); this module implements the
//! actual Modified/Exclusive/Shared/Invalid state machine so tests can
//! replay a kernel's access trace and confirm the two agree: lines the
//! analysis calls conflict-free reach a steady state with zero bus
//! transactions, and lines with `c` write contenders keep generating
//! invalidations/transfers forever.

use std::collections::HashMap;

use syncperf_core::obs::Recorder;

use crate::memline::LineId;

/// Per-core MESI state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MesiState {
    /// Dirty and exclusive to one cache.
    Modified,
    /// Clean and exclusive to one cache.
    Exclusive,
    /// Clean, possibly in several caches.
    Shared,
    /// Not present.
    #[default]
    Invalid,
}

/// What one access cost on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transaction {
    /// Served from the local cache; no bus traffic.
    Hit,
    /// Read miss filled from memory (no other cache had it).
    FillFromMemory,
    /// Read miss served cache-to-cache from the owner.
    CacheToCache,
    /// Write that had to invalidate other caches' copies.
    Invalidation {
        /// How many remote copies were invalidated.
        copies: u32,
    },
    /// Write upgrade from Shared without remote copies (Exclusive →
    /// Modified, silent).
    SilentUpgrade,
}

/// Bus-transaction counters for one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineTraffic {
    /// Accesses that hit locally.
    pub hits: u64,
    /// Fills from memory.
    pub memory_fills: u64,
    /// Cache-to-cache transfers.
    pub transfers: u64,
    /// Invalidation broadcasts.
    pub invalidations: u64,
}

impl LineTraffic {
    /// Bus transactions (everything except hits and silent upgrades).
    #[must_use]
    pub fn bus_transactions(&self) -> u64 {
        self.memory_fills + self.transfers + self.invalidations
    }
}

/// A directory-based MESI simulator over `n_cores` private caches.
#[derive(Debug)]
pub struct MesiDirectory {
    n_cores: usize,
    states: HashMap<LineId, Vec<MesiState>>,
    traffic: HashMap<LineId, LineTraffic>,
    recorder: Recorder,
}

impl MesiDirectory {
    /// Creates a directory for `n_cores` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        MesiDirectory {
            n_cores,
            states: HashMap::new(),
            traffic: HashMap::new(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a [`Recorder`]; every transaction then also bumps the
    /// `mesi.*` counters (`hits`, `memory_fills`, `cache_to_cache`,
    /// `invalidations`, `silent_upgrades`) — letting tests cross-check
    /// the engine's analytic `cpu_sim.mesi_transitions` count against
    /// the explicit state machine.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    fn line_states(&mut self, line: LineId) -> &mut Vec<MesiState> {
        let n = self.n_cores;
        self.states
            .entry(line)
            .or_insert_with(|| vec![MesiState::Invalid; n])
    }

    /// Core `core` reads `line`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn read(&mut self, core: usize, line: LineId) -> Transaction {
        assert!(core < self.n_cores, "core {core} out of range");
        let states = self.line_states(line);
        let tx = match states[core] {
            MesiState::Modified | MesiState::Exclusive | MesiState::Shared => Transaction::Hit,
            MesiState::Invalid => {
                let owner = states
                    .iter()
                    .position(|s| matches!(s, MesiState::Modified | MesiState::Exclusive));
                let any_shared = states.contains(&MesiState::Shared);
                if let Some(o) = owner {
                    states[o] = MesiState::Shared;
                    states[core] = MesiState::Shared;
                    Transaction::CacheToCache
                } else if any_shared {
                    states[core] = MesiState::Shared;
                    Transaction::CacheToCache
                } else {
                    states[core] = MesiState::Exclusive;
                    Transaction::FillFromMemory
                }
            }
        };
        self.record(line, tx);
        self.debug_check(line);
        tx
    }

    /// Core `core` writes (or RMWs) `line`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn write(&mut self, core: usize, line: LineId) -> Transaction {
        assert!(core < self.n_cores, "core {core} out of range");
        let states = self.line_states(line);
        let tx = match states[core] {
            MesiState::Modified => Transaction::Hit,
            MesiState::Exclusive => {
                states[core] = MesiState::Modified;
                Transaction::SilentUpgrade
            }
            from @ (MesiState::Shared | MesiState::Invalid) => {
                let mut copies = 0u32;
                for (i, s) in states.iter_mut().enumerate() {
                    if i != core && *s != MesiState::Invalid {
                        *s = MesiState::Invalid;
                        copies += 1;
                    }
                }
                states[core] = MesiState::Modified;
                if copies > 0 {
                    Transaction::Invalidation { copies }
                } else if from == MesiState::Shared {
                    // Upgrade of the last remaining copy: no data moves.
                    Transaction::SilentUpgrade
                } else {
                    Transaction::FillFromMemory
                }
            }
        };
        self.record(line, tx);
        self.debug_check(line);
        tx
    }

    /// Traffic counters for `line` (zeroes if never touched).
    #[must_use]
    pub fn traffic(&self, line: LineId) -> LineTraffic {
        self.traffic.get(&line).copied().unwrap_or_default()
    }

    /// The state of `line` in `core`'s cache.
    #[must_use]
    pub fn state(&self, core: usize, line: LineId) -> MesiState {
        self.states
            .get(&line)
            .map_or(MesiState::Invalid, |v| v[core])
    }

    /// Resets traffic counters (keeps cache states) — used to skip the
    /// cold-start fills before measuring steady state.
    pub fn reset_traffic(&mut self) {
        self.traffic.clear();
    }

    fn record(&mut self, line: LineId, tx: Transaction) {
        let t = self.traffic.entry(line).or_default();
        match tx {
            Transaction::Hit => t.hits += 1,
            Transaction::FillFromMemory => t.memory_fills += 1,
            Transaction::CacheToCache => t.transfers += 1,
            Transaction::Invalidation { .. } => t.invalidations += 1,
            Transaction::SilentUpgrade => {}
        }
        if self.recorder.is_enabled() {
            let name = match tx {
                Transaction::Hit => "mesi.hits",
                Transaction::FillFromMemory => "mesi.memory_fills",
                Transaction::CacheToCache => "mesi.cache_to_cache",
                Transaction::Invalidation { .. } => "mesi.invalidations",
                Transaction::SilentUpgrade => "mesi.silent_upgrades",
            };
            self.recorder.counter(name).inc();
            if !matches!(tx, Transaction::Hit | Transaction::SilentUpgrade) {
                self.recorder.counter("mesi.bus_transactions").inc();
            }
        }
    }

    /// MESI safety invariant: at most one Modified/Exclusive copy, and
    /// it excludes all other valid copies.
    fn debug_check(&self, line: LineId) {
        if let Some(states) = self.states.get(&line) {
            let owners = states
                .iter()
                .filter(|s| matches!(s, MesiState::Modified | MesiState::Exclusive))
                .count();
            let valid = states.iter().filter(|s| **s != MesiState::Invalid).count();
            debug_assert!(owners <= 1, "two owners of {line:?}");
            debug_assert!(
                owners == 0 || valid == 1,
                "owner coexists with copies of {line:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memline::line_of;
    use syncperf_core::{DType, Target};

    fn line(i: u32) -> LineId {
        line_of(
            DType::I32,
            Target::Private {
                array: 0,
                stride: 16,
            },
            i as usize,
            64,
        )
    }

    #[test]
    fn first_read_fills_from_memory_then_hits() {
        let mut d = MesiDirectory::new(4);
        assert_eq!(d.read(0, line(0)), Transaction::FillFromMemory);
        assert_eq!(d.read(0, line(0)), Transaction::Hit);
        assert_eq!(d.state(0, line(0)), MesiState::Exclusive);
    }

    #[test]
    fn exclusive_write_is_silent() {
        let mut d = MesiDirectory::new(2);
        d.read(0, line(0));
        assert_eq!(d.write(0, line(0)), Transaction::SilentUpgrade);
        assert_eq!(d.state(0, line(0)), MesiState::Modified);
        assert_eq!(d.write(0, line(0)), Transaction::Hit);
    }

    #[test]
    fn second_reader_gets_cache_to_cache_and_shared() {
        let mut d = MesiDirectory::new(2);
        d.read(0, line(0));
        assert_eq!(d.read(1, line(0)), Transaction::CacheToCache);
        assert_eq!(d.state(0, line(0)), MesiState::Shared);
        assert_eq!(d.state(1, line(0)), MesiState::Shared);
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let mut d = MesiDirectory::new(3);
        d.read(0, line(0));
        d.read(1, line(0));
        d.read(2, line(0));
        let tx = d.write(0, line(0));
        assert_eq!(tx, Transaction::Invalidation { copies: 2 });
        assert_eq!(d.state(1, line(0)), MesiState::Invalid);
        assert_eq!(d.state(2, line(0)), MesiState::Invalid);
        assert_eq!(d.state(0, line(0)), MesiState::Modified);
    }

    #[test]
    fn ping_pong_generates_traffic_forever() {
        // Two cores RMW-ing the same line: every access after warmup is
        // an invalidation — the false-sharing steady state.
        let mut d = MesiDirectory::new(2);
        d.write(0, line(0));
        d.write(1, line(0));
        d.reset_traffic();
        for _ in 0..100 {
            d.write(0, line(0));
            d.write(1, line(0));
        }
        let t = d.traffic(line(0));
        assert_eq!(t.invalidations, 200, "every alternating write invalidates");
        assert_eq!(t.hits, 0);
    }

    #[test]
    fn private_lines_silent_after_warmup() {
        // Each core its own line: zero bus transactions in steady state
        // — exactly why padded strides are fast (Fig. 3d).
        let mut d = MesiDirectory::new(4);
        for c in 0..4 {
            d.write(c, line(c as u32));
        }
        d.reset_traffic();
        for _ in 0..100 {
            for c in 0..4 {
                d.write(c, line(c as u32));
            }
        }
        for c in 0..4 {
            let t = d.traffic(line(c as u32));
            assert_eq!(
                t.bus_transactions(),
                0,
                "core {c} must run from its own cache"
            );
            assert_eq!(t.hits, 100);
        }
    }

    #[test]
    fn read_only_sharing_silent_after_warmup() {
        // Many readers, no writers: Shared everywhere, all hits — why
        // atomic reads are free (§V-A2).
        let mut d = MesiDirectory::new(8);
        for c in 0..8 {
            d.read(c, line(0));
        }
        d.reset_traffic();
        for _ in 0..50 {
            for c in 0..8 {
                d.read(c, line(0));
            }
        }
        assert_eq!(d.traffic(line(0)).bus_transactions(), 0);
    }

    #[test]
    fn recorder_counts_match_traffic() {
        let rec = Recorder::enabled();
        let mut d = MesiDirectory::new(2).with_recorder(rec.clone());
        d.write(0, line(0)); // memory fill
        d.write(1, line(0)); // invalidation
        d.read(0, line(0)); // cache-to-cache
        d.read(0, line(0)); // hit
        let snap = rec.snapshot();
        assert_eq!(snap.counter("mesi.memory_fills"), 1);
        assert_eq!(snap.counter("mesi.invalidations"), 1);
        assert_eq!(snap.counter("mesi.cache_to_cache"), 1);
        assert_eq!(snap.counter("mesi.hits"), 1);
        assert_eq!(snap.counter("mesi.bus_transactions"), 3);
    }

    #[test]
    fn reader_of_written_line_keeps_paying() {
        let mut d = MesiDirectory::new(2);
        d.write(0, line(0));
        d.read(1, line(0));
        d.reset_traffic();
        for _ in 0..10 {
            d.write(0, line(0)); // invalidates 1's copy
            d.read(1, line(0)); // transfers it back
        }
        let t = d.traffic(line(0));
        assert_eq!(t.invalidations, 10);
        assert_eq!(t.transfers, 10);
    }
}
