//! Checkpoint manifests: which jobs of a labeled run already
//! completed, enabling `--resume` after an interruption.
//!
//! A checkpoint lists content hashes, so it composes with the cache:
//! resuming re-keys every job, skips the ones whose hash is both in
//! the manifest and in the cache, and recomputes anything else. A
//! stale manifest can therefore never resurrect wrong results — at
//! worst it causes recomputation.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use syncperf_core::obs::json;

use crate::hash::{hex16, parse_hex16};

/// How many completions may accumulate before the manifest is
/// re-flushed to disk (the floor — see [`Checkpoint::record`]).
pub const FLUSH_EVERY: usize = 32;

/// The on-disk progress manifest of one labeled run.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    label: String,
    done: BTreeSet<u64>,
    complete: bool,
    dirty: usize,
}

/// Restricts a run label to filesystem-safe characters.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Checkpoint {
    /// The manifest path for `label` under `dir`.
    #[must_use]
    pub fn path_for(dir: &Path, label: &str) -> PathBuf {
        dir.join(format!("checkpoint-{}.json", sanitize(label)))
    }

    /// A fresh, empty manifest for `label` (ignores any on-disk
    /// state).
    #[must_use]
    pub fn fresh(dir: &Path, label: &str) -> Self {
        Checkpoint {
            path: Self::path_for(dir, label),
            label: label.to_string(),
            done: BTreeSet::new(),
            complete: false,
            dirty: 0,
        }
    }

    /// Loads the manifest for `label`, tolerating a missing or corrupt
    /// file (both yield an empty manifest — resume then simply
    /// recomputes).
    #[must_use]
    pub fn load(dir: &Path, label: &str) -> Self {
        let mut cp = Self::fresh(dir, label);
        let Ok(text) = std::fs::read_to_string(&cp.path) else {
            return cp;
        };
        let Ok(v) = json::parse(&text) else {
            return cp;
        };
        if v.get("label").and_then(json::Value::as_str) != Some(label) {
            return cp;
        }
        cp.complete = matches!(v.get("complete"), Some(json::Value::Bool(true)));
        if let Some(done) = v.get("done").and_then(json::Value::as_array) {
            for h in done {
                if let Some(h) = h.as_str().and_then(parse_hex16) {
                    cp.done.insert(h);
                }
            }
        }
        cp
    }

    /// Whether the labeled run previously finished all its jobs.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Whether `hash` completed in a previous (or the current) run.
    #[must_use]
    pub fn contains(&self, hash: u64) -> bool {
        self.done.contains(&hash)
    }

    /// Number of recorded completions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether no completions are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Iterates over the recorded completion hashes.
    pub fn hashes(&self) -> impl Iterator<Item = u64> + '_ {
        self.done.iter().copied()
    }

    /// Records a completed job, flushing the manifest to disk after at
    /// least [`FLUSH_EVERY`] new completions — and, once the manifest
    /// grows past a few hundred entries, after an eighth of its size.
    /// Each save rewrites the whole hash list, so a fixed interval
    /// would make total save work quadratic in sweep size; scaling the
    /// interval keeps it linear while still bounding how much an
    /// interrupted sweep can lose to about 12%.
    pub fn record(&mut self, hash: u64) {
        if self.done.insert(hash) {
            self.dirty += 1;
            if self.dirty >= FLUSH_EVERY.max(self.done.len() / 8) {
                let _ = self.save();
            }
        }
    }

    /// Marks the run complete and flushes.
    pub fn finish(&mut self) {
        self.complete = true;
        let _ = self.save();
    }

    /// Writes the manifest (temp file + atomic rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; callers treat the manifest as advisory
    /// and may ignore them.
    pub fn save(&mut self) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        use std::fmt::Write as _;
        // Pre-size for the hash list (20 bytes per `"hex16", ` entry):
        // a long sweep re-saves periodically (see `record`), so the
        // encoder runs often enough to care about reallocation churn.
        let mut out = String::with_capacity(96 + self.label.len() + 20 * self.done.len());
        out.push_str("{\n");
        let _ = writeln!(out, "  \"label\": \"{}\",", sanitize(&self.label));
        let _ = writeln!(out, "  \"complete\": {},", self.complete);
        out.push_str("  \"done\": [");
        for (i, h) in self.done.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", hex16(*h));
        }
        out.push_str("]\n}\n");
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &self.path)?;
        self.dirty = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("syncperf-cp-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_and_resume() {
        let dir = tmp_dir("roundtrip");
        let mut cp = Checkpoint::fresh(&dir, "all_figures");
        cp.record(1);
        cp.record(2);
        cp.save().unwrap();

        let resumed = Checkpoint::load(&dir, "all_figures");
        assert!(resumed.contains(1) && resumed.contains(2) && !resumed.contains(3));
        assert_eq!(resumed.len(), 2);
        assert!(!resumed.is_complete());

        cp.finish();
        assert!(Checkpoint::load(&dir, "all_figures").is_complete());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_corrupt_or_mislabeled_manifests_load_empty() {
        let dir = tmp_dir("tolerant");
        assert!(Checkpoint::load(&dir, "nothing").is_empty());

        std::fs::write(Checkpoint::path_for(&dir, "bad"), "{{{").unwrap();
        assert!(Checkpoint::load(&dir, "bad").is_empty());

        let mut cp = Checkpoint::fresh(&dir, "fig01");
        cp.record(9);
        cp.save().unwrap();
        // A manifest saved for one label must not resume another.
        std::fs::copy(
            Checkpoint::path_for(&dir, "fig01"),
            Checkpoint::path_for(&dir, "fig02"),
        )
        .unwrap();
        assert!(Checkpoint::load(&dir, "fig02").is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labels_are_sanitized() {
        let p = Checkpoint::path_for(Path::new("/x"), "a/b c");
        assert_eq!(p, PathBuf::from("/x/checkpoint-a_b_c.json"));
    }
}
