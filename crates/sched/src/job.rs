//! Job descriptions: one independent measurement per sweep point.
//!
//! A [`JobSpec`] captures everything that determines a measurement's
//! outcome — the executor kind, the simulated system, an optional
//! model override, the kernel (name *and* op bodies), the execution
//! parameters, and the protocol — so its canonical form can serve as a
//! content-addressed cache key. Anything not captured here must be
//! folded into the scheduler's version salt instead.

use std::fmt::Write as _;

use syncperf_core::{CpuKernel, ExecParams, GpuKernel, Measurement, Protocol, Result, SystemSpec};
use syncperf_cpu_sim::{CpuModel, CpuSimExecutor};
use syncperf_gpu_sim::{GpuModel, GpuSimExecutor};
use syncperf_omp::OmpExecutor;

/// One independent measurement job: kernel × parameters × protocol on
/// a concrete executor configuration.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A measurement on the CPU simulator.
    CpuSim {
        /// The simulated system.
        system: SystemSpec,
        /// Latency-model override (`None` = the system's calibrated
        /// model).
        model: Option<CpuModel>,
        /// The kernel to measure.
        kernel: CpuKernel,
        /// The parameter point.
        params: ExecParams,
        /// The measurement protocol.
        protocol: Protocol,
    },
    /// A measurement on the GPU simulator.
    GpuSim {
        /// The simulated system.
        system: SystemSpec,
        /// Latency-model override (`None` = the system's calibrated
        /// model).
        model: Option<GpuModel>,
        /// The kernel to measure.
        kernel: GpuKernel,
        /// The parameter point.
        params: ExecParams,
        /// The measurement protocol.
        protocol: Protocol,
    },
    /// A measurement on this machine's real threads. Results are only
    /// meaningful on the host that produced them, so the host identity
    /// is part of the job's content hash.
    RealOmp {
        /// Hostname × hardware-parallelism fingerprint.
        host: String,
        /// The kernel to measure.
        kernel: CpuKernel,
        /// The parameter point.
        params: ExecParams,
        /// The measurement protocol.
        protocol: Protocol,
    },
}

/// The host fingerprint used for [`JobSpec::RealOmp`] hashing: results
/// from one machine must never be served as another machine's.
#[must_use]
pub fn host_fingerprint() -> String {
    let host = std::env::var("HOSTNAME").unwrap_or_else(|_| "localhost".into());
    let par = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    format!("{host}/{par}")
}

impl JobSpec {
    /// A CPU-simulator job with the system's calibrated model.
    #[must_use]
    pub fn cpu_sim(
        system: &SystemSpec,
        kernel: CpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::CpuSim {
            system: system.clone(),
            model: None,
            kernel,
            params,
            protocol,
        }
    }

    /// A CPU-simulator job with an explicit latency model (used by the
    /// sensitivity sweep's perturbed models).
    #[must_use]
    pub fn cpu_sim_with_model(
        system: &SystemSpec,
        model: CpuModel,
        kernel: CpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::CpuSim {
            system: system.clone(),
            model: Some(model),
            kernel,
            params,
            protocol,
        }
    }

    /// A GPU-simulator job with the system's calibrated model.
    #[must_use]
    pub fn gpu_sim(
        system: &SystemSpec,
        kernel: GpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::GpuSim {
            system: system.clone(),
            model: None,
            kernel,
            params,
            protocol,
        }
    }

    /// A GPU-simulator job with an explicit latency model.
    #[must_use]
    pub fn gpu_sim_with_model(
        system: &SystemSpec,
        model: GpuModel,
        kernel: GpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::GpuSim {
            system: system.clone(),
            model: Some(model),
            kernel,
            params,
            protocol,
        }
    }

    /// A real-thread job on this host.
    #[must_use]
    pub fn real_omp(kernel: CpuKernel, params: ExecParams, protocol: Protocol) -> Self {
        JobSpec::RealOmp {
            host: host_fingerprint(),
            kernel,
            params,
            protocol,
        }
    }

    /// The measured kernel's name (stored in cache entries and checked
    /// against them on load).
    #[must_use]
    pub fn kernel_name(&self) -> &str {
        match self {
            JobSpec::CpuSim { kernel, .. } | JobSpec::RealOmp { kernel, .. } => &kernel.name,
            JobSpec::GpuSim { kernel, .. } => &kernel.name,
        }
    }

    /// The parameter point this job measures at.
    #[must_use]
    pub fn params(&self) -> &ExecParams {
        match self {
            JobSpec::CpuSim { params, .. }
            | JobSpec::GpuSim { params, .. }
            | JobSpec::RealOmp { params, .. } => params,
        }
    }

    /// The canonical string the content hash is computed over. Covers
    /// the executor kind, system spec, effective latency-model digest,
    /// full kernel (name, op bodies, extra-op count), parameters, and
    /// protocol — everything that determines the measurement.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        match self {
            JobSpec::CpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let model = model
                    .clone()
                    .unwrap_or_else(|| CpuModel::for_system(&system.cpu, system.cpu_jitter));
                let _ = write!(
                    s,
                    "exec=cpu-sim\nsystem={system:?}\nmodel={:016x}\n",
                    model.config_digest()
                );
                Self::push_tail(&mut s, &format!("{kernel:?}"), params, *protocol);
            }
            JobSpec::GpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let model = model
                    .clone()
                    .unwrap_or_else(|| GpuModel::for_spec(&system.gpu));
                let _ = write!(
                    s,
                    "exec=gpu-sim\nsystem={system:?}\nmodel={:016x}\n",
                    model.config_digest()
                );
                Self::push_tail(&mut s, &format!("{kernel:?}"), params, *protocol);
            }
            JobSpec::RealOmp {
                host,
                kernel,
                params,
                protocol,
            } => {
                let _ = write!(s, "exec=real-omp\nhost={host}\n");
                Self::push_tail(&mut s, &format!("{kernel:?}"), params, *protocol);
            }
        }
        s
    }

    fn push_tail(s: &mut String, kernel: &str, params: &ExecParams, protocol: Protocol) {
        let _ = write!(
            s,
            "kernel={kernel}\nparams={params:?}\nprotocol={protocol:?}\n"
        );
    }

    /// Executes the job. Simulator jobs get `seed` as their jitter
    /// seed, so a job's outcome depends only on its own identity —
    /// never on which worker ran it or what ran before it — which is
    /// what makes N-worker output byte-identical to 1-worker output.
    ///
    /// # Errors
    ///
    /// Propagates executor/protocol errors.
    pub fn execute(&self, seed: u64) -> Result<Measurement> {
        match self {
            JobSpec::CpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let mut exec = match model {
                    Some(m) => CpuSimExecutor::with_model(system, m.clone()),
                    None => CpuSimExecutor::new(system),
                }
                .with_jitter_seed(seed);
                protocol.measure(&mut exec, kernel, params)
            }
            JobSpec::GpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let mut exec = match model {
                    Some(m) => GpuSimExecutor::with_model(system, m.clone()),
                    None => GpuSimExecutor::new(system),
                }
                .with_jitter_seed(seed);
                protocol.measure(&mut exec, kernel, params)
            }
            JobSpec::RealOmp {
                kernel,
                params,
                protocol,
                ..
            } => {
                let mut exec = OmpExecutor::new();
                protocol.measure(&mut exec, kernel, params)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, SYSTEM3};

    fn point() -> (ExecParams, Protocol) {
        (ExecParams::new(4).with_loops(50, 4), Protocol::SIM)
    }

    #[test]
    fn canonical_covers_kernel_params_and_protocol() {
        let (p, proto) = point();
        let a = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto);
        let b = JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_atomic_update_scalar(DType::I32),
            p,
            proto,
        );
        let c = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p.with_loops(51, 4), proto);
        let d = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, Protocol::PAPER);
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), c.canonical());
        assert_ne!(a.canonical(), d.canonical());
        assert_eq!(
            a.canonical(),
            JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto).canonical()
        );
    }

    #[test]
    fn model_override_changes_canonical() {
        let (p, proto) = point();
        let base = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto);
        let mut m = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
        m.line_transfer_ns *= 2.0;
        let tweaked = JobSpec::cpu_sim_with_model(&SYSTEM3, m, kernel::omp_barrier(), p, proto);
        assert_ne!(base.canonical(), tweaked.canonical());
    }

    #[test]
    fn execute_is_seed_deterministic() {
        let (p, proto) = point();
        let job = JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_atomic_update_scalar(DType::I32),
            p,
            proto,
        );
        let a = job.execute(7).unwrap();
        let b = job.execute(7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gpu_job_executes() {
        let job = JobSpec::gpu_sim(
            &SYSTEM3,
            kernel::cuda_syncthreads(),
            ExecParams::new(32).with_blocks(2).with_loops(50, 4),
            Protocol::SIM,
        );
        assert_eq!(job.kernel_name(), "cuda_syncthreads");
        let m = job.execute(1).unwrap();
        assert_eq!(m.kernel_name, "cuda_syncthreads");
    }

    #[test]
    fn real_job_hash_is_host_scoped() {
        let (p, proto) = point();
        let job = JobSpec::real_omp(kernel::omp_barrier(), p, proto);
        assert!(job.canonical().contains(&host_fingerprint()));
    }
}
