//! Job descriptions: one independent measurement per sweep point.
//!
//! A [`JobSpec`] captures everything that determines a measurement's
//! outcome — the executor kind, the simulated system, an optional
//! model override, the kernel (name *and* op bodies), the execution
//! parameters, and the protocol — so its canonical form can serve as a
//! content-addressed cache key. Anything not captured here must be
//! folded into the scheduler's version salt instead.

use std::fmt::Write as _;

use syncperf_core::{CpuKernel, ExecParams, GpuKernel, Measurement, Protocol, Result, SystemSpec};
use syncperf_cpu_sim::{CpuModel, CpuSimExecutor, EngineResult, Placement};
use syncperf_gpu_sim::{GpuEngineResult, GpuModel, GpuSimExecutor, Occupancy};
use syncperf_omp::OmpExecutor;

/// One independent measurement job: kernel × parameters × protocol on
/// a concrete executor configuration.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A measurement on the CPU simulator.
    CpuSim {
        /// The simulated system.
        system: SystemSpec,
        /// Latency-model override (`None` = the system's calibrated
        /// model).
        model: Option<CpuModel>,
        /// The kernel to measure.
        kernel: CpuKernel,
        /// The parameter point.
        params: ExecParams,
        /// The measurement protocol.
        protocol: Protocol,
    },
    /// A measurement on the GPU simulator.
    GpuSim {
        /// The simulated system.
        system: SystemSpec,
        /// Latency-model override (`None` = the system's calibrated
        /// model).
        model: Option<GpuModel>,
        /// The kernel to measure.
        kernel: GpuKernel,
        /// The parameter point.
        params: ExecParams,
        /// The measurement protocol.
        protocol: Protocol,
    },
    /// A measurement on this machine's real threads. Results are only
    /// meaningful on the host that produced them, so the host identity
    /// is part of the job's content hash.
    RealOmp {
        /// Hostname × hardware-parallelism fingerprint.
        host: String,
        /// The kernel to measure.
        kernel: CpuKernel,
        /// The parameter point.
        params: ExecParams,
        /// The measurement protocol.
        protocol: Protocol,
    },
}

/// The host fingerprint used for [`JobSpec::RealOmp`] hashing: results
/// from one machine must never be served as another machine's.
#[must_use]
pub fn host_fingerprint() -> String {
    let host = std::env::var("HOSTNAME").unwrap_or_else(|_| "localhost".into());
    let par = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    format!("{host}/{par}")
}

impl JobSpec {
    /// A CPU-simulator job with the system's calibrated model.
    #[must_use]
    pub fn cpu_sim(
        system: &SystemSpec,
        kernel: CpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::CpuSim {
            system: system.clone(),
            model: None,
            kernel,
            params,
            protocol,
        }
    }

    /// A CPU-simulator job with an explicit latency model (used by the
    /// sensitivity sweep's perturbed models).
    #[must_use]
    pub fn cpu_sim_with_model(
        system: &SystemSpec,
        model: CpuModel,
        kernel: CpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::CpuSim {
            system: system.clone(),
            model: Some(model),
            kernel,
            params,
            protocol,
        }
    }

    /// A GPU-simulator job with the system's calibrated model.
    #[must_use]
    pub fn gpu_sim(
        system: &SystemSpec,
        kernel: GpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::GpuSim {
            system: system.clone(),
            model: None,
            kernel,
            params,
            protocol,
        }
    }

    /// A GPU-simulator job with an explicit latency model.
    #[must_use]
    pub fn gpu_sim_with_model(
        system: &SystemSpec,
        model: GpuModel,
        kernel: GpuKernel,
        params: ExecParams,
        protocol: Protocol,
    ) -> Self {
        JobSpec::GpuSim {
            system: system.clone(),
            model: Some(model),
            kernel,
            params,
            protocol,
        }
    }

    /// A real-thread job on this host.
    #[must_use]
    pub fn real_omp(kernel: CpuKernel, params: ExecParams, protocol: Protocol) -> Self {
        JobSpec::RealOmp {
            host: host_fingerprint(),
            kernel,
            params,
            protocol,
        }
    }

    /// The measured kernel's name (stored in cache entries and checked
    /// against them on load).
    #[must_use]
    pub fn kernel_name(&self) -> &str {
        match self {
            JobSpec::CpuSim { kernel, .. } | JobSpec::RealOmp { kernel, .. } => &kernel.name,
            JobSpec::GpuSim { kernel, .. } => &kernel.name,
        }
    }

    /// The parameter point this job measures at.
    #[must_use]
    pub fn params(&self) -> &ExecParams {
        match self {
            JobSpec::CpuSim { params, .. }
            | JobSpec::GpuSim { params, .. }
            | JobSpec::RealOmp { params, .. } => params,
        }
    }

    /// The canonical string the content hash is computed over. Covers
    /// the executor kind, system spec, effective latency-model digest,
    /// full kernel (name, op bodies, extra-op count), parameters, and
    /// protocol — everything that determines the measurement.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        match self {
            JobSpec::CpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let model = model
                    .clone()
                    .unwrap_or_else(|| CpuModel::for_system(&system.cpu, system.cpu_jitter));
                let _ = write!(
                    s,
                    "exec=cpu-sim\nsystem={system:?}\nmodel={:016x}\n",
                    model.config_digest()
                );
                Self::push_tail(&mut s, &format!("{kernel:?}"), params, *protocol);
            }
            JobSpec::GpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let model = model
                    .clone()
                    .unwrap_or_else(|| GpuModel::for_spec(&system.gpu));
                let _ = write!(
                    s,
                    "exec=gpu-sim\nsystem={system:?}\nmodel={:016x}\n",
                    model.config_digest()
                );
                Self::push_tail(&mut s, &format!("{kernel:?}"), params, *protocol);
            }
            JobSpec::RealOmp {
                host,
                kernel,
                params,
                protocol,
            } => {
                let _ = write!(s, "exec=real-omp\nhost={host}\n");
                Self::push_tail(&mut s, &format!("{kernel:?}"), params, *protocol);
            }
        }
        s
    }

    fn push_tail(s: &mut String, kernel: &str, params: &ExecParams, protocol: Protocol) {
        let _ = write!(
            s,
            "kernel={kernel}\nparams={params:?}\nprotocol={protocol:?}\n"
        );
    }

    /// [`JobSpec::canonical`] through a [`CanonicalCache`]: byte-identical
    /// output, but the expensive system/model prefix and kernel debug
    /// strings are memoized across calls. A sweep hashes thousands of
    /// jobs that share a handful of systems and kernels, so this turns
    /// the dominant hashing cost into a few lookups per job.
    #[must_use]
    pub fn canonical_with(&self, cache: &mut CanonicalCache) -> String {
        match self {
            JobSpec::CpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let pi = cache.cpu_prefix_idx(system, model.as_ref());
                let ki = cache.cpu_kernel_idx(kernel);
                let prefix = &cache.cpu_prefixes[pi].2;
                let mut s =
                    String::with_capacity(prefix.len() + cache.cpu_kernels[ki].1.len() + 128);
                s.push_str(prefix);
                Self::push_tail(&mut s, &cache.cpu_kernels[ki].1, params, *protocol);
                s
            }
            JobSpec::GpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let pi = cache.gpu_prefix_idx(system, model.as_ref());
                let ki = cache.gpu_kernel_idx(kernel);
                let prefix = &cache.gpu_prefixes[pi].2;
                let mut s =
                    String::with_capacity(prefix.len() + cache.gpu_kernels[ki].1.len() + 128);
                s.push_str(prefix);
                Self::push_tail(&mut s, &cache.gpu_kernels[ki].1, params, *protocol);
                s
            }
            JobSpec::RealOmp { .. } => self.canonical(),
        }
    }

    /// The FNV-1a hash of `canonical() + salt_line` without building
    /// the canonical string: the hash *state* over the shared
    /// prefix-plus-kernel head is memoized in `cache` (FNV-1a is a
    /// byte-sequential fold, so a cached state continues exactly —
    /// see [`crate::hash::fnv1a_continue`]), and only the job's short
    /// `params`/`protocol` tail plus `salt_line` is hashed per call.
    /// Bit-identical to hashing the full canonical text. `RealOmp`
    /// jobs take the plain path — real-machine sweeps are a handful of
    /// jobs, not thousands.
    #[must_use]
    pub fn hash_with(&self, cache: &mut CanonicalCache, salt_line: &str) -> u64 {
        let (state, params, protocol) = match self {
            JobSpec::CpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let pi = cache.cpu_prefix_idx(system, model.as_ref());
                let ki = cache.cpu_kernel_idx(kernel);
                (cache.cpu_hash_state(pi, ki), params, *protocol)
            }
            JobSpec::GpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let pi = cache.gpu_prefix_idx(system, model.as_ref());
                let ki = cache.gpu_kernel_idx(kernel);
                (cache.gpu_hash_state(pi, ki), params, *protocol)
            }
            JobSpec::RealOmp { .. } => {
                let mut s = self.canonical();
                s.push_str(salt_line);
                return crate::hash::fnv1a(s.as_bytes());
            }
        };
        let mut tail = std::mem::take(&mut cache.scratch);
        tail.clear();
        let _ = write!(
            tail,
            "params={params:?}\nprotocol={protocol:?}\n{salt_line}"
        );
        let h = crate::hash::fnv1a_continue(state, tail.as_bytes());
        cache.scratch = tail;
        h
    }

    /// Whether `self` and `other` are the same *measurement shape*:
    /// identical executor kind, system, model override, kernel, and
    /// protocol, with equal timed-rep counts — differing at most in the
    /// parameter point (threads, blocks, affinity). Same-shape jobs can
    /// be evaluated together by one batched struct-of-arrays pass.
    #[must_use]
    pub fn same_shape(&self, other: &JobSpec) -> bool {
        match (self, other) {
            (
                JobSpec::CpuSim {
                    system: s1,
                    model: m1,
                    kernel: k1,
                    params: p1,
                    protocol: pr1,
                },
                JobSpec::CpuSim {
                    system: s2,
                    model: m2,
                    kernel: k2,
                    params: p2,
                    protocol: pr2,
                },
            ) => {
                pr1 == pr2 && p1.timed_reps() == p2.timed_reps() && k1 == k2 && m1 == m2 && s1 == s2
            }
            (
                JobSpec::GpuSim {
                    system: s1,
                    model: m1,
                    kernel: k1,
                    params: p1,
                    protocol: pr1,
                },
                JobSpec::GpuSim {
                    system: s2,
                    model: m2,
                    kernel: k2,
                    params: p2,
                    protocol: pr2,
                },
            ) => {
                pr1 == pr2 && p1.timed_reps() == p2.timed_reps() && k1 == k2 && m1 == m2 && s1 == s2
            }
            _ => false,
        }
    }

    /// Evaluates a same-shape group of jobs in one batched
    /// struct-of-arrays pass per kernel body, returning one
    /// [`PrimedEngine`] per job (in group order). Returns `None` —
    /// priming nothing, so the per-job path runs unchanged and
    /// reproduces any per-point error — when the group is not
    /// batchable: mixed or real-thread executors, a point failing
    /// validation, or an unsupported op at any occupancy.
    #[must_use]
    pub fn batch_prime(group: &[&JobSpec]) -> Option<Vec<PrimedEngine>> {
        match group.first()? {
            JobSpec::CpuSim {
                system,
                model,
                kernel,
                params: first_params,
                ..
            } => {
                let reps = first_params.timed_reps();
                let mut placements = Vec::with_capacity(group.len());
                for job in group {
                    let JobSpec::CpuSim { params, .. } = job else {
                        return None;
                    };
                    if params.validate().is_err() || params.blocks != 1 {
                        return None;
                    }
                    placements.push(Placement::new(&system.cpu, params.affinity, params.threads));
                }
                let model = model
                    .clone()
                    .unwrap_or_else(|| CpuModel::for_system(&system.cpu, system.cpu_jitter));
                let rec = syncperf_core::obs::global();
                let baseline = syncperf_cpu_sim::trace::run_batch_observed(
                    &model,
                    &kernel.baseline,
                    &placements,
                    reps,
                    rec,
                )
                .ok()?;
                let test = syncperf_cpu_sim::trace::run_batch_observed(
                    &model,
                    &kernel.test,
                    &placements,
                    reps,
                    rec,
                )
                .ok()?;
                Some(
                    baseline
                        .into_iter()
                        .zip(test)
                        .map(|(baseline, test)| PrimedEngine::Cpu { baseline, test })
                        .collect(),
                )
            }
            JobSpec::GpuSim {
                system,
                model,
                kernel,
                params: first_params,
                ..
            } => {
                let reps = first_params.timed_reps();
                let mut occs = Vec::with_capacity(group.len());
                for job in group {
                    let JobSpec::GpuSim { params, .. } = job else {
                        return None;
                    };
                    if params.validate().is_err() {
                        return None;
                    }
                    occs.push(Occupancy::compute(&system.gpu, params.blocks, params.threads).ok()?);
                }
                let model = model
                    .clone()
                    .unwrap_or_else(|| GpuModel::for_spec(&system.gpu));
                let baseline =
                    syncperf_gpu_sim::batch::run_batch(&model, &occs, &kernel.baseline, reps)
                        .ok()?;
                let test =
                    syncperf_gpu_sim::batch::run_batch(&model, &occs, &kernel.test, reps).ok()?;
                Some(
                    baseline
                        .into_iter()
                        .zip(test)
                        .map(|(baseline, test)| PrimedEngine::Gpu { baseline, test })
                        .collect(),
                )
            }
            JobSpec::RealOmp { .. } => None,
        }
    }

    /// [`JobSpec::execute`] with batch-precomputed engine results: the
    /// executor is constructed exactly as in `execute` and its engine
    /// memo is primed with the kernel's two bodies before the protocol
    /// runs, so every execution hits the memo instead of re-simulating.
    /// Byte-identical to `execute(seed)` — the memo is result-invisible
    /// (jitter is drawn after the memoized run) and the engine results
    /// are seed-independent, so retries with different seeds may reuse
    /// the same primed results. Falls back to `execute` on a
    /// kind-mismatched priming.
    ///
    /// # Errors
    ///
    /// Propagates executor/protocol errors.
    pub fn execute_primed(&self, seed: u64, primed: &PrimedEngine) -> Result<Measurement> {
        match (self, primed) {
            (
                JobSpec::CpuSim {
                    system,
                    model,
                    kernel,
                    params,
                    protocol,
                },
                PrimedEngine::Cpu { baseline, test },
            ) => {
                let mut exec = match model {
                    Some(m) => CpuSimExecutor::with_model(system, m.clone()),
                    None => CpuSimExecutor::new(system),
                }
                .with_jitter_seed(seed);
                exec.prime_engine(&kernel.baseline, params, baseline.clone());
                exec.prime_engine(&kernel.test, params, test.clone());
                protocol.measure(&mut exec, kernel, params)
            }
            (
                JobSpec::GpuSim {
                    system,
                    model,
                    kernel,
                    params,
                    protocol,
                },
                PrimedEngine::Gpu { baseline, test },
            ) => {
                let mut exec = match model {
                    Some(m) => GpuSimExecutor::with_model(system, m.clone()),
                    None => GpuSimExecutor::new(system),
                }
                .with_jitter_seed(seed);
                exec.prime_engine(&kernel.baseline, params, baseline.clone());
                exec.prime_engine(&kernel.test, params, test.clone());
                protocol.measure(&mut exec, kernel, params)
            }
            _ => self.execute(seed),
        }
    }

    /// Executes the job. Simulator jobs get `seed` as their jitter
    /// seed, so a job's outcome depends only on its own identity —
    /// never on which worker ran it or what ran before it — which is
    /// what makes N-worker output byte-identical to 1-worker output.
    ///
    /// # Errors
    ///
    /// Propagates executor/protocol errors.
    pub fn execute(&self, seed: u64) -> Result<Measurement> {
        match self {
            JobSpec::CpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let mut exec = match model {
                    Some(m) => CpuSimExecutor::with_model(system, m.clone()),
                    None => CpuSimExecutor::new(system),
                }
                .with_jitter_seed(seed);
                protocol.measure(&mut exec, kernel, params)
            }
            JobSpec::GpuSim {
                system,
                model,
                kernel,
                params,
                protocol,
            } => {
                let mut exec = match model {
                    Some(m) => GpuSimExecutor::with_model(system, m.clone()),
                    None => GpuSimExecutor::new(system),
                }
                .with_jitter_seed(seed);
                protocol.measure(&mut exec, kernel, params)
            }
            JobSpec::RealOmp {
                kernel,
                params,
                protocol,
                ..
            } => {
                let mut exec = OmpExecutor::new();
                protocol.measure(&mut exec, kernel, params)
            }
        }
    }
}

/// Batch-precomputed engine results for one job: the kernel's baseline
/// and test bodies evaluated at the job's parameter point by the
/// struct-of-arrays batch pass ([`JobSpec::batch_prime`]).
#[derive(Debug, Clone)]
pub enum PrimedEngine {
    /// CPU-simulator engine results.
    Cpu {
        /// Engine result for the kernel's baseline body.
        baseline: EngineResult,
        /// Engine result for the kernel's test body.
        test: EngineResult,
    },
    /// GPU-simulator engine results.
    Gpu {
        /// Engine result for the kernel's baseline body.
        baseline: GpuEngineResult,
        /// Engine result for the kernel's test body.
        test: GpuEngineResult,
    },
}

/// Memoizes the expensive repeated parts of [`JobSpec::canonical`]:
/// the executor/system/model prefix (a full `Debug` render of the
/// system spec plus a model digest) and the kernel debug string, both
/// looked up by value equality. Entries are never evicted — a sweep
/// touches a handful of systems and under a hundred kernels.
#[derive(Debug, Default)]
pub struct CanonicalCache {
    cpu_prefixes: Vec<(SystemSpec, Option<CpuModel>, String)>,
    gpu_prefixes: Vec<(SystemSpec, Option<GpuModel>, String)>,
    cpu_kernels: Vec<(CpuKernel, String)>,
    gpu_kernels: Vec<(GpuKernel, String)>,
    /// FNV-1a state over `prefix + "kernel={kernel}\n"`, keyed by
    /// `(prefix idx, kernel idx)` — [`JobSpec::hash_with`] continues it
    /// over each job's short params/protocol/salt tail.
    cpu_states: Vec<((usize, usize), u64)>,
    gpu_states: Vec<((usize, usize), u64)>,
    /// Reused tail buffer so per-job hashing allocates nothing.
    scratch: String,
}

impl CanonicalCache {
    fn cpu_prefix_idx(&mut self, system: &SystemSpec, model: Option<&CpuModel>) -> usize {
        if let Some(i) = self
            .cpu_prefixes
            .iter()
            .position(|(s, m, _)| s == system && m.as_ref() == model)
        {
            return i;
        }
        let effective = model
            .cloned()
            .unwrap_or_else(|| CpuModel::for_system(&system.cpu, system.cpu_jitter));
        let mut s = String::new();
        let _ = write!(
            s,
            "exec=cpu-sim\nsystem={system:?}\nmodel={:016x}\n",
            effective.config_digest()
        );
        self.cpu_prefixes.push((system.clone(), model.cloned(), s));
        self.cpu_prefixes.len() - 1
    }

    fn gpu_prefix_idx(&mut self, system: &SystemSpec, model: Option<&GpuModel>) -> usize {
        if let Some(i) = self
            .gpu_prefixes
            .iter()
            .position(|(s, m, _)| s == system && m.as_ref() == model)
        {
            return i;
        }
        let effective = model
            .cloned()
            .unwrap_or_else(|| GpuModel::for_spec(&system.gpu));
        let mut s = String::new();
        let _ = write!(
            s,
            "exec=gpu-sim\nsystem={system:?}\nmodel={:016x}\n",
            effective.config_digest()
        );
        self.gpu_prefixes.push((system.clone(), model.cloned(), s));
        self.gpu_prefixes.len() - 1
    }

    fn cpu_kernel_idx(&mut self, kernel: &CpuKernel) -> usize {
        if let Some(i) = self.cpu_kernels.iter().position(|(k, _)| k == kernel) {
            return i;
        }
        self.cpu_kernels
            .push((kernel.clone(), format!("{kernel:?}")));
        self.cpu_kernels.len() - 1
    }

    fn gpu_kernel_idx(&mut self, kernel: &GpuKernel) -> usize {
        if let Some(i) = self.gpu_kernels.iter().position(|(k, _)| k == kernel) {
            return i;
        }
        self.gpu_kernels
            .push((kernel.clone(), format!("{kernel:?}")));
        self.gpu_kernels.len() - 1
    }

    fn cpu_hash_state(&mut self, pi: usize, ki: usize) -> u64 {
        if let Some(&(_, st)) = self.cpu_states.iter().find(|&&(key, _)| key == (pi, ki)) {
            return st;
        }
        let mut head = self.cpu_prefixes[pi].2.clone();
        let _ = writeln!(head, "kernel={}", self.cpu_kernels[ki].1);
        let st = crate::hash::fnv1a(head.as_bytes());
        self.cpu_states.push(((pi, ki), st));
        st
    }

    fn gpu_hash_state(&mut self, pi: usize, ki: usize) -> u64 {
        if let Some(&(_, st)) = self.gpu_states.iter().find(|&&(key, _)| key == (pi, ki)) {
            return st;
        }
        let mut head = self.gpu_prefixes[pi].2.clone();
        let _ = writeln!(head, "kernel={}", self.gpu_kernels[ki].1);
        let st = crate::hash::fnv1a(head.as_bytes());
        self.gpu_states.push(((pi, ki), st));
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, SYSTEM3};

    fn point() -> (ExecParams, Protocol) {
        (ExecParams::new(4).with_loops(50, 4), Protocol::SIM)
    }

    #[test]
    fn canonical_covers_kernel_params_and_protocol() {
        let (p, proto) = point();
        let a = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto);
        let b = JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_atomic_update_scalar(DType::I32),
            p,
            proto,
        );
        let c = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p.with_loops(51, 4), proto);
        let d = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, Protocol::PAPER);
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), c.canonical());
        assert_ne!(a.canonical(), d.canonical());
        assert_eq!(
            a.canonical(),
            JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto).canonical()
        );
    }

    #[test]
    fn model_override_changes_canonical() {
        let (p, proto) = point();
        let base = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto);
        let mut m = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
        m.line_transfer_ns *= 2.0;
        let tweaked = JobSpec::cpu_sim_with_model(&SYSTEM3, m, kernel::omp_barrier(), p, proto);
        assert_ne!(base.canonical(), tweaked.canonical());
    }

    #[test]
    fn execute_is_seed_deterministic() {
        let (p, proto) = point();
        let job = JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_atomic_update_scalar(DType::I32),
            p,
            proto,
        );
        let a = job.execute(7).unwrap();
        let b = job.execute(7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gpu_job_executes() {
        let job = JobSpec::gpu_sim(
            &SYSTEM3,
            kernel::cuda_syncthreads(),
            ExecParams::new(32).with_blocks(2).with_loops(50, 4),
            Protocol::SIM,
        );
        assert_eq!(job.kernel_name(), "cuda_syncthreads");
        let m = job.execute(1).unwrap();
        assert_eq!(m.kernel_name, "cuda_syncthreads");
    }

    #[test]
    fn real_job_hash_is_host_scoped() {
        let (p, proto) = point();
        let job = JobSpec::real_omp(kernel::omp_barrier(), p, proto);
        assert!(job.canonical().contains(&host_fingerprint()));
    }

    #[test]
    fn cached_canonical_is_byte_identical() {
        let (p, proto) = point();
        let mut m = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
        m.line_transfer_ns *= 2.0;
        let jobs = vec![
            JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto),
            JobSpec::cpu_sim(
                &SYSTEM3,
                kernel::omp_barrier(),
                ExecParams { threads: 8, ..p },
                proto,
            ),
            JobSpec::cpu_sim_with_model(&SYSTEM3, m, kernel::omp_barrier(), p, proto),
            JobSpec::cpu_sim(
                &SYSTEM3,
                kernel::omp_atomic_update_scalar(DType::I32),
                p,
                Protocol::PAPER,
            ),
            JobSpec::gpu_sim(
                &SYSTEM3,
                kernel::cuda_syncthreads(),
                ExecParams::new(32).with_blocks(2).with_loops(50, 4),
                proto,
            ),
            JobSpec::real_omp(kernel::omp_barrier(), p, proto),
        ];
        let mut cache = CanonicalCache::default();
        for _ in 0..2 {
            for job in &jobs {
                assert_eq!(job.canonical(), job.canonical_with(&mut cache));
            }
        }
    }

    #[test]
    fn same_shape_groups_parameter_points_only() {
        let (p, proto) = point();
        let a = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto);
        let b = JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_barrier(),
            ExecParams { threads: 16, ..p },
            proto,
        );
        let c = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p.with_loops(51, 4), proto);
        let d = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, Protocol::PAPER);
        let e = JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_atomic_update_scalar(DType::I32),
            p,
            proto,
        );
        assert!(a.same_shape(&b), "threads vary within a shape");
        assert!(!a.same_shape(&c), "timed reps are part of the shape");
        assert!(!a.same_shape(&d), "protocol is part of the shape");
        assert!(!a.same_shape(&e), "kernel is part of the shape");
        let g = JobSpec::gpu_sim(
            &SYSTEM3,
            kernel::cuda_syncthreads(),
            ExecParams::new(32).with_blocks(2).with_loops(50, 4),
            proto,
        );
        assert!(!a.same_shape(&g), "executor kind is part of the shape");
    }

    #[test]
    fn primed_execution_is_byte_identical_cpu() {
        let (p, proto) = point();
        let jobs: Vec<JobSpec> = [2u32, 4, 8, 16]
            .iter()
            .map(|&n| {
                JobSpec::cpu_sim(
                    &SYSTEM3,
                    kernel::omp_barrier(),
                    ExecParams { threads: n, ..p },
                    proto,
                )
            })
            .collect();
        let refs: Vec<&JobSpec> = jobs.iter().collect();
        let primed = JobSpec::batch_prime(&refs).expect("cpu group batches");
        assert_eq!(primed.len(), jobs.len());
        for (job, pe) in jobs.iter().zip(&primed) {
            for seed in [1u64, 99] {
                assert_eq!(
                    job.execute_primed(seed, pe).unwrap(),
                    job.execute(seed).unwrap()
                );
            }
        }
    }

    #[test]
    fn primed_execution_is_byte_identical_gpu() {
        let proto = Protocol::SIM;
        let jobs: Vec<JobSpec> = [(1u32, 32u32), (2, 64), (8, 128)]
            .iter()
            .map(|&(b, t)| {
                JobSpec::gpu_sim(
                    &SYSTEM3,
                    kernel::cuda_syncthreads(),
                    ExecParams::new(t).with_blocks(b).with_loops(50, 4),
                    proto,
                )
            })
            .collect();
        let refs: Vec<&JobSpec> = jobs.iter().collect();
        let primed = JobSpec::batch_prime(&refs).expect("gpu group batches");
        for (job, pe) in jobs.iter().zip(&primed) {
            assert_eq!(job.execute_primed(5, pe).unwrap(), job.execute(5).unwrap());
        }
    }

    #[test]
    fn unbatchable_groups_prime_nothing() {
        let (p, proto) = point();
        let real = JobSpec::real_omp(kernel::omp_barrier(), p, proto);
        assert!(JobSpec::batch_prime(&[&real]).is_none());
        // A CPU job with blocks != 1 fails executor validation; the
        // group declines to prime so the per-job path reproduces the
        // error.
        let bad = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p.with_blocks(2), proto);
        let ok = JobSpec::cpu_sim(&SYSTEM3, kernel::omp_barrier(), p, proto);
        assert!(JobSpec::batch_prime(&[&ok, &bad]).is_none());
    }
}
