//! Stable content hashing for job identities.
//!
//! Cache keys must be identical across processes, platforms, and
//! worker counts, so the hash is a fixed algorithm over a canonical
//! string rather than `std::hash` (whose output is unspecified and
//! randomized for `HashMap` keys). FNV-1a over 64 bits is plenty for
//! the few thousand distinct jobs a full figure run produces.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash from a previous state: because FNV-1a
/// folds in one byte at a time, `fnv1a_continue(fnv1a(a), b)` equals
/// `fnv1a(a ++ b)` exactly. Callers can therefore memoize the hash
/// state of a long shared prefix and hash only each item's short tail.
#[must_use]
pub fn fnv1a_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Renders a hash as the 16-digit lowercase hex used for cache file
/// names.
#[must_use]
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

/// Parses a [`hex16`] string back to the hash value.
#[must_use]
pub fn parse_hex16(s: &str) -> Option<u64> {
    if s.len() == 16 {
        u64::from_str_radix(s, 16).ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_roundtrip() {
        let h = fnv1a(b"syncperf");
        assert_eq!(parse_hex16(&hex16(h)), Some(h));
        assert_eq!(hex16(h).len(), 16);
        assert_eq!(parse_hex16("nope"), None);
        assert_eq!(parse_hex16("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a(b"job-a"), fnv1a(b"job-b"));
    }

    #[test]
    fn continuation_equals_one_shot() {
        let full = b"exec=cpu-sim\nkernel=x\nparams=y\nsalt=z\n";
        for split in 0..=full.len() {
            let (head, tail) = full.split_at(split);
            assert_eq!(fnv1a_continue(fnv1a(head), tail), fnv1a(full));
        }
    }
}
