//! # syncperf-sched
//!
//! Work-stealing sweep scheduler with a content-addressed result
//! cache and checkpoint/resume for the syncperf measurement harness.
//!
//! Three layers, bottom up:
//!
//! 1. **Job graph** ([`job`]): every sweep point (kernel × dtype ×
//!    thread/block count × affinity) is an independent [`JobSpec`]
//!    whose canonical form — executor kind, system, latency-model
//!    digest, full kernel body, parameters, protocol — is hashed with
//!    FNV-1a ([`hash`]) into a stable content hash.
//! 2. **Work-stealing pool** ([`pool`]): per-worker deques plus an
//!    index-ordered result merge, built on `std::thread` only. Jobs
//!    seed their simulator's jitter RNG from their own content hash,
//!    so N-worker output is byte-identical to the 1-worker output.
//! 3. **Content-addressed cache** ([`cache`]) and **checkpoint
//!    manifests** ([`checkpoint`]): `results/.cache/<hash>.json`
//!    entries with bytes deterministic per hash, loaded
//!    corruption-tolerantly (a bad or torn entry is a miss, never a
//!    crash), plus per-run-label manifests enabling `--resume`.
//!
//! The [`scheduler`] module ties them together and exposes the
//! process-global [`install`]/[`current`] registry the bench sweep
//! helpers branch on; without an installed scheduler every measurement
//! takes the serial legacy path, unchanged.
//!
//! The measurement protocol itself (Section IV of the paper: 9 runs ×
//! 7 attempts, median-of-medians differential timing) is untouched —
//! the scheduler only decides *which* jobs run, *where*, and *whether
//! a cached result already answers them*.

pub mod cache;
pub mod checkpoint;
pub mod hash;
pub mod job;
pub mod pool;
pub mod scheduler;

pub use cache::{decode_measurement, encode_measurement, Cache, EntryInfo};
pub use checkpoint::Checkpoint;
pub use job::{host_fingerprint, JobSpec};
pub use pool::{run_indexed, PoolOutcome, PoolWorkerStats};
pub use scheduler::{
    current, execute_job_with_retry, install, job_hash_with_salt, uninstall, BackendExec,
    ExecBackend, ExportHook, SchedConfig, SchedStats, Scheduler, StoreHook, MAX_EXECUTE_ATTEMPTS,
    SCHED_SALT,
};
