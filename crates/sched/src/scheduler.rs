//! The scheduler proper: lowers a batch of [`JobSpec`]s onto the
//! work-stealing pool, consulting the content-addressed cache and the
//! checkpoint manifest first, and retrying faulty measurements with
//! backoff.
//!
//! A process-global scheduler can be installed with [`install`]; the
//! bench sweep helpers branch on [`current`], so the serial legacy
//! path (no scheduler) stays byte-for-byte what it always was, while
//! any binary that installs a scheduler gets caching and parallelism
//! for every measurement it triggers.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use syncperf_core::obs::{self, Histogram, Snapshot};
use syncperf_core::{Measurement, Result, SyncPerfError};

use crate::cache::Cache;
use crate::checkpoint::Checkpoint;
use crate::hash::fnv1a;
use crate::job::{CanonicalCache, JobSpec, PrimedEngine};
use crate::pool::{self, PoolWorkerStats};

/// Code-version salt folded into every job hash. Bump whenever a
/// change alters measurement semantics without changing any job field
/// (e.g. a simulator engine fix): every cached result is then invalid
/// at once.
pub const SCHED_SALT: &str = "syncperf-sched-v2";

/// Attempt budget per job: the initial execution plus up to two
/// reattempts (for transient errors or runs that exhausted the
/// protocol's own attempt budget), with exponential backoff between.
pub const MAX_EXECUTE_ATTEMPTS: u32 = 3;

/// The content hash of `job` under the scheduler's hashing scheme:
/// FNV-1a over the canonical form plus [`SCHED_SALT`] and
/// `salt_extra`. Exposed as a free function so distributed workers can
/// re-key a job received over the wire and verify it against the
/// coordinator's hash before executing it.
#[must_use]
pub fn job_hash_with_salt(job: &JobSpec, salt_extra: u64) -> u64 {
    let mut s = job.canonical();
    s.push_str(&format!("salt={SCHED_SALT}/{salt_extra}\n"));
    fnv1a(s.as_bytes())
}

/// [`job_hash_with_salt`] with a [`CanonicalCache`] memoizing the
/// expensive kernel/system formatting — and the FNV-1a hash state of
/// that shared head — across the jobs of one batch. Produces the same
/// hash bit for bit ([`JobSpec::hash_with`]): only each job's short
/// params/protocol/salt tail is formatted and hashed per call.
#[must_use]
pub fn job_hash_with_salt_cached(
    job: &JobSpec,
    salt_extra: u64,
    cache: &mut CanonicalCache,
) -> u64 {
    job.hash_with(cache, &format!("salt={SCHED_SALT}/{salt_extra}\n"))
}

/// Executes one job under the scheduler's retry policy: up to
/// [`MAX_EXECUTE_ATTEMPTS`] attempts with exponential backoff, retrying
/// when the result looks faulty (exhausted protocol runs) or the error
/// is transient. Attempt `k` perturbs the jitter seed as
/// `hash ^ k · 0x9E37_79B9_7F4A_7C15`, so the outcome depends only on
/// (hash, attempt) — never on which process or worker ran it — which is
/// what lets a distributed worker reproduce the coordinator's results
/// bit for bit. `on_retry` is called with the failed attempt number
/// before each backoff sleep.
///
/// # Errors
///
/// Returns the final attempt's error when the budget is exhausted.
pub fn execute_job_with_retry(
    job: &JobSpec,
    hash: u64,
    on_retry: impl FnMut(u32),
) -> Result<Measurement> {
    execute_job_with_retry_primed(job, hash, None, on_retry)
}

/// [`execute_job_with_retry`] with an optional batch-primed engine
/// result pair. When `primed` is `Some`, every attempt reuses the
/// pre-evaluated engine results (they depend only on the job, never on
/// the seed), so retries stay bit-identical to the unprimed path.
///
/// # Errors
///
/// Returns the final attempt's error when the budget is exhausted.
pub fn execute_job_with_retry_primed(
    job: &JobSpec,
    hash: u64,
    primed: Option<&PrimedEngine>,
    mut on_retry: impl FnMut(u32),
) -> Result<Measurement> {
    let mut attempt = 0u32;
    loop {
        let seed = hash ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut reattempt = |a: u32| {
            on_retry(a);
            std::thread::sleep(std::time::Duration::from_millis(1 << a));
        };
        let run = match primed {
            Some(pe) => job.execute_primed(seed, pe),
            None => job.execute(seed),
        };
        match run {
            Ok(m) => {
                if m.exhausted_runs > 0 && attempt + 1 < MAX_EXECUTE_ATTEMPTS {
                    reattempt(attempt);
                    attempt += 1;
                    continue;
                }
                return Ok(m);
            }
            Err(e) => {
                let transient = matches!(
                    e,
                    SyncPerfError::MeasurementUnstable { .. } | SyncPerfError::Io(_)
                );
                if transient && attempt + 1 < MAX_EXECUTE_ATTEMPTS {
                    reattempt(attempt);
                    attempt += 1;
                    continue;
                }
                return Err(e);
            }
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Worker threads for the pool (1 = serial on the calling thread).
    pub workers: usize,
    /// Whether the on-disk result cache is consulted and filled.
    pub cache: bool,
    /// Cache directory (also holds checkpoint manifests).
    pub cache_dir: PathBuf,
    /// Whether to resume from the run label's checkpoint manifest.
    pub resume: bool,
    /// Run label for the checkpoint manifest (usually the binary
    /// name).
    pub label: String,
    /// Extra salt folded into every job hash on top of [`SCHED_SALT`]
    /// (test hook: bumping it must invalidate the whole cache).
    pub salt_extra: u64,
}

impl SchedConfig {
    /// A config with `workers` workers, caching on, under
    /// `<results>/.cache` — where `<results>` is `results/` or the
    /// `SYNCPERF_RESULTS` override, matching where the figure CSVs go.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let results = std::env::var_os("SYNCPERF_RESULTS")
            .map_or_else(|| PathBuf::from("results"), PathBuf::from);
        SchedConfig {
            workers: workers.max(1),
            cache: true,
            cache_dir: results.join(".cache"),
            resume: false,
            label: "run".to_string(),
            salt_extra: 0,
        }
    }

    /// Replaces the cache directory.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = dir.into();
        self
    }

    /// Disables the result cache (jobs always execute; nothing is
    /// stored).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache = false;
        self
    }

    /// Enables resuming from the label's checkpoint manifest.
    #[must_use]
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Replaces the run label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Replaces the extra hash salt.
    #[must_use]
    pub fn with_salt_extra(mut self, salt: u64) -> Self {
        self.salt_extra = salt;
        self
    }
}

/// Internal atomic tally cells (mirrored into `sched.*` obs counters).
#[derive(Debug, Default)]
struct StatCells {
    jobs: AtomicU64,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_stores: AtomicU64,
    steals: AtomicU64,
    retries: AtomicU64,
    resumed: AtomicU64,
    plan_batches: AtomicU64,
    plan_batch_points: AtomicU64,
    plan_primed_jobs: AtomicU64,
    plan_compile_us: AtomicU64,
}

/// Always-on scheduler profile: latency histograms, live queue depth,
/// and per-worker execution tallies — kept standalone (not behind the
/// global recorder) so a server that never installs a global recorder
/// still gets scheduler telemetry via [`Scheduler::export_into`].
#[derive(Debug)]
struct Profile {
    /// Miss wait time: batch submission → a worker picking the job up
    /// (microseconds).
    wait_us: Histogram,
    /// Hit service time: how long the cache load took (microseconds).
    service_hit_us: Histogram,
    /// Miss service time: how long the execution took (microseconds).
    service_miss_us: Histogram,
    /// Jobs currently dispatched to the pool and not yet finished.
    pending: AtomicU64,
    /// High-water mark of `pending`.
    pending_peak: AtomicU64,
    /// Per-worker tallies accumulated across batches (indexed by the
    /// pool's worker number; the serial path is worker 0).
    workers: Mutex<Vec<PoolWorkerStats>>,
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            wait_us: Histogram::standalone(),
            service_hit_us: Histogram::standalone(),
            service_miss_us: Histogram::standalone(),
            pending: AtomicU64::new(0),
            pending_peak: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        }
    }
}

/// A point-in-time view of a scheduler's counters — also recoverable
/// from any obs [`Snapshot`] via [`SchedStats::from_snapshot`], the
/// way `RetrySummary` mirrors the `protocol.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Jobs submitted (hits + misses when caching, else all executed).
    pub jobs: u64,
    /// Jobs actually executed (first attempts only).
    pub executed: u64,
    /// Jobs served from the cache.
    pub cache_hits: u64,
    /// Jobs that missed the cache (including corrupt entries).
    pub cache_misses: u64,
    /// Fresh results written to the cache.
    pub cache_stores: u64,
    /// Successful steals in the work-stealing pool.
    pub steals: u64,
    /// Reattempts after a transient error or an exhausted-run result.
    pub retries: u64,
    /// Cache hits whose hash was recorded by the resumed checkpoint.
    pub resumed: u64,
    /// Median miss wait (batch submission → pickup), microseconds.
    pub wait_us_p50: u64,
    /// p99 miss wait, microseconds.
    pub wait_us_p99: u64,
    /// Median cache-hit service time (cache load), microseconds.
    pub service_hit_us_p50: u64,
    /// p99 cache-hit service time, microseconds.
    pub service_hit_us_p99: u64,
    /// Median cache-miss service time (execution), microseconds.
    pub service_miss_us_p50: u64,
    /// p99 cache-miss service time, microseconds.
    pub service_miss_us_p99: u64,
    /// High-water mark of jobs pending in the pool at once.
    pub queue_depth_peak: u64,
    /// Same-shape parameter groups (≥ 2 jobs) detected in miss sets.
    pub plan_batches: u64,
    /// Jobs covered by those same-shape groups.
    pub plan_batch_points: u64,
    /// Jobs whose engine results were primed from a batched
    /// struct-of-arrays plan-table evaluation (0 while a global
    /// recorder is live: observed runs keep the interpreter path).
    pub plan_primed_jobs: u64,
    /// Time spent grouping the miss set and batch-evaluating plan
    /// tables, microseconds.
    pub plan_compile_us: u64,
}

impl SchedStats {
    /// Extracts the `sched.*` counters, histograms, and gauges from an
    /// obs snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let wait = snap.histogram("sched.wait_us");
        let hit = snap.histogram("sched.service_us.hit");
        let miss = snap.histogram("sched.service_us.miss");
        SchedStats {
            jobs: snap.counter("sched.jobs"),
            executed: snap.counter("sched.jobs_executed"),
            cache_hits: snap.counter("sched.cache_hits"),
            cache_misses: snap.counter("sched.cache_misses"),
            cache_stores: snap.counter("sched.cache_stores"),
            steals: snap.counter("sched.steals"),
            retries: snap.counter("sched.retries"),
            resumed: snap.counter("sched.resumed"),
            wait_us_p50: wait.quantile(0.50),
            wait_us_p99: wait.quantile(0.99),
            service_hit_us_p50: hit.quantile(0.50),
            service_hit_us_p99: hit.quantile(0.99),
            service_miss_us_p50: miss.quantile(0.50),
            service_miss_us_p99: miss.quantile(0.99),
            queue_depth_peak: snap.gauge("sched.queue_depth_peak"),
            plan_batches: snap.counter("sched.plan_batches"),
            plan_batch_points: snap.counter("sched.plan_batch_points"),
            plan_primed_jobs: snap.counter("sched.plan_primed_jobs"),
            plan_compile_us: snap.counter("sched.plan_compile_us"),
        }
    }

    /// Fraction of submitted jobs served from the cache (0 when no
    /// jobs ran).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64
        }
    }
}

/// Callback invoked after every successful cache store, with the job's
/// content hash and the stored measurement. The serving layer uses it
/// to update its in-memory index incrementally and to trigger cache
/// eviction; it runs on the worker thread that stored the entry.
pub type StoreHook = Box<dyn Fn(u64, &Measurement) + Send + Sync>;

/// One job's outcome as reported by an [`ExecBackend`].
#[derive(Debug)]
pub struct BackendExec {
    /// Submission index of the job within the batch handed to the
    /// backend (positions results for the deterministic merge).
    pub index: usize,
    /// The job's content hash under the scheduler's salt.
    pub hash: u64,
    /// The measurement, or the error after the backend's own retry
    /// budget was exhausted.
    pub result: Result<Measurement>,
    /// Whether the backend already persisted the entry into this
    /// scheduler's cache directory (e.g. a coordinator storing raw
    /// wire bytes); when set the scheduler skips its own store but
    /// still counts it and fires the store hook.
    pub stored: bool,
}

/// Alternative execution strategy for cache misses: given the batch's
/// missing jobs as `(submission index, job, hash)` triples, produce one
/// [`BackendExec`] per job (in any order). The distributed coordinator
/// installs itself here; without a backend, misses run on the in-process
/// work-stealing pool.
pub type ExecBackend = Box<dyn Fn(&[(usize, JobSpec, u64)]) -> Vec<BackendExec> + Send + Sync>;

/// Extra telemetry exporter appended to [`Scheduler::export_into`]:
/// lets a subsystem attached to the scheduler (like the distributed
/// coordinator's `dist.*` metrics) ride along every `/metrics` and
/// `--cache-stats` export without the host knowing about it.
pub type ExportHook = Box<dyn Fn(&mut Snapshot) + Send + Sync>;

/// The sweep scheduler: cache consultation, work-stealing execution,
/// deterministic index-ordered merge, checkpointing.
pub struct Scheduler {
    cfg: SchedConfig,
    cache: Option<Cache>,
    /// Hashes known to be present in the cache directory: seeded by
    /// one directory scan on first consultation, then kept current by
    /// this scheduler's own stores. Probing a cold cache costs a
    /// failed `open()` per job otherwise — real kernel time at sweep
    /// scale. Entries added by *other* processes mid-run are simply
    /// recomputed (a conservative miss is always correct).
    present: Mutex<Option<std::collections::HashSet<u64>>>,
    checkpoint: Mutex<Checkpoint>,
    resumed_hashes: std::collections::BTreeSet<u64>,
    stats: StatCells,
    profile: Profile,
    store_hook: RwLock<Option<StoreHook>>,
    backend: RwLock<Option<ExecBackend>>,
    export_hook: RwLock<Option<ExportHook>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cfg", &self.cfg)
            .field("cache", &self.cache)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Scheduler {
    /// Builds a scheduler from `cfg`, loading the checkpoint manifest
    /// when resuming.
    #[must_use]
    pub fn new(cfg: SchedConfig) -> Self {
        let cache = cfg.cache.then(|| Cache::new(&cfg.cache_dir));
        let checkpoint = if cfg.resume {
            Checkpoint::load(&cfg.cache_dir, &cfg.label)
        } else {
            Checkpoint::fresh(&cfg.cache_dir, &cfg.label)
        };
        // Remember what the manifest already contained so hits caused
        // by resume can be told apart from ordinary warm-cache hits.
        let resumed_hashes = checkpoint.hashes().collect();
        Scheduler {
            cfg,
            cache,
            present: Mutex::new(None),
            checkpoint: Mutex::new(checkpoint),
            resumed_hashes,
            stats: StatCells::default(),
            profile: Profile::default(),
            store_hook: RwLock::new(None),
            backend: RwLock::new(None),
            export_hook: RwLock::new(None),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Worker threads actually spawned per batch: the configured count
    /// clamped to the machine's available parallelism. Results are
    /// worker-count independent (each job seeds its own RNG from its
    /// content hash), so oversubscribing a small machine only buys
    /// thread-spawn and context-switch overhead — never throughput.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        let avail =
            std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZeroUsize::get);
        self.cfg.workers.min(avail).max(1)
    }

    /// The content-addressed cache, when caching is enabled (the
    /// serving layer iterates/evicts through this handle).
    #[must_use]
    pub fn cache(&self) -> Option<&Cache> {
        self.cache.as_ref()
    }

    /// Registers (or replaces) the post-store hook; see [`StoreHook`].
    pub fn set_store_hook(&self, hook: impl Fn(u64, &Measurement) + Send + Sync + 'static) {
        *self.store_hook.write().unwrap() = Some(Box::new(hook));
    }

    /// Registers (or replaces) the miss-execution backend; see
    /// [`ExecBackend`]. Pass-through telemetry (executed counts, retry
    /// counts, wait/service histograms) becomes the backend's job.
    pub fn set_exec_backend(
        &self,
        backend: impl Fn(&[(usize, JobSpec, u64)]) -> Vec<BackendExec> + Send + Sync + 'static,
    ) {
        *self.backend.write().unwrap() = Some(Box::new(backend));
    }

    /// Removes the miss-execution backend; misses run on the pool
    /// again.
    pub fn clear_exec_backend(&self) {
        *self.backend.write().unwrap() = None;
    }

    /// Registers (or replaces) the extra telemetry exporter; see
    /// [`ExportHook`].
    pub fn set_export_hook(&self, hook: impl Fn(&mut Snapshot) + Send + Sync + 'static) {
        *self.export_hook.write().unwrap() = Some(Box::new(hook));
    }

    /// The content hash of `job` under this scheduler's salt.
    #[must_use]
    pub fn job_hash(&self, job: &JobSpec) -> u64 {
        job_hash_with_salt(job, self.cfg.salt_extra)
    }

    /// A point-in-time view of the counters and latency quantiles.
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        let wait = self.profile.wait_us.snapshot();
        let hit = self.profile.service_hit_us.snapshot();
        let miss = self.profile.service_miss_us.snapshot();
        SchedStats {
            jobs: self.stats.jobs.load(Ordering::Relaxed),
            executed: self.stats.executed.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            cache_stores: self.stats.cache_stores.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            resumed: self.stats.resumed.load(Ordering::Relaxed),
            wait_us_p50: wait.quantile(0.50),
            wait_us_p99: wait.quantile(0.99),
            service_hit_us_p50: hit.quantile(0.50),
            service_hit_us_p99: hit.quantile(0.99),
            service_miss_us_p50: miss.quantile(0.50),
            service_miss_us_p99: miss.quantile(0.99),
            queue_depth_peak: self.profile.pending_peak.load(Ordering::Relaxed),
            plan_batches: self.stats.plan_batches.load(Ordering::Relaxed),
            plan_batch_points: self.stats.plan_batch_points.load(Ordering::Relaxed),
            plan_primed_jobs: self.stats.plan_primed_jobs.load(Ordering::Relaxed),
            plan_compile_us: self.stats.plan_compile_us.load(Ordering::Relaxed),
        }
    }

    /// Per-worker execution tallies accumulated across every batch
    /// this scheduler ran (index = pool worker number; the serial path
    /// accumulates onto worker 0).
    #[must_use]
    pub fn worker_stats(&self) -> Vec<PoolWorkerStats> {
        self.profile.workers.lock().unwrap().clone()
    }

    /// Injects this scheduler's live telemetry — `sched.*` counters,
    /// queue-depth gauges, wait/service histograms, and per-worker
    /// tallies — into `snap`, so a process that never installed a
    /// global recorder (like `syncperf-serve`) can still expose
    /// scheduler metrics.
    pub fn export_into(&self, snap: &mut Snapshot) {
        use syncperf_core::obs::GaugeMode;
        let st = self.stats();
        for (name, v) in [
            ("sched.jobs", st.jobs),
            ("sched.jobs_executed", st.executed),
            ("sched.cache_hits", st.cache_hits),
            ("sched.cache_misses", st.cache_misses),
            ("sched.cache_stores", st.cache_stores),
            ("sched.steals", st.steals),
            ("sched.retries", st.retries),
            ("sched.resumed", st.resumed),
            ("sched.plan_batches", st.plan_batches),
            ("sched.plan_batch_points", st.plan_batch_points),
            ("sched.plan_primed_jobs", st.plan_primed_jobs),
            ("sched.plan_compile_us", st.plan_compile_us),
        ] {
            snap.counters.insert(name.to_string(), v);
        }
        snap.gauges.insert(
            "sched.queue_depth".to_string(),
            self.profile.pending.load(Ordering::Relaxed),
        );
        snap.gauge_modes
            .insert("sched.queue_depth".to_string(), GaugeMode::Set);
        snap.gauges.insert(
            "sched.queue_depth_peak".to_string(),
            self.profile.pending_peak.load(Ordering::Relaxed),
        );
        snap.gauge_modes
            .insert("sched.queue_depth_peak".to_string(), GaugeMode::Max);
        snap.histograms
            .insert("sched.wait_us".to_string(), self.profile.wait_us.snapshot());
        snap.histograms.insert(
            "sched.service_us.hit".to_string(),
            self.profile.service_hit_us.snapshot(),
        );
        snap.histograms.insert(
            "sched.service_us.miss".to_string(),
            self.profile.service_miss_us.snapshot(),
        );
        for (w, p) in self.worker_stats().iter().enumerate() {
            snap.counters
                .insert(format!("sched.worker.{w}.executed"), p.executed);
            snap.counters
                .insert(format!("sched.worker.{w}.stolen"), p.stolen);
            snap.counters
                .insert(format!("sched.worker.{w}.busy_us"), p.busy_ns / 1_000);
        }
        if let Some(hook) = self.export_hook.read().unwrap().as_ref() {
            hook(snap);
        }
    }

    /// Whether `hash` is plausibly on disk, per the presence set (one
    /// directory scan on first use, plus every store this scheduler
    /// made since). A `false` is authoritative for entries this
    /// process owns; entries racing in from other processes read as
    /// absent and are recomputed, which is always correct.
    fn cache_may_contain(&self, cache: &Cache, hash: u64) -> bool {
        let mut present = self.present.lock().unwrap();
        present
            .get_or_insert_with(|| cache.hashes().into_iter().collect())
            .contains(&hash)
    }

    /// Records that this scheduler stored `hash`, keeping the presence
    /// set current.
    fn note_stored(&self, hash: u64) {
        if let Some(set) = self.present.lock().unwrap().as_mut() {
            set.insert(hash);
        }
    }

    /// Runs a batch of jobs: cache hits are served immediately, misses
    /// run on the work-stealing pool, and the merged results come back
    /// in submission order — so N-worker output is byte-identical to
    /// 1-worker output.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index job error after the whole batch has
    /// been attempted (completed siblings are still cached, so a rerun
    /// only recomputes the failures).
    pub fn run_jobs(&self, jobs: Vec<JobSpec>) -> Result<Vec<Measurement>> {
        let n = jobs.len();
        let rec = obs::global();
        self.stats.jobs.fetch_add(n as u64, Ordering::Relaxed);
        rec.counter("sched.jobs").add(n as u64);

        let mut results: Vec<Option<Measurement>> = Vec::new();
        results.resize_with(n, || None);
        let mut todo: Vec<(usize, JobSpec, u64)> = Vec::new();
        let mut hits = 0u64;
        let mut resumed = 0u64;
        let hit_hist = rec.histogram("sched.service_us.hit");
        let mut canon = CanonicalCache::default();
        let salt_line = format!("salt={SCHED_SALT}/{}\n", self.cfg.salt_extra);
        for (i, job) in jobs.into_iter().enumerate() {
            let h = job.hash_with(&mut canon, &salt_line);
            if let Some(cache) = &self.cache {
                let load_start = Instant::now();
                let loaded = if self.cache_may_contain(cache, h) {
                    cache.load(h)
                } else {
                    None
                };
                if let Some(m) = loaded {
                    // Guard against a (vanishingly unlikely) hash
                    // collision: the entry must describe this job.
                    if m.kernel_name == job.kernel_name() && m.params == *job.params() {
                        let load_us = load_start.elapsed().as_micros() as u64;
                        self.profile.service_hit_us.observe(load_us);
                        hit_hist.observe(load_us);
                        hits += 1;
                        if self.resumed_hashes.contains(&h) {
                            resumed += 1;
                        }
                        self.checkpoint.lock().unwrap().record(h);
                        results[i] = Some(m);
                        continue;
                    }
                }
            }
            todo.push((i, job, h));
        }
        self.stats.cache_hits.fetch_add(hits, Ordering::Relaxed);
        rec.counter("sched.cache_hits").add(hits);
        self.stats.resumed.fetch_add(resumed, Ordering::Relaxed);
        rec.counter("sched.resumed").add(resumed);
        if self.cache.is_some() {
            self.stats
                .cache_misses
                .fetch_add(todo.len() as u64, Ordering::Relaxed);
            rec.counter("sched.cache_misses").add(todo.len() as u64);
        }

        // Backend path: an installed [`ExecBackend`] (the distributed
        // coordinator) takes the whole miss set at once; results come
        // back unordered and are merged by submission index, with the
        // same lowest-index-error-wins contract as the pool path.
        let backend_guard = self.backend.read().unwrap();
        if let Some(backend) = backend_guard.as_ref() {
            self.stats
                .executed
                .fetch_add(todo.len() as u64, Ordering::Relaxed);
            rec.counter("sched.jobs_executed").add(todo.len() as u64);
            self.profile
                .pending
                .store(todo.len() as u64, Ordering::Relaxed);
            self.profile
                .pending_peak
                .fetch_max(todo.len() as u64, Ordering::Relaxed);
            rec.gauge_set("sched.queue_depth").set(todo.len() as u64);
            rec.gauge("sched.queue_depth_peak")
                .record(todo.len() as u64);
            let mut execs = backend(&todo);
            self.profile.pending.store(0, Ordering::Relaxed);
            rec.gauge_set("sched.queue_depth").set(0);
            execs.sort_by_key(|e| e.index);
            let mut first_err: Option<SyncPerfError> = None;
            for e in execs {
                match e.result {
                    Ok(m) => {
                        if let Some(cache) = &self.cache {
                            // `stored` means the backend already wrote
                            // the entry (raw wire bytes); either way it
                            // counts and the store hook fires.
                            let ok = e.stored || cache.store(e.hash, &m).is_ok();
                            if ok {
                                self.note_stored(e.hash);
                                self.stats.cache_stores.fetch_add(1, Ordering::Relaxed);
                                rec.counter("sched.cache_stores").inc();
                                if let Some(hook) = self.store_hook.read().unwrap().as_ref() {
                                    hook(e.hash, &m);
                                }
                            }
                        }
                        self.checkpoint.lock().unwrap().record(e.hash);
                        results[e.index] = Some(m);
                    }
                    // Finish persisting siblings before failing, so a
                    // rerun only recomputes the failures.
                    Err(err) => first_err = first_err.or(Some(err)),
                }
            }
            if let Some(err) = first_err {
                return Err(err);
            }
            return Ok(results
                .into_iter()
                .map(|m| m.expect("every job either hit the cache or ran on the backend"))
                .collect());
        }
        drop(backend_guard);

        // Batch pass: group the miss set by kernel shape and evaluate
        // each parameter sweep through one struct-of-arrays plan table,
        // so workers start from pre-primed engine memos.
        let primed = self.prepare_primed(&todo);

        // Dispatch: track live queue depth and per-job wait/service
        // latency, mirroring into the global recorder's telemetry.
        let dispatched = Instant::now();
        let depth_gauge = rec.gauge_set("sched.queue_depth");
        let peak_gauge = rec.gauge("sched.queue_depth_peak");
        let wait_hist = rec.histogram("sched.wait_us");
        let miss_hist = rec.histogram("sched.service_us.miss");
        self.profile
            .pending
            .store(todo.len() as u64, Ordering::Relaxed);
        self.profile
            .pending_peak
            .fetch_max(todo.len() as u64, Ordering::Relaxed);
        depth_gauge.set(todo.len() as u64);
        peak_gauge.record(todo.len() as u64);

        let items: Vec<((usize, JobSpec, u64), Option<PrimedEngine>)> =
            todo.into_iter().zip(primed).collect();
        let outcome = pool::run_indexed(
            self.effective_workers(),
            items,
            |_, ((i, job, h), primed)| {
                let wait_us = dispatched.elapsed().as_micros() as u64;
                self.profile.wait_us.observe(wait_us);
                wait_hist.observe(wait_us);
                let exec_start = Instant::now();
                let r = self.execute_with_retry(&job, h, primed.as_ref());
                let exec_us = exec_start.elapsed().as_micros() as u64;
                self.profile.service_miss_us.observe(exec_us);
                miss_hist.observe(exec_us);
                if let Ok(m) = &r {
                    if let Some(cache) = &self.cache {
                        // A read-only cache directory must not fail the
                        // run; the result is simply not reusable.
                        if cache.store(h, m).is_ok() {
                            self.note_stored(h);
                            self.stats.cache_stores.fetch_add(1, Ordering::Relaxed);
                            obs::global().counter("sched.cache_stores").inc();
                            if let Some(hook) = self.store_hook.read().unwrap().as_ref() {
                                hook(h, m);
                            }
                        }
                    }
                    self.checkpoint.lock().unwrap().record(h);
                }
                let left = self.profile.pending.fetch_sub(1, Ordering::Relaxed) - 1;
                depth_gauge.set(left);
                (i, r)
            },
        );
        self.stats
            .steals
            .fetch_add(outcome.steals, Ordering::Relaxed);
        rec.counter("sched.steals").add(outcome.steals);
        {
            let mut workers = self.profile.workers.lock().unwrap();
            if workers.len() < outcome.per_worker.len() {
                workers.resize_with(outcome.per_worker.len(), PoolWorkerStats::default);
            }
            for (acc, batch) in workers.iter_mut().zip(&outcome.per_worker) {
                acc.absorb(batch);
            }
        }

        for (i, r) in outcome.results {
            match r {
                Ok(m) => results[i] = Some(m),
                // `outcome.results` is in submission (= index) order,
                // so the first error seen is the lowest-index one —
                // matching what the serial path would have returned.
                Err(e) => return Err(e),
            }
        }
        Ok(results
            .into_iter()
            .map(|m| m.expect("every job either hit the cache or executed"))
            .collect())
    }

    /// [`Scheduler::run_jobs`] for a single job.
    ///
    /// # Errors
    ///
    /// Propagates the job's error.
    pub fn measure(&self, job: JobSpec) -> Result<Measurement> {
        Ok(self
            .run_jobs(vec![job])?
            .pop()
            .expect("one job in, one measurement out"))
    }

    /// Executes one job, retrying with exponential backoff when the
    /// result looks faulty (exhausted protocol runs) or the error is
    /// transient. The retry seed differs per attempt but depends only
    /// on (hash, attempt), keeping the outcome independent of worker
    /// count and execution order.
    fn execute_with_retry(
        &self,
        job: &JobSpec,
        hash: u64,
        primed: Option<&PrimedEngine>,
    ) -> Result<Measurement> {
        let rec = obs::global();
        self.stats.executed.fetch_add(1, Ordering::Relaxed);
        rec.counter("sched.jobs_executed").inc();
        execute_job_with_retry_primed(job, hash, primed, |_| {
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            rec.counter("sched.retries").inc();
        })
    }

    /// Groups the miss set by kernel shape ([`JobSpec::same_shape`])
    /// and batch-evaluates each parameter-sweep group of ≥ 2 jobs
    /// through one struct-of-arrays plan table, returning one optional
    /// primed engine pair per `todo` entry (in order). Group detection
    /// is always counted, but priming is skipped entirely while a
    /// global recorder is live: observed runs must keep per-rep trace
    /// emission and therefore take the interpreter path. A group whose
    /// batch evaluation fails primes nothing, so the per-job path
    /// reproduces the exact error.
    fn prepare_primed(&self, todo: &[(usize, JobSpec, u64)]) -> Vec<Option<PrimedEngine>> {
        let rec = obs::global();
        let start = Instant::now();
        let mut primed: Vec<Option<PrimedEngine>> = Vec::new();
        primed.resize_with(todo.len(), || None);
        let mut grouped = vec![false; todo.len()];
        let (mut batches, mut batch_points, mut primed_jobs) = (0u64, 0u64, 0u64);
        for lead in 0..todo.len() {
            if grouped[lead] {
                continue;
            }
            grouped[lead] = true;
            let mut members = vec![lead];
            for other in lead + 1..todo.len() {
                if !grouped[other] && todo[lead].1.same_shape(&todo[other].1) {
                    grouped[other] = true;
                    members.push(other);
                }
            }
            if members.len() < 2 {
                continue;
            }
            batches += 1;
            batch_points += members.len() as u64;
            rec.histogram("plan.batch_size")
                .observe(members.len() as u64);
            if rec.is_enabled() {
                continue;
            }
            let group: Vec<&JobSpec> = members.iter().map(|&m| &todo[m].1).collect();
            if let Some(engines) = JobSpec::batch_prime(&group) {
                primed_jobs += engines.len() as u64;
                for (&m, pe) in members.iter().zip(engines) {
                    primed[m] = Some(pe);
                }
            }
        }
        let us = start.elapsed().as_micros() as u64;
        self.stats
            .plan_batches
            .fetch_add(batches, Ordering::Relaxed);
        self.stats
            .plan_batch_points
            .fetch_add(batch_points, Ordering::Relaxed);
        self.stats
            .plan_primed_jobs
            .fetch_add(primed_jobs, Ordering::Relaxed);
        self.stats.plan_compile_us.fetch_add(us, Ordering::Relaxed);
        primed
    }

    /// Marks the run's checkpoint complete and flushes it.
    pub fn finish(&self) {
        self.checkpoint.lock().unwrap().finish();
    }
}

static CURRENT: RwLock<Option<Arc<Scheduler>>> = RwLock::new(None);

/// Installs `s` as the process-global scheduler (replacing any earlier
/// one) and returns a handle to it.
pub fn install(s: Scheduler) -> Arc<Scheduler> {
    let arc = Arc::new(s);
    *CURRENT.write().unwrap() = Some(Arc::clone(&arc));
    arc
}

/// Removes the process-global scheduler; measurement helpers fall back
/// to the serial legacy path.
pub fn uninstall() {
    *CURRENT.write().unwrap() = None;
}

/// The process-global scheduler, if one is installed.
#[must_use]
pub fn current() -> Option<Arc<Scheduler>> {
    CURRENT.read().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, ExecParams, Protocol, SYSTEM3};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("syncperf-sched-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sim_jobs() -> Vec<JobSpec> {
        [2u32, 4, 8]
            .iter()
            .map(|&t| {
                JobSpec::cpu_sim(
                    &SYSTEM3,
                    kernel::omp_atomic_update_scalar(DType::I32),
                    ExecParams::new(t).with_loops(50, 4),
                    Protocol::SIM,
                )
            })
            .collect()
    }

    #[test]
    fn warm_cache_executes_nothing_and_matches_cold() {
        let dir = tmp_dir("warm");
        let s = Scheduler::new(SchedConfig::new(1).with_cache_dir(&dir));
        let cold = s.run_jobs(sim_jobs()).unwrap();
        let st = s.stats();
        assert_eq!((st.jobs, st.executed, st.cache_hits), (3, 3, 0));
        assert_eq!(st.cache_stores, 3);

        let warm = s.run_jobs(sim_jobs()).unwrap();
        let st = s.stats();
        assert_eq!((st.jobs, st.executed, st.cache_hits), (6, 3, 3));
        assert_eq!(warm, cold, "cached results must be bit-identical");
        assert!((s.stats().hit_rate() - 0.5).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let dir1 = tmp_dir("w1");
        let dir4 = tmp_dir("w4");
        let s1 = Scheduler::new(SchedConfig::new(1).with_cache_dir(&dir1));
        let s4 = Scheduler::new(SchedConfig::new(4).with_cache_dir(&dir4));
        let a = s1.run_jobs(sim_jobs()).unwrap();
        let b = s4.run_jobs(sim_jobs()).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir4);
    }

    #[test]
    fn salt_bump_invalidates_cache() {
        let dir = tmp_dir("salt");
        let s = Scheduler::new(SchedConfig::new(1).with_cache_dir(&dir));
        s.run_jobs(sim_jobs()).unwrap();
        assert_eq!(s.stats().cache_stores, 3);

        let bumped = Scheduler::new(SchedConfig::new(1).with_cache_dir(&dir).with_salt_extra(1));
        bumped.run_jobs(sim_jobs()).unwrap();
        let st = bumped.stats();
        assert_eq!((st.cache_hits, st.executed), (0, 3), "salt must invalidate");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_recomputes() {
        let dir = tmp_dir("corrupt");
        let s = Scheduler::new(SchedConfig::new(1).with_cache_dir(&dir));
        let jobs = sim_jobs();
        let good = s.run_jobs(jobs.clone()).unwrap();
        let victim = s.cache.as_ref().unwrap().entry_path(s.job_hash(&jobs[1]));
        std::fs::write(&victim, "garbage").unwrap();

        let again = s.run_jobs(jobs).unwrap();
        assert_eq!(again, good, "recomputed entry must match");
        let st = s.stats();
        assert_eq!(st.cache_hits, 2, "two intact entries hit");
        assert_eq!(st.executed, 4, "one recompute after the corruption");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_cache_always_executes() {
        let dir = tmp_dir("nocache");
        let s = Scheduler::new(SchedConfig::new(2).with_cache_dir(&dir).without_cache());
        s.run_jobs(sim_jobs()).unwrap();
        s.run_jobs(sim_jobs()).unwrap();
        let st = s.stats();
        assert_eq!((st.executed, st.cache_hits, st.cache_misses), (6, 0, 0));
        assert!(!dir.exists(), "no cache directory without caching");
    }

    #[test]
    fn resume_counts_manifest_hits() {
        let dir = tmp_dir("resume");
        let first = Scheduler::new(SchedConfig::new(1).with_cache_dir(&dir).with_label("t"));
        first.run_jobs(sim_jobs()).unwrap();
        // Simulate an interruption: the manifest flushes on finish.
        first.finish();

        let resumed = Scheduler::new(
            SchedConfig::new(1)
                .with_cache_dir(&dir)
                .with_label("t")
                .with_resume(),
        );
        resumed.run_jobs(sim_jobs()).unwrap();
        let st = resumed.stats();
        assert_eq!(st.resumed, 3, "all three hits were checkpointed work");

        // Without --resume the same hits are plain cache hits.
        let fresh = Scheduler::new(SchedConfig::new(1).with_cache_dir(&dir).with_label("t"));
        fresh.run_jobs(sim_jobs()).unwrap();
        assert_eq!(fresh.stats().resumed, 0);
        assert_eq!(fresh.stats().cache_hits, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profiling_tracks_service_split_and_workers() {
        let dir = tmp_dir("profile");
        let s = Scheduler::new(SchedConfig::new(2).with_cache_dir(&dir));
        s.run_jobs(sim_jobs()).unwrap();
        let cold = s.stats();
        assert!(
            cold.service_miss_us_p99 >= cold.service_miss_us_p50,
            "miss service quantiles are ordered"
        );
        assert_eq!(cold.service_hit_us_p50, 0, "no hits yet");
        assert_eq!(cold.queue_depth_peak, 3, "all three jobs were pending");

        s.run_jobs(sim_jobs()).unwrap();
        let warm = s.stats();
        assert!(
            warm.service_hit_us_p99 >= warm.service_hit_us_p50,
            "hit service quantiles populated after the warm pass"
        );

        let workers = s.worker_stats();
        assert!(!workers.is_empty());
        let executed: u64 = workers.iter().map(|w| w.executed).sum();
        assert_eq!(executed, 3, "only the cold batch executed jobs");

        let mut snap = Snapshot::default();
        s.export_into(&mut snap);
        assert_eq!(snap.counter("sched.jobs"), 6);
        assert_eq!(snap.counter("sched.cache_hits"), 3);
        assert_eq!(snap.gauge("sched.queue_depth"), 0, "nothing pending now");
        assert_eq!(snap.gauge("sched.queue_depth_peak"), 3);
        assert_eq!(snap.histogram("sched.service_us.miss").count(), 3);
        assert_eq!(snap.histogram("sched.service_us.hit").count(), 3);
        assert_eq!(snap.histogram("sched.wait_us").count(), 3);
        let per_worker_exec: u64 = (0..workers.len())
            .map(|w| snap.counter(&format!("sched.worker.{w}.executed")))
            .sum();
        assert_eq!(per_worker_exec, 3);
        // The exported snapshot round-trips through SchedStats.
        let st = SchedStats::from_snapshot(&snap);
        assert_eq!(st.jobs, 6);
        assert_eq!(st.queue_depth_peak, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_job_hash_matches_uncached() {
        let mut canon = CanonicalCache::default();
        for salt in [0u64, 7] {
            for job in sim_jobs() {
                assert_eq!(
                    job_hash_with_salt_cached(&job, salt, &mut canon),
                    job_hash_with_salt(&job, salt),
                    "memoized canonical text must hash identically"
                );
            }
        }
    }

    #[test]
    fn batching_counts_groups_and_matches_direct_execution() {
        let dir = tmp_dir("batch");
        let s = Scheduler::new(SchedConfig::new(2).with_cache_dir(&dir));
        let jobs = sim_jobs();
        let got = s.run_jobs(jobs.clone()).unwrap();
        let st = s.stats();
        assert_eq!(st.plan_batches, 1, "three same-shape jobs form one group");
        assert_eq!(st.plan_batch_points, 3);
        // Priming only happens while the global recorder is disabled
        // (another test may have installed one in this process), but
        // either path must be byte-identical to direct execution.
        assert!(st.plan_primed_jobs == 0 || st.plan_primed_jobs == 3);
        let direct: Vec<Measurement> = jobs
            .iter()
            .map(|j| execute_job_with_retry(j, s.job_hash(j), |_| {}).unwrap())
            .collect();
        assert_eq!(got, direct, "batched results must match the unprimed path");

        // A mixed-shape batch: the lone GPU job stays ungrouped.
        let mut mixed = sim_jobs();
        mixed.push(JobSpec::gpu_sim(
            &SYSTEM3,
            kernel::cuda_syncthreads(),
            ExecParams::new(64).with_blocks(2).with_loops(50, 4),
            Protocol::SIM,
        ));
        let s2 = Scheduler::new(SchedConfig::new(1).with_cache_dir(tmp_dir("batch2")));
        s2.run_jobs(mixed).unwrap();
        let st2 = s2.stats();
        assert_eq!((st2.plan_batches, st2.plan_batch_points), (1, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_mirror_obs_counters() {
        // The global recorder may be disabled in the test process, so
        // only check the struct round-trips through a snapshot shape.
        let st = SchedStats {
            jobs: 10,
            cache_hits: 9,
            ..SchedStats::default()
        };
        assert!((st.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(SchedStats::default().hit_rate(), 0.0);
    }
}
