//! The content-addressed on-disk result cache.
//!
//! One JSON file per job under `<results>/.cache/<hash16>.json`, where
//! the name is the job's content hash. Entries are written directly to
//! their final name: loads are corruption-tolerant — any parse or
//! validation failure (including a torn or half-written file) is
//! treated as a miss (recompute), never an error — and entry bytes are
//! a deterministic function of the hash, so concurrent writers of the
//! same entry produce identical bytes. A sweep stores thousands of
//! entries and each syscall is real kernel time, which is why the
//! write path doesn't pay for a temp file plus rename.
//!
//! As defense in depth, every entry also embeds its own hash (the
//! `"hash"` field); a load rejects any entry whose stored hash
//! disagrees with the file name it was loaded under, so a copied or
//! renamed entry file can never answer for a different job even when
//! its kernel/params happen to match.
//!
//! Floats are serialized with Rust's shortest round-trip formatting
//! (`{:?}`) and parsed back with `str::parse::<f64>`, which restores
//! the exact bit pattern. A cached [`Measurement`] is therefore
//! byte-identical to a recomputed one in every downstream rendering —
//! the property the warm-cache CSV tests pin down.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Once};
use std::time::SystemTime;

use syncperf_core::obs::json::{self, Value};
use syncperf_core::{Affinity, ExecParams, Measurement, TimeUnit};

use crate::hash::{hex16, parse_hex16};

/// On-disk facts about one cache entry, as reported by
/// [`Cache::entries`] — what an index or eviction policy needs without
/// decoding the entry body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryInfo {
    /// The entry's content hash (from its file name).
    pub hash: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Last modification time (the store time), when the filesystem
    /// reports one.
    pub modified: Option<SystemTime>,
}

/// Handle to one cache directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
    /// Guards the one-time `create_dir_all` — a sweep stores thousands
    /// of entries and must not pay a directory-existence syscall per
    /// store. Shared across clones so the guard stays one-time.
    dir_ensured: Arc<Once>,
}

impl Cache {
    /// A cache rooted at `dir` (created lazily on first store).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Cache {
            dir: dir.into(),
            dir_ensured: Arc::new(Once::new()),
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a job hash.
    #[must_use]
    pub fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{}.json", hex16(hash)))
    }

    /// Loads the entry for `hash`, or `None` on miss *or* on any kind
    /// of corruption (unreadable file, bad JSON, missing fields,
    /// non-finite or inconsistent values, or a stored hash that
    /// disagrees with the file name).
    #[must_use]
    pub fn load(&self, hash: u64) -> Option<Measurement> {
        let text = std::fs::read_to_string(self.entry_path(hash)).ok()?;
        decode_measurement(hash, &text)
    }

    /// Stores `m` as the entry for `hash`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (the scheduler downgrades them to a
    /// warning — a read-only cache must not fail the run).
    pub fn store(&self, hash: u64, m: &Measurement) -> std::io::Result<()> {
        self.store_raw(hash, &encode_measurement(hash, m))
    }

    /// Stores already-encoded entry text under `hash`, writing the
    /// final name directly (see the module docs for why a reader
    /// racing the write stays correct). The distributed coordinator
    /// uses this to persist entry bytes exactly as a worker sent them
    /// (after validating with [`decode_measurement`]), so a
    /// distributed cache file is byte-identical to a locally stored
    /// one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn store_raw(&self, hash: u64, encoded: &str) -> std::io::Result<()> {
        self.dir_ensured
            .call_once(|| drop(std::fs::create_dir_all(&self.dir)));
        let path = self.entry_path(hash);
        if let Err(e) = std::fs::write(&path, encoded) {
            // The directory may have been removed since the one-time
            // guard ran (tests and eviction churn do this): recreate it
            // and retry once rather than failing every later store.
            if e.kind() != std::io::ErrorKind::NotFound {
                return Err(e);
            }
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(&path, encoded)?;
        }
        Ok(())
    }

    /// Lists every entry currently on disk (files named
    /// `<hex16>.json`), with size and modification time. Temp files,
    /// checkpoint manifests, and anything else in the directory are
    /// skipped. A missing directory is an empty cache.
    #[must_use]
    pub fn entries(&self) -> Vec<EntryInfo> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for e in dir.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".json") else {
                continue;
            };
            let Some(hash) = parse_hex16(stem) else {
                continue;
            };
            let Ok(meta) = e.metadata() else { continue };
            out.push(EntryInfo {
                hash,
                bytes: meta.len(),
                modified: meta.modified().ok(),
            });
        }
        // Deterministic order for callers that seed recency from it.
        out.sort_by_key(|e| e.hash);
        out
    }

    /// Lists just the content hashes of the entries on disk — one
    /// directory scan, no per-file `stat`. The scheduler seeds its
    /// presence set from this so a cold sweep doesn't pay one failed
    /// `open()` per miss probe.
    #[must_use]
    pub fn hashes(&self) -> Vec<u64> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        dir.flatten()
            .filter_map(|e| {
                let name = e.file_name();
                parse_hex16(name.to_str()?.strip_suffix(".json")?)
            })
            .collect()
    }

    /// Removes the entry for `hash`, returning whether a file was
    /// actually deleted (`false` when it was already gone — another
    /// evictor may have raced us, which is fine).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    pub fn remove(&self, hash: u64) -> std::io::Result<bool> {
        match std::fs::remove_file(self.entry_path(hash)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Total bytes of all entries currently on disk.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.bytes).sum()
    }
}

fn push_runs(out: &mut String, key: &str, runs: &[f64]) {
    use std::fmt::Write as _;
    out.push_str("  \"");
    out.push_str(key);
    out.push_str("\": [");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{r:?}");
    }
    out.push_str("],\n");
}

/// Renders a [`Measurement`] as the cache-entry JSON document for
/// `hash` (the hash is embedded so a misfiled copy is detectable).
///
/// Everything is written into one pre-sized buffer — a sweep stores
/// thousands of entries, and the per-field `format!` allocations the
/// old encoder paid were measurable in cold-run profiles. The emitted
/// bytes are unchanged (the distributed path depends on entry files
/// being byte-identical across encoders).
#[must_use]
pub fn encode_measurement(hash: u64, m: &Measurement) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512 + 24 * (m.baseline_runs.len() + m.test_runs.len()));
    out.push_str("{\n  \"schema\": 2,\n");
    let _ = writeln!(out, "  \"hash\": \"{}\",", hex16(hash));
    out.push_str("  \"kernel\": ");
    push_json_string(&mut out, &m.kernel_name);
    out.push_str(",\n");
    let p = &m.params;
    let _ = writeln!(
        out,
        "  \"params\": {{\"threads\": {}, \"blocks\": {}, \"affinity\": \"{}\", \
         \"n_iter\": {}, \"n_unroll\": {}, \"n_warmup\": {}}},",
        p.threads,
        p.blocks,
        p.affinity.label(),
        p.n_iter,
        p.n_unroll,
        p.n_warmup
    );
    match m.time_unit {
        TimeUnit::Seconds => out.push_str("  \"time_unit\": {\"kind\": \"seconds\"},\n"),
        TimeUnit::Cycles { clock_ghz } => {
            let _ = writeln!(
                out,
                "  \"time_unit\": {{\"kind\": \"cycles\", \"clock_ghz\": {clock_ghz:?}}},"
            );
        }
    }
    push_runs(&mut out, "baseline_runs", &m.baseline_runs);
    push_runs(&mut out, "test_runs", &m.test_runs);
    let _ = write!(
        out,
        "  \"median_baseline\": {:?},\n  \"median_test\": {:?},\n  \"per_op\": {:?},\n",
        m.median_baseline, m.median_test, m.per_op
    );
    let _ = write!(
        out,
        "  \"retries\": {},\n  \"exhausted_runs\": {}\n}}\n",
        m.retries, m.exhausted_runs
    );
    out
}

fn push_json_string(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    let x = v.get(key)?.as_f64()?;
    x.is_finite().then_some(x)
}

fn get_u32(v: &Value, key: &str) -> Option<u32> {
    let x = v.get(key)?.as_f64()?;
    (x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= f64::from(u32::MAX)).then_some(x as u32)
}

fn get_runs(v: &Value, key: &str) -> Option<Vec<f64>> {
    v.get(key)?
        .as_array()?
        .iter()
        .map(|x| {
            let x = x.as_f64()?;
            x.is_finite().then_some(x)
        })
        .collect()
}

/// Parses the cache entry expected to belong to `expected_hash` back
/// into a [`Measurement`]; `None` on any structural problem *or* when
/// the entry's stored hash disagrees with the expected one (the caller
/// recomputes).
#[must_use]
pub fn decode_measurement(expected_hash: u64, text: &str) -> Option<Measurement> {
    let v = json::parse(text).ok()?;
    if get_u32(&v, "schema")? != 2 {
        return None;
    }
    if v.get("hash")?.as_str().and_then(parse_hex16)? != expected_hash {
        return None;
    }
    let kernel_name = v.get("kernel")?.as_str()?.to_string();

    let p = v.get("params")?;
    let affinity = match p.get("affinity")?.as_str()? {
        "spread" => Affinity::Spread,
        "close" => Affinity::Close,
        "system" => Affinity::SystemChoice,
        _ => return None,
    };
    let params = ExecParams {
        threads: get_u32(p, "threads")?,
        blocks: get_u32(p, "blocks")?,
        affinity,
        n_iter: get_u32(p, "n_iter")?,
        n_unroll: get_u32(p, "n_unroll")?,
        n_warmup: get_u32(p, "n_warmup")?,
    };

    let tu = v.get("time_unit")?;
    let time_unit = match tu.get("kind")?.as_str()? {
        "seconds" => TimeUnit::Seconds,
        "cycles" => TimeUnit::Cycles {
            clock_ghz: get_f64(tu, "clock_ghz")?,
        },
        _ => return None,
    };

    let baseline_runs = get_runs(&v, "baseline_runs")?;
    let test_runs = get_runs(&v, "test_runs")?;
    if baseline_runs.is_empty() || baseline_runs.len() != test_runs.len() {
        return None;
    }

    Some(Measurement {
        kernel_name,
        params,
        time_unit,
        baseline_runs,
        test_runs,
        median_baseline: get_f64(&v, "median_baseline")?,
        median_test: get_f64(&v, "median_test")?,
        per_op: get_f64(&v, "per_op")?,
        retries: get_u32(&v, "retries")?,
        exhausted_runs: get_u32(&v, "exhausted_runs")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement {
            kernel_name: "omp_barrier".into(),
            params: ExecParams::new(8).with_loops(1000, 100),
            time_unit: TimeUnit::Cycles { clock_ghz: 2.52 },
            baseline_runs: vec![1.25e-3, 0.1 + 0.2, 3.0_f64.sqrt()],
            test_runs: vec![2.5e-3, 2.5e-3, 2.6e-3],
            median_baseline: 1.25e-3,
            median_test: 2.5e-3,
            per_op: 1.25e-8,
            retries: 3,
            exhausted_runs: 1,
        }
    }

    fn tmp_cache(tag: &str) -> Cache {
        let dir =
            std::env::temp_dir().join(format!("syncperf-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::new(dir)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let m = sample();
        let back = decode_measurement(42, &encode_measurement(42, &m)).unwrap();
        // PartialEq on f64 fields: exact bit-pattern equality is the
        // byte-identical-CSV guarantee.
        assert_eq!(back, m);
    }

    #[test]
    fn encoder_bytes_are_stable() {
        // The distributed path stores worker-sent entry bytes verbatim,
        // so the encoder's exact layout is part of the wire contract.
        let text = encode_measurement(42, &sample());
        let head = format!("{{\n  \"schema\": 2,\n  \"hash\": \"{}\",\n", hex16(42));
        assert!(text.starts_with(&head), "text:\n{text}");
        assert!(text.contains("  \"kernel\": \"omp_barrier\",\n"));
        assert!(text.contains(
            "  \"params\": {\"threads\": 8, \"blocks\": 1, \"affinity\": \"system\", \
             \"n_iter\": 1000, \"n_unroll\": 100, \"n_warmup\": 10},\n"
        ));
        // Shortest round-trip float formatting (0.1 + 0.2).
        assert!(text.contains("0.30000000000000004"));
        assert!(text.ends_with("  \"retries\": 3,\n  \"exhausted_runs\": 1\n}\n"));
    }

    #[test]
    fn mismatched_hash_field_is_a_miss() {
        let cache = tmp_cache("hash-mismatch");
        let m = sample();
        cache.store(42, &m).unwrap();
        // A copied/renamed entry must never answer for another hash,
        // even though its body is perfectly valid.
        std::fs::copy(cache.entry_path(42), cache.entry_path(43)).unwrap();
        assert!(cache.load(42).is_some(), "original still loads");
        assert!(cache.load(43).is_none(), "misfiled copy must miss");
        // And a directly tampered hash field invalidates the original.
        let text = encode_measurement(42, &m);
        assert!(decode_measurement(43, &text).is_none());
        let tampered = text.replace(&hex16(42), &hex16(99));
        assert!(decode_measurement(42, &tampered).is_none());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn entries_lists_and_remove_deletes() {
        let cache = tmp_cache("entries");
        assert!(cache.entries().is_empty(), "missing dir is empty");
        let m = sample();
        cache.store(1, &m).unwrap();
        cache.store(2, &m).unwrap();
        // Non-entry files are ignored by the listing.
        std::fs::write(cache.dir().join("checkpoint-x.json"), "{}").unwrap();
        std::fs::write(cache.dir().join(".0000000000000001.tmp.1"), "x").unwrap();
        let entries = cache.entries();
        assert_eq!(
            entries.iter().map(|e| e.hash).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(entries.iter().all(|e| e.bytes > 0));
        assert_eq!(cache.total_bytes(), entries.iter().map(|e| e.bytes).sum());
        assert!(cache.remove(1).unwrap());
        assert!(!cache.remove(1).unwrap(), "second remove is a no-op");
        assert!(cache.load(1).is_none());
        assert!(cache.load(2).is_some());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn store_then_load() {
        let cache = tmp_cache("roundtrip");
        let m = sample();
        assert!(cache.load(42).is_none(), "cold cache misses");
        cache.store(42, &m).unwrap();
        assert_eq!(cache.load(42).unwrap(), m);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn truncated_and_garbled_entries_are_misses() {
        let cache = tmp_cache("corrupt");
        let m = sample();
        cache.store(7, &m).unwrap();
        let path = cache.entry_path(7);

        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(7).is_none(), "truncated entry must miss");

        std::fs::write(&path, "not json at all").unwrap();
        assert!(cache.load(7).is_none(), "garbled entry must miss");

        // Structurally valid JSON with broken content also misses.
        std::fs::write(&path, "{\"schema\": 1, \"kernel\": \"x\"}").unwrap();
        assert!(cache.load(7).is_none(), "incomplete entry must miss");

        // Mismatched run lengths are rejected.
        let bad = full.replace(
            "\"test_runs\": [0.0025, 0.0025, 0.0026]",
            "\"test_runs\": [0.0025]",
        );
        std::fs::write(&path, bad).unwrap();
        assert!(cache.load(7).is_none(), "inconsistent entry must miss");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        let m = sample();
        let text = encode_measurement(7, &m).replace("1.25e-8", "1e999");
        assert!(decode_measurement(7, &text).is_none());
    }

    #[test]
    fn seconds_unit_roundtrips() {
        let mut m = sample();
        m.time_unit = TimeUnit::Seconds;
        assert_eq!(
            decode_measurement(7, &encode_measurement(7, &m)).unwrap(),
            m
        );
    }
}
