//! The work-stealing thread pool.
//!
//! Jobs are distributed round-robin across per-worker deques up front
//! (the job set is static — there is no mid-run submission). Each
//! worker pops its own deque from the back (LIFO keeps its cache
//! warm); an idle worker steals from the *front* of a victim's deque
//! (FIFO minimizes contention with the owner). Results land in
//! per-job slots indexed by submission order, so the merged output is
//! independent of which worker ran what — the byte-identical
//! N-worker/serial guarantee reduces to each job being
//! order-independent, which [`crate::job::JobSpec::execute`]
//! guarantees by seeding per-job.
//!
//! Built on `std::thread::scope` only, like `crates/omp` — no external
//! dependencies.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-worker execution profile for one pool run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolWorkerStats {
    /// Jobs this worker executed (own deque plus steals).
    pub executed: u64,
    /// Jobs this worker stole from another worker's deque.
    pub stolen: u64,
    /// Nanoseconds this worker spent inside job bodies (its
    /// utilization numerator; the denominator is the run's wall time).
    pub busy_ns: u64,
}

impl PoolWorkerStats {
    /// Adds `other`'s tallies into `self` (for accumulating across
    /// batches).
    pub fn absorb(&mut self, other: &PoolWorkerStats) {
        self.executed += other.executed;
        self.stolen += other.stolen;
        self.busy_ns += other.busy_ns;
    }
}

/// What a pool run produced: results in submission order, plus steal
/// statistics.
#[derive(Debug)]
pub struct PoolOutcome<R> {
    /// One result per input item, in submission order.
    pub results: Vec<R>,
    /// Successful steals (a worker taking a job from another worker's
    /// deque).
    pub steals: u64,
    /// One profile per worker thread (a single entry on the serial
    /// path).
    pub per_worker: Vec<PoolWorkerStats>,
}

/// Runs `f` over every item on `workers` threads, returning results in
/// submission order. With `workers <= 1` (or one item) the items run
/// serially on the calling thread — the serial reference path.
pub fn run_indexed<T, R, F>(workers: usize, items: Vec<T>, f: F) -> PoolOutcome<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        let start = Instant::now();
        let results = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
        return PoolOutcome {
            results,
            steals: 0,
            per_worker: vec![PoolWorkerStats {
                executed: n as u64,
                stolen: 0,
                busy_ns: start.elapsed().as_nanos() as u64,
            }],
        };
    }

    let workers = workers.min(n);
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back((i, item));
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);
    let profiles: Vec<Mutex<PoolWorkerStats>> = (0..workers)
        .map(|_| Mutex::new(PoolWorkerStats::default()))
        .collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let steals = &steals;
            let profiles = &profiles;
            let f = &f;
            scope.spawn(move || {
                // Tally locally; publish once when the worker retires.
                let mut mine = PoolWorkerStats::default();
                loop {
                    // Own work first, newest job first.
                    let mut job = deques[w].lock().unwrap().pop_back();
                    if job.is_none() {
                        // Steal oldest-first from the other workers,
                        // scanning from our right-hand neighbour.
                        for off in 1..workers {
                            let v = (w + off) % workers;
                            if let Some(j) = deques[v].lock().unwrap().pop_front() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                mine.stolen += 1;
                                job = Some(j);
                                break;
                            }
                        }
                    }
                    match job {
                        Some((i, item)) => {
                            let started = Instant::now();
                            let r = f(i, item);
                            mine.executed += 1;
                            mine.busy_ns += started.elapsed().as_nanos() as u64;
                            *slots[i].lock().unwrap() = Some(r);
                        }
                        // Every deque is empty and no new work can
                        // appear: the job set is static, so this
                        // worker is done.
                        None => break,
                    }
                }
                *profiles[w].lock().unwrap() = mine;
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every submitted job completes before the scope joins")
        })
        .collect();
    PoolOutcome {
        results,
        steals: steals.into_inner(),
        per_worker: profiles
            .into_iter()
            .map(|p| p.into_inner().unwrap())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_path_preserves_order() {
        let out = run_indexed(1, vec![3u32, 1, 4, 1, 5], |i, x| (i, x * 2));
        assert_eq!(out.steals, 0);
        assert_eq!(out.results, vec![(0, 6), (1, 2), (2, 8), (3, 2), (4, 10)]);
    }

    #[test]
    fn parallel_results_match_serial_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_indexed(1, items.clone(), |i, x| x * 3 + i as u64);
        let parallel = run_indexed(4, items, |i, x| x * 3 + i as u64);
        assert_eq!(serial.results, parallel.results);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_indexed(8, (0..257).collect::<Vec<u32>>(), |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.into_inner(), 257);
        assert_eq!(out.results.len(), 257);
    }

    #[test]
    fn imbalanced_load_triggers_steals() {
        // Worker 0 gets all the slow jobs (round-robin with 2 workers
        // puts even indices on worker 0); make even jobs slow so the
        // other worker runs dry and must steal.
        let items: Vec<u32> = (0..32).collect();
        let out = run_indexed(2, items, |i, x| {
            if i % 2 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out.results, (0..32).collect::<Vec<u32>>());
        assert!(out.steals > 0, "idle worker must steal");
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = run_indexed(16, vec![1, 2], |_, x| x);
        assert_eq!(out.results, vec![1, 2]);
    }

    #[test]
    fn per_worker_stats_account_for_every_job() {
        let out = run_indexed(4, (0..64).collect::<Vec<u32>>(), |_, x| x);
        assert_eq!(out.per_worker.len(), 4);
        let executed: u64 = out.per_worker.iter().map(|p| p.executed).sum();
        assert_eq!(executed, 64, "every job attributed to some worker");
        let stolen: u64 = out.per_worker.iter().map(|p| p.stolen).sum();
        assert_eq!(stolen, out.steals, "per-worker steals sum to the total");
    }

    #[test]
    fn serial_path_reports_one_worker() {
        let out = run_indexed(1, vec![1u32, 2, 3], |_, x| x);
        assert_eq!(out.per_worker.len(), 1);
        assert_eq!(out.per_worker[0].executed, 3);
        assert_eq!(out.per_worker[0].stolen, 0);
    }

    #[test]
    fn busy_time_tracks_job_bodies() {
        let out = run_indexed(2, (0..8).collect::<Vec<u32>>(), |_, x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        });
        for p in &out.per_worker {
            if p.executed > 0 {
                assert!(
                    p.busy_ns >= p.executed * 1_000_000,
                    "each 1ms job contributes at least 1ms of busy time"
                );
            }
        }
    }
}
