//! Property-based tests over the GPU cost model: monotonicity,
//! scale-invariance, and dominance relations that must hold for every
//! launch geometry.

use proptest::prelude::*;
use syncperf_core::{kernel, DType, ExecParams, Protocol, Scope, ShflVariant, SYSTEM3};
use syncperf_gpu_sim::{cost, GpuModel, GpuSimExecutor, Occupancy};

fn occ(blocks: u32, threads: u32) -> Occupancy {
    Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap()
}

proptest! {
    /// __syncthreads cost is monotonically non-decreasing in block size
    /// and independent of block count.
    #[test]
    fn syncthreads_monotone_in_block_size(t1 in 1u32..=1024, t2 in 1u32..=1024,
                                          b1 in 1u32..256, b2 in 1u32..256) {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(cost::syncthreads(&m, &occ(b1, lo)) <= cost::syncthreads(&m, &occ(b1, hi)));
        prop_assert_eq!(cost::syncthreads(&m, &occ(b1, lo)), cost::syncthreads(&m, &occ(b2, lo)));
    }

    /// Warp-local ops depend only on resident threads per SM: two
    /// launches with the same threads/SM cost the same.
    #[test]
    fn warp_local_ops_depend_only_on_sm_load(threads_exp in 0u32..=9) {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let t = 1u32 << threads_exp; // 1..512
        // full config (sms blocks of 2t) vs double config (2*sms of t):
        let full = occ(SYSTEM3.gpu.sms, t * 2);
        let double = occ(SYSTEM3.gpu.sms * 2, t);
        prop_assert_eq!(full.threads_per_sm, double.threads_per_sm);
        prop_assert_eq!(cost::syncwarp(&m, &full), cost::syncwarp(&m, &double));
        prop_assert_eq!(cost::vote(&m, &full), cost::vote(&m, &double));
        prop_assert_eq!(
            cost::shfl(&m, &full, DType::F64),
            cost::shfl(&m, &double, DType::F64)
        );
    }

    /// Atomic cost on a shared scalar is non-decreasing in both block
    /// count and thread count.
    #[test]
    fn shared_atomic_monotone(b_exp in 0u32..8, t_exp in 0u32..=10) {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let b = 1u32 << b_exp;
        let t = 1u32 << t_exp;
        let base = cost::atomic(
            &m, &occ(b, t), cost::AtomicKind::Add, DType::I32, Scope::Device,
            syncperf_core::Target::SHARED,
        );
        for (b2, t2) in [(b * 2, t), (b, (t * 2).min(1024))] {
            let more = cost::atomic(
                &m, &occ(b2, t2), cost::AtomicKind::Add, DType::I32, Scope::Device,
                syncperf_core::Target::SHARED,
            );
            prop_assert!(more >= base - 1e-9,
                "({b},{t}) -> ({b2},{t2}): {base} -> {more}");
        }
    }

    /// The dtype ordering int ≤ ull ≤ float ≤ double holds for shared
    /// atomics at every geometry.
    #[test]
    fn dtype_ordering_everywhere(b_exp in 0u32..8, t_exp in 0u32..=10) {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let o = occ(1 << b_exp, 1 << t_exp);
        let c = |dt| cost::atomic(
            &m, &o, cost::AtomicKind::Add, dt, Scope::Device, syncperf_core::Target::SHARED,
        );
        prop_assert!(c(DType::I32) <= c(DType::U64));
        prop_assert!(c(DType::U64) <= c(DType::F32));
        prop_assert!(c(DType::F32) <= c(DType::F64));
    }

    /// Under contention (once the same-address queue is past its free
    /// region), CAS costs at least as much as an aggregated add: it has
    /// no aggregation, so it queues one request per *thread*. (At
    /// trivial load the opposite can hold — the add pays its warp
    /// reduction while a lone CAS does not — which matches Fig. 9 vs
    /// Fig. 11's 1-thread values.)
    #[test]
    fn cas_never_cheaper_than_add_under_contention(b_exp in 1u32..8, t_exp in 6u32..=10) {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let o = occ(1 << b_exp, 1 << t_exp);
        let add = cost::atomic(
            &m, &o, cost::AtomicKind::Add, DType::I32, Scope::Device,
            syncperf_core::Target::SHARED,
        );
        let cas = cost::atomic(
            &m, &o, cost::AtomicKind::Cas, DType::I32, Scope::Device,
            syncperf_core::Target::SHARED,
        );
        prop_assert!(cas >= add);
    }

    /// Block scope never costs more than device scope.
    #[test]
    fn block_scope_dominates(b_exp in 0u32..8, t_exp in 0u32..=10, dt_idx in 0usize..4) {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let o = occ(1 << b_exp, 1 << t_exp);
        let dt = DType::ALL[dt_idx];
        for target in [syncperf_core::Target::SHARED, syncperf_core::Target::private(8)] {
            let dev = cost::atomic(&m, &o, cost::AtomicKind::Add, dt, Scope::Device, target);
            let blk = cost::atomic(&m, &o, cost::AtomicKind::Add, dt, Scope::Block, target);
            prop_assert!(blk <= dev, "{dt} {target:?}");
        }
    }

    /// lines_per_warp is between 1 and the active lane count, and
    /// non-decreasing in stride.
    #[test]
    fn lines_per_warp_bounds(threads in 1u32..=1024, s1 in 1u32..64, s2 in 1u32..64,
                             dt_idx in 0usize..4) {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let o = occ(1, threads);
        let dt = DType::ALL[dt_idx];
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let k_lo = cost::lines_per_warp(&m, &o, dt, lo);
        let k_hi = cost::lines_per_warp(&m, &o, dt, hi);
        let lanes = f64::from(threads.min(32));
        prop_assert!((1.0..=lanes).contains(&k_lo));
        prop_assert!(k_lo <= k_hi);
    }

    /// The full protocol yields finite, positive per-op costs across
    /// the whole launch grid for every always-supported kernel.
    #[test]
    fn protocol_total_over_launch_grid(b_exp in 0u32..8, t_exp in 0u32..=10) {
        let mut sim = GpuSimExecutor::new(&SYSTEM3);
        let p = ExecParams::new(1 << t_exp)
            .with_blocks(1 << b_exp)
            .with_loops(50, 10);
        for k in [
            kernel::cuda_syncthreads(),
            kernel::cuda_syncwarp(),
            kernel::cuda_atomic_add_scalar(DType::F32),
            kernel::cuda_shfl(DType::U64, ShflVariant::Down),
        ] {
            let m = Protocol::SIM.measure(&mut sim, &k, &p).unwrap();
            prop_assert!(m.per_op.is_finite() && m.per_op > 0.0, "{}", k.name);
        }
    }
}
