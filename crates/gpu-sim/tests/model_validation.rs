//! Model-validation integration tests: the GPU simulator across full
//! sweeps, all three devices, validity matrices, and reduction edge
//! cases.

use syncperf_core::{
    kernel, DType, ExecParams, Executor, GpuOp, Protocol, RmwOp, Scope, ShflVariant, Target,
    VoteKind, SYSTEM1, SYSTEM2, SYSTEM3,
};
use syncperf_gpu_sim::{
    simulate_reduction, GpuModel, GpuSimExecutor, Occupancy, ReductionConfig, ReductionStrategy,
};

fn cycles(
    sim: &mut GpuSimExecutor,
    k: &syncperf_core::GpuKernel,
    blocks: u32,
    threads: u32,
) -> f64 {
    let p = ExecParams::new(threads)
        .with_blocks(blocks)
        .with_loops(500, 50);
    Protocol::PAPER.measure(sim, k, &p).unwrap().per_op
}

#[test]
fn full_paper_sweep_runs_on_all_three_gpus() {
    for sys in [&SYSTEM1, &SYSTEM2, &SYSTEM3] {
        let mut sim = GpuSimExecutor::new(sys);
        let k = kernel::cuda_syncthreads();
        for blocks in sys.gpu.block_count_sweep() {
            for threads in sys.gpu.thread_count_sweep() {
                let m = Protocol::SIM
                    .measure(
                        &mut sim,
                        &k,
                        &ExecParams::new(threads)
                            .with_blocks(blocks)
                            .with_loops(50, 10),
                    )
                    .unwrap();
                assert!(m.per_op > 0.0, "{} b{blocks} t{threads}", sys);
            }
        }
    }
}

#[test]
fn dtype_validity_matrix() {
    // Which (op, dtype) pairs the simulated hardware accepts, matching
    // CUDA's actual intrinsics.
    let mut sim = GpuSimExecutor::new(&SYSTEM3);
    let p = ExecParams::new(32).with_loops(50, 10);
    let try_body = |sim: &mut GpuSimExecutor, body: Vec<GpuOp>| sim.execute(&body, &p).is_ok();

    for dt in DType::ALL {
        // atomicAdd: all four types.
        assert!(try_body(
            &mut sim,
            kernel::cuda_atomic_add_scalar(dt).baseline
        ));
        // shuffles: all four types.
        assert!(try_body(
            &mut sim,
            kernel::cuda_shfl(dt, ShflVariant::Idx).baseline
        ));
        // CAS / Exch / Sub / Min / And / Or / Xor: integers only.
        let expect = dt.is_integer();
        assert_eq!(
            try_body(&mut sim, kernel::cuda_atomic_cas_scalar(dt).baseline),
            expect
        );
        assert_eq!(
            try_body(&mut sim, kernel::cuda_atomic_exch(dt).baseline),
            expect
        );
        for op in RmwOp::ALL {
            assert_eq!(
                try_body(&mut sim, kernel::cuda_atomic_rmw_scalar(op, dt).baseline),
                expect,
                "{op:?} {dt}"
            );
        }
    }
}

#[test]
fn block_scoped_atomics_gated_and_cheaper() {
    let p = ExecParams::new(256).with_blocks(8).with_loops(50, 10);
    let block_atomic = vec![GpuOp::AtomicAdd {
        dtype: DType::I32,
        scope: Scope::Block,
        target: Target::SHARED,
    }];
    let device_atomic = vec![GpuOp::AtomicAdd {
        dtype: DType::I32,
        scope: Scope::Device,
        target: Target::SHARED,
    }];
    // Works and is cheaper on cc ≥ 6.0 devices.
    let mut s3 = GpuSimExecutor::new(&SYSTEM3);
    let b = s3.execute(&block_atomic, &p).unwrap().max();
    let d = s3.execute(&device_atomic, &p).unwrap().max();
    assert!(b < d, "block-scoped atomic must be cheaper ({b} vs {d})");
}

#[test]
fn waves_do_not_change_per_thread_cost() {
    // 256 blocks of 1024 threads on the 4090 run in two waves; each
    // thread's own clock64 window is unchanged (Fig. 8 discussion).
    let mut sim = GpuSimExecutor::new(&SYSTEM3);
    let k = kernel::cuda_syncwarp();
    let one_wave = cycles(&mut sim, &k, 128, 1024);
    let two_waves = cycles(&mut sim, &k, 256, 1024);
    assert_eq!(one_wave, two_waves);
}

#[test]
fn scalar_vs_private_crossover_under_load() {
    // At tiny thread counts the shared scalar (aggregated) is fine; at
    // full load the private array wins — recommendation 4.
    let mut sim = GpuSimExecutor::new(&SYSTEM3);
    let shared = kernel::cuda_atomic_add_scalar(DType::I32);
    let private = kernel::cuda_atomic_add_array(DType::I32, 32);
    let s_small = cycles(&mut sim, &shared, 1, 32);
    let p_small = cycles(&mut sim, &private, 1, 32);
    let s_big = cycles(&mut sim, &shared, 128, 1024);
    let p_big = cycles(&mut sim, &private, 128, 1024);
    assert!(s_small < p_small * 2.0, "little difference at small scale");
    assert!(s_big > p_big, "shared-location overlap loses at full load");
}

#[test]
fn vote_kinds_identical_to_each_other() {
    let mut sim = GpuSimExecutor::new(&SYSTEM3);
    let b = cycles(&mut sim, &kernel::cuda_vote(VoteKind::Ballot), 64, 128);
    let a = cycles(&mut sim, &kernel::cuda_vote(VoteKind::All), 64, 128);
    let n = cycles(&mut sim, &kernel::cuda_vote(VoteKind::Any), 64, 128);
    assert_eq!(b, a);
    assert_eq!(a, n);
}

#[test]
fn fence_scope_costs_strictly_ordered_on_all_gpus() {
    for sys in [&SYSTEM1, &SYSTEM2, &SYSTEM3] {
        let m = GpuModel::for_spec(&sys.gpu);
        assert!(m.fence_block_cy < m.fence_device_cy);
        assert!(m.fence_device_cy < m.fence_system_cy);
    }
}

// ---- reduction edge cases ---------------------------------------------

#[test]
fn reduction_input_smaller_than_one_block() {
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    let cfg = ReductionConfig {
        size: 100,
        block_size: 256,
        persistent_grid_blocks: 4,
    };
    for s in ReductionStrategy::ALL {
        let r = simulate_reduction(&m, &SYSTEM3.gpu, s, &cfg).unwrap();
        assert!(r.total_cycles > 0.0, "{s:?}");
        assert!(
            r.global_atomics >= 1,
            "{s:?} must still combine to one result"
        );
    }
}

#[test]
fn reduction_scales_roughly_linearly_with_input() {
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    let small = ReductionConfig {
        size: 1 << 18,
        block_size: 256,
        persistent_grid_blocks: 256,
    };
    let large = ReductionConfig {
        size: 1 << 22,
        block_size: 256,
        persistent_grid_blocks: 256,
    };
    for s in ReductionStrategy::ALL {
        let a = simulate_reduction(&m, &SYSTEM3.gpu, s, &small)
            .unwrap()
            .total_cycles;
        let b = simulate_reduction(&m, &SYSTEM3.gpu, s, &large)
            .unwrap()
            .total_cycles;
        let ratio = b / a;
        assert!(
            (8.0..36.0).contains(&ratio),
            "{s:?}: 16x input gave {ratio}x time"
        );
    }
}

#[test]
fn reduction_block_size_sweep_preserves_ordering() {
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    for block_size in [64u32, 128, 256, 512, 1024] {
        let cfg = ReductionConfig {
            size: 1 << 20,
            block_size,
            persistent_grid_blocks: SYSTEM3.gpu.sms * 2,
        };
        let t = |s| {
            simulate_reduction(&m, &SYSTEM3.gpu, s, &cfg)
                .unwrap()
                .total_cycles
        };
        let (r1, r2, r3) = (
            t(ReductionStrategy::GlobalAtomic),
            t(ReductionStrategy::ShflThenGlobalAtomic),
            t(ReductionStrategy::BlockAtomicThenGlobal),
        );
        assert!(
            r3 < r1 && r1 < r2,
            "block_size {block_size}: {r3} {r1} {r2}"
        );
    }
}

#[test]
fn persistent_grid_size_tradeoff() {
    // Too few persistent blocks underutilize; the default 2×SMs is
    // near the sweet spot.
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    let time = |grid| {
        let cfg = ReductionConfig {
            size: 1 << 22,
            block_size: 256,
            persistent_grid_blocks: grid,
        };
        simulate_reduction(&m, &SYSTEM3.gpu, ReductionStrategy::PersistentThreads, &cfg)
            .unwrap()
            .total_cycles
    };
    let tiny = time(2);
    let good = time(SYSTEM3.gpu.sms * 2);
    assert!(
        tiny > good,
        "2 blocks ({tiny}) cannot beat a filled device ({good})"
    );
}

#[test]
fn aggregation_counts_exact() {
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    let cfg = ReductionConfig {
        size: 1 << 15,
        block_size: 128,
        persistent_grid_blocks: 64,
    };
    let r1 = simulate_reduction(&m, &SYSTEM3.gpu, ReductionStrategy::GlobalAtomic, &cfg).unwrap();
    assert_eq!(r1.global_atomics, (1 << 15) / 32);
    let r3 = simulate_reduction(
        &m,
        &SYSTEM3.gpu,
        ReductionStrategy::BlockAtomicThenGlobal,
        &cfg,
    )
    .unwrap();
    assert_eq!(r3.global_atomics, (1 << 15) / 128);
    assert_eq!(r3.block_atomics, (1 << 15) / 32);
    let r5 =
        simulate_reduction(&m, &SYSTEM3.gpu, ReductionStrategy::PersistentThreads, &cfg).unwrap();
    assert_eq!(r5.global_atomics, 64);
    assert_eq!(r5.block_atomics, 64 * 128 / 32);
}

#[test]
fn occupancy_matches_hand_computed_cases() {
    // 2070 SUPER: 40 SMs, 1024 threads/SM.
    let o = Occupancy::compute(&SYSTEM1.gpu, 80, 512).unwrap();
    assert_eq!(o.resident_blocks_per_sm, 2);
    assert_eq!(o.threads_per_sm, 1024);
    assert_eq!(o.waves, 1);
    // A100: 108 SMs, 2048 threads/SM → two 1024-blocks resident.
    let o = Occupancy::compute(&SYSTEM2.gpu, 216, 1024).unwrap();
    assert_eq!(o.resident_blocks_per_sm, 2);
    assert_eq!(o.waves, 1);
    // 4090: 1536/SM → only one 1024-block resident, so 256 blocks on
    // 128 SMs need two waves.
    let o = Occupancy::compute(&SYSTEM3.gpu, 256, 1024).unwrap();
    assert_eq!(o.waves, 2);
}

#[test]
fn divergence_interacts_with_issue_saturation() {
    // Divergent paths multiply ALU demand; at saturated SM load the
    // per-path cost rises with the issue slowdown.
    let mut sim = GpuSimExecutor::new(&SYSTEM3);
    let k = kernel::cuda_divergence(DType::I32, 8);
    let light = cycles(&mut sim, &k, 128, 64);
    let heavy = cycles(&mut sim, &k, 128, 1024);
    assert!(heavy > light, "saturated SM slows each divergent path");
}

#[test]
fn syncthreads_reduce_costs_a_little_more_than_plain() {
    let mut sim = GpuSimExecutor::new(&SYSTEM3);
    for kind in [VoteKind::Ballot, VoteKind::All, VoteKind::Any] {
        let k = kernel::cuda_syncthreads_vote(kind);
        for threads in [32u32, 256, 1024] {
            let p = ExecParams::new(threads).with_blocks(64).with_loops(100, 10);
            let m = Protocol::SIM.measure(&mut sim, &k, &p).unwrap();
            // The measured difference is the predicate-reduction part
            // only (baseline is a plain __syncthreads): positive, and
            // small relative to the barrier itself.
            assert!(m.per_op > 0.0, "{kind:?} at {threads}");
            let plain = Protocol::SIM
                .measure(&mut sim, &kernel::cuda_syncthreads(), &p)
                .unwrap();
            assert!(
                m.per_op < plain.median_baseline / p.timed_reps() as f64,
                "reduction part smaller than the whole barrier"
            );
        }
    }
}
