//! The GPU latency/throughput model and its per-device instantiation.
//!
//! All costs are in **clock cycles**, matching the paper's use of
//! `clock64()`. Constants are calibrated so the regenerated CUDA
//! figures land in plausible magnitudes; the shapes come from the
//! modeled mechanisms (warp granularity, atomic-unit service rates,
//! warp aggregation, SM issue saturation).

use syncperf_core::{DType, GpuSpec};

/// Per-data-type service costs of the device-wide (L2) atomic units.
///
/// The ordering `int < ull < float ≈ double` reflects the paper's
/// Fig. 9: "there are more integer than floating-point atomic units or
/// the integer atomic unit's add operation is much faster", and `ull`
/// sits between because the tested GPUs have 32-bit architectures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicService {
    /// `int` service cycles.
    pub i32_cy: f64,
    /// `unsigned long long` service cycles.
    pub u64_cy: f64,
    /// `float` service cycles.
    pub f32_cy: f64,
    /// `double` service cycles.
    pub f64_cy: f64,
}

impl AtomicService {
    /// Service cycles for `dtype`.
    #[must_use]
    pub fn for_dtype(&self, dtype: DType) -> f64 {
        match dtype {
            DType::I32 => self.i32_cy,
            DType::U64 => self.u64_cy,
            DType::F32 => self.f32_cy,
            DType::F64 => self.f64_cy,
        }
    }
}

/// Model parameters of one simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Warp size (32).
    pub warp_size: u32,
    /// `__syncthreads()` fixed cost.
    pub syncthreads_base_cy: f64,
    /// `__syncthreads()` cost per additional resident warp in the
    /// block (warps wait for each other — Fig. 7).
    pub syncthreads_per_warp_cy: f64,
    /// `__syncwarp()` cost (constant — Fig. 8).
    pub syncwarp_cy: f64,
    /// Resident threads per SM the device sustains at full issue speed
    /// for warp-local ops; beyond it, per-warp throughput drops
    /// "somewhat" (Fig. 8: 512 on the RTX 2070 SUPER, 256 on the
    /// RTX 4090 / A100).
    pub full_speed_threads_per_sm: u32,
    /// Relative slowdown per `full_speed_threads_per_sm` of excess
    /// load.
    pub issue_slowdown_slope: f64,
    /// One 32-bit shuffle instruction (64-bit types issue two).
    pub shfl_cy: f64,
    /// Warp vote cost (slightly above `__syncwarp()` — §V-B4).
    pub vote_cy: f64,
    /// `__reduce_max_sync()` cost (compute capability ≥ 8.0).
    pub warp_reduce_cy: f64,
    /// Device-scope (L2) atomic service costs.
    pub atomic_device: AtomicService,
    /// Block-scope (SM-local) atomic service costs.
    pub atomic_block: AtomicService,
    /// Extra cost of `atomicCAS()`/`atomicExch()` beyond an add (the
    /// compare/swap data path).
    pub cas_extra_cy: f64,
    /// Same-address contention: arbitration cycles per queued request,
    /// saturating at [`GpuModel::contention_sat`].
    pub same_addr_arb_cy: f64,
    /// Requests to the same address serviced without queueing (the
    /// constant-throughput region: 4 aggregated requests for
    /// `atomicAdd`, 4 threads for a 1-block `atomicCAS` — Figs. 9, 11).
    pub same_addr_free_requests: u32,
    /// Saturation bound for the same-address arbitration term.
    pub contention_sat: u32,
    /// Small unbounded per-request tax past saturation.
    pub request_tax_cy: f64,
    /// Whether the driver performs warp-aggregation of same-address
    /// `atomicAdd` (a reduction-and-broadcast within the warp, then one
    /// atomic per warp — Fig. 9). Off only in the ablation bench.
    pub warp_aggregation: bool,
    /// Cost of the in-warp reduction performed by an aggregated atomic.
    pub warp_agg_reduce_cy: f64,
    /// Cycles per distinct 128-byte L2 line transaction of one warp's
    /// atomic instruction (pipelined).
    pub l2_tx_cy: f64,
    /// L2 bandwidth: line transactions the *whole device* can absorb
    /// per interval before queueing sets in. The L2 is a shared, fixed
    /// resource — this is why 128 blocks see lower per-thread atomic
    /// throughput than 1 block ("more SMs are sharing the L2 cache
    /// bandwidth", Fig. 10).
    pub l2_tx_capacity: f64,
    /// Queue cycles per unit of excess L2 pressure (saturating).
    pub l2_queue_cy: f64,
    /// Saturation bound for the L2 pressure term.
    pub l2_queue_sat: f64,
    /// Per-SM atomic-issue queueing: cycles per additional resident
    /// warp on the issuing SM ("a fixed number of atomics that the
    /// hardware can perform per time unit", Fig. 10).
    pub sm_atomic_queue_cy: f64,
    /// Device-wide `__threadfence()` cost (constant — Fig. 14).
    pub fence_device_cy: f64,
    /// `__threadfence_block()` cost (≈ 0 for in-order block-local
    /// streams — §V-B3).
    pub fence_block_cy: f64,
    /// `__threadfence_system()` cost (device fence + PCIe crossing).
    pub fence_system_cy: f64,
    /// Relative jitter of the system-scope fence ("more erratic since
    /// it involves communication with the CPU across the PCIe bus").
    pub fence_system_jitter: f64,
    /// Plain register ALU op.
    pub alu_cy: f64,
    /// Fixed overhead per additional serialized divergent path (the
    /// reconvergence bookkeeping; Bialas & Strzelecki found it
    /// essentially constant per branch).
    pub divergence_penalty_cy: f64,
    /// Plain global-memory update visible cost (store-buffered).
    pub update_cy: f64,
    /// Plain global-memory read cost (L2 hit, pipelined).
    pub read_cy: f64,
    /// L2 line size in bytes.
    pub l2_line_bytes: u32,
    /// Device memory read bandwidth in bytes per cycle (used by the
    /// whole-program reduction model, where streaming the input is the
    /// bandwidth-bound phase).
    pub mem_bw_bytes_per_cy: f64,
    /// Sustained issue interval of the device atomic unit for
    /// back-to-back same-address atomics (one-shot serialization, used
    /// by the reduction model: total atomic time ≈ count × this).
    pub atomic_unit_issue_cy: f64,
    /// Same, for the per-SM block-scoped atomic units.
    pub block_atomic_unit_issue_cy: f64,
    /// Compute capability (for feature gating, e.g. `WarpReduce`).
    pub compute_capability: u32,
}

impl GpuModel {
    /// Builds the model for one of the paper's GPUs.
    #[must_use]
    pub fn for_spec(spec: &GpuSpec) -> Self {
        // Fig. 8: the RTX 2070 SUPER holds full syncwarp speed to 512
        // resident threads/SM; the 4090 and A100 to 256.
        let full_speed = if spec.cc_number() < 80 { 512 } else { 256 };
        GpuModel {
            warp_size: spec.warp_size,
            syncthreads_base_cy: 25.0,
            syncthreads_per_warp_cy: 9.0,
            syncwarp_cy: 12.0,
            full_speed_threads_per_sm: full_speed,
            issue_slowdown_slope: 0.18,
            shfl_cy: 14.0,
            vote_cy: 16.0,
            warp_reduce_cy: 20.0,
            atomic_device: AtomicService {
                i32_cy: 36.0,
                u64_cy: 58.0,
                f32_cy: 90.0,
                f64_cy: 98.0,
            },
            atomic_block: AtomicService {
                i32_cy: 14.0,
                u64_cy: 22.0,
                f32_cy: 30.0,
                f64_cy: 34.0,
            },
            cas_extra_cy: 10.0,
            same_addr_arb_cy: 30.0,
            same_addr_free_requests: 4,
            contention_sat: 48,
            request_tax_cy: 0.35,
            warp_aggregation: true,
            warp_agg_reduce_cy: 22.0,
            l2_tx_cy: 2.0,
            l2_tx_capacity: 256.0,
            l2_queue_cy: 5.0,
            l2_queue_sat: 40.0,
            sm_atomic_queue_cy: 2.5,
            fence_device_cy: 250.0,
            fence_block_cy: 2.0,
            fence_system_cy: 420.0,
            fence_system_jitter: 0.25,
            alu_cy: 2.0,
            divergence_penalty_cy: 6.0,
            update_cy: 8.0,
            read_cy: 10.0,
            l2_line_bytes: 128,
            // ~1 TB/s at the calibration clock; scaled by SM count so
            // smaller devices stream proportionally slower.
            mem_bw_bytes_per_cy: 3.0 * f64::from(spec.sms),
            atomic_unit_issue_cy: 0.75,
            block_atomic_unit_issue_cy: 0.75,
            compute_capability: spec.cc_number(),
        }
    }

    /// A stable 64-bit digest of every model constant (FNV-1a over the
    /// canonical debug rendering). Two models agree on the digest iff
    /// they would produce identical simulations, which is what lets
    /// the sweep scheduler use it as part of a content-addressed cache
    /// key: recalibrating any constant invalidates cached results.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        // Local FNV-1a: the digest must be process- and
        // platform-independent, unlike `std::hash`.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Issue-bandwidth slowdown factor at `demand` "32-bit-op threads"
    /// resident on an SM (64-bit shuffles count double — Fig. 15).
    #[must_use]
    pub fn issue_slowdown(&self, demand: f64) -> f64 {
        let full = f64::from(self.full_speed_threads_per_sm);
        if demand <= full {
            1.0
        } else {
            1.0 + self.issue_slowdown_slope * (demand - full) / full
        }
    }

    /// Same-address queueing delay for `requests` concurrent requests.
    #[must_use]
    pub fn same_addr_delay(&self, requests: u32) -> f64 {
        let queued = requests.saturating_sub(self.same_addr_free_requests);
        self.same_addr_arb_cy * f64::from(queued.min(self.contention_sat))
            + self.request_tax_cy * f64::from(queued)
    }

    /// L2 bandwidth queueing delay for `pressure` line transactions per
    /// interval, against the device's fixed L2 capacity.
    #[must_use]
    pub fn l2_queue_delay(&self, pressure: f64) -> f64 {
        if pressure <= self.l2_tx_capacity {
            0.0
        } else {
            let excess = (pressure / self.l2_tx_capacity - 1.0).min(self.l2_queue_sat);
            self.l2_queue_cy * excess
        }
    }

    /// Same-address queueing scale factor per data type: the integer
    /// atomic units are more plentiful/faster, so integer requests
    /// drain quicker under contention — this keeps Fig. 9's type gap
    /// visible at high thread counts, not just in the service time.
    #[must_use]
    pub fn dtype_contention_factor(&self, dtype: DType) -> f64 {
        match dtype {
            DType::I32 => 1.0,
            DType::U64 => 1.15,
            DType::F32 => 1.4,
            DType::F64 => 1.5,
        }
    }

    /// Whether `__reduce_max_sync` and friends exist on this device
    /// (compute capability ≥ 8.0, per Listing 1's Reduction 4).
    #[must_use]
    pub fn has_warp_reduce(&self) -> bool {
        self.compute_capability >= 80
    }

    /// Whether block-scoped atomics exist (compute capability ≥ 6.0).
    #[must_use]
    pub fn has_block_atomics(&self) -> bool {
        self.compute_capability >= 60
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{SYSTEM1, SYSTEM2, SYSTEM3};

    #[test]
    fn full_speed_thresholds_match_fig8() {
        assert_eq!(
            GpuModel::for_spec(&SYSTEM1.gpu).full_speed_threads_per_sm,
            512
        );
        assert_eq!(
            GpuModel::for_spec(&SYSTEM2.gpu).full_speed_threads_per_sm,
            256
        );
        assert_eq!(
            GpuModel::for_spec(&SYSTEM3.gpu).full_speed_threads_per_sm,
            256
        );
    }

    #[test]
    fn atomic_dtype_ordering_matches_fig9() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let a = &m.atomic_device;
        assert!(a.i32_cy < a.u64_cy, "int beats ull");
        assert!(a.u64_cy < a.f32_cy, "ull beats float");
        assert!(a.f32_cy <= a.f64_cy, "float ≤ double");
    }

    #[test]
    fn block_atomics_cheaper_than_device() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        for dt in DType::ALL {
            assert!(
                m.atomic_block.for_dtype(dt) < m.atomic_device.for_dtype(dt),
                "{dt}"
            );
        }
    }

    #[test]
    fn issue_slowdown_flat_then_rising() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        assert_eq!(m.issue_slowdown(100.0), 1.0);
        assert_eq!(m.issue_slowdown(256.0), 1.0);
        assert!(m.issue_slowdown(512.0) > 1.0);
        assert!(m.issue_slowdown(1024.0) > m.issue_slowdown(512.0));
    }

    #[test]
    fn same_addr_delay_free_region_then_saturation() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        assert_eq!(m.same_addr_delay(1), 0.0);
        assert_eq!(m.same_addr_delay(4), 0.0);
        assert!(m.same_addr_delay(5) > 0.0);
        let d_mid = m.same_addr_delay(20) - m.same_addr_delay(19);
        let d_far = m.same_addr_delay(200) - m.same_addr_delay(199);
        assert!(d_far < d_mid, "arbitration term must saturate");
    }

    #[test]
    fn l2_queue_zero_until_capacity() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        assert_eq!(m.l2_queue_delay(10.0), 0.0);
        assert_eq!(m.l2_queue_delay(m.l2_tx_capacity), 0.0);
        assert!(m.l2_queue_delay(10_000.0) > 0.0);
        // The term saturates rather than diverging.
        let hi = m.l2_queue_delay(1e7);
        let vhi = m.l2_queue_delay(1e9);
        assert_eq!(hi, vhi);
    }

    #[test]
    fn feature_gates_by_compute_capability() {
        assert!(!GpuModel::for_spec(&SYSTEM1.gpu).has_warp_reduce()); // cc 7.5
        assert!(GpuModel::for_spec(&SYSTEM2.gpu).has_warp_reduce()); // cc 8.0
        assert!(GpuModel::for_spec(&SYSTEM1.gpu).has_block_atomics());
    }
}
