//! Cost explanation for GPU operations: decompose one op's modeled
//! cycle count into its mechanism components, cross-checked against the
//! engine.

use syncperf_core::{GpuOp, Result, Scope, Target};

use crate::config::GpuModel;
use crate::cost::{self, AtomicKind};
use crate::engine;
use crate::occupancy::Occupancy;

/// One GPU op's cycle count, split by mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuCostBreakdown {
    /// Human-readable op description.
    pub op: String,
    /// Base service/issue cycles (dtype-dependent for atomics,
    /// instruction-count-dependent for shuffles).
    pub service_cy: f64,
    /// Warp-aggregation pre-reduction (aggregated atomics only).
    pub aggregation_cy: f64,
    /// Same-address queueing delay.
    pub same_addr_cy: f64,
    /// Per-SM atomic-issue queueing (private-array atomics).
    pub sm_queue_cy: f64,
    /// L2 line transactions + bandwidth queueing.
    pub l2_cy: f64,
    /// SM issue-bandwidth slowdown applied to warp-local ops
    /// (1.0 = below the full-speed threshold).
    pub issue_slowdown: f64,
    /// Concurrent same-address requests (atomics on shared scalars).
    pub requests: u32,
}

impl GpuCostBreakdown {
    /// Total modeled cycles.
    #[must_use]
    pub fn total_cy(&self) -> f64 {
        self.service_cy + self.aggregation_cy + self.same_addr_cy + self.sm_queue_cy + self.l2_cy
    }

    /// Renders one formatted line.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<52} {:>8.1} cy = service {:>6.1} + agg {:>5.1} + same-addr {:>7.1} + sm-q \
             {:>5.1} + l2 {:>6.1}   [slowdown x{:.2}, {} request(s)]",
            self.op,
            self.total_cy(),
            self.service_cy,
            self.aggregation_cy,
            self.same_addr_cy,
            self.sm_queue_cy,
            self.l2_cy,
            self.issue_slowdown,
            self.requests
        )
    }
}

/// Explains one op's cost at the given occupancy.
///
/// # Errors
///
/// Same errors as [`engine::op_cycles`] (unsupported dtype or compute
/// capability).
pub fn explain_op(m: &GpuModel, occ: &Occupancy, op: &GpuOp) -> Result<GpuCostBreakdown> {
    // Validate through the engine first so explain rejects exactly what
    // execution rejects.
    let engine_total = engine::op_cycles(m, occ, op)?;

    let mut b = GpuCostBreakdown {
        op: format!("{op:?}"),
        service_cy: 0.0,
        aggregation_cy: 0.0,
        same_addr_cy: 0.0,
        sm_queue_cy: 0.0,
        l2_cy: 0.0,
        issue_slowdown: 1.0,
        requests: 0,
    };

    if let Some((kind, dtype, scope, target)) = cost::atomic_kind(op) {
        let (service_base, arb_factor) = match scope {
            Scope::Block => (m.atomic_block.for_dtype(dtype), 0.4),
            _ => (m.atomic_device.for_dtype(dtype), 1.0),
        };
        b.service_cy = service_base
            + match kind {
                AtomicKind::Add => 0.0,
                _ => m.cas_extra_cy,
            };
        match target {
            Target::SharedScalar(_) => {
                let aggregated = kind == AtomicKind::Add && m.warp_aggregation;
                b.requests = match (scope, aggregated) {
                    (Scope::Block, true) => occ.warps_per_block,
                    (Scope::Block, false) => occ.threads_per_block,
                    (_, true) => occ.total_resident_warps,
                    (_, false) => occ.total_resident_threads,
                };
                if aggregated {
                    b.aggregation_cy = m.warp_agg_reduce_cy;
                }
                b.same_addr_cy =
                    m.same_addr_delay(b.requests) * arb_factor * m.dtype_contention_factor(dtype);
            }
            Target::Private { stride, .. } => {
                let k = cost::lines_per_warp(m, occ, dtype, stride);
                b.sm_queue_cy =
                    m.sm_atomic_queue_cy * f64::from(occ.warps_per_sm.saturating_sub(1));
                let pressure = f64::from(occ.total_resident_warps) * k;
                b.l2_cy = k * m.l2_tx_cy + m.l2_queue_delay(pressure) * arb_factor;
            }
        }
    } else {
        b.issue_slowdown = m.issue_slowdown(f64::from(occ.threads_per_sm));
        b.service_cy = engine_total;
    }

    debug_assert!(
        (b.total_cy() - engine_total).abs() < 1e-9 * engine_total.max(1.0),
        "breakdown out of sync with the engine: {b:?} vs {engine_total}"
    );
    Ok(b)
}

/// Explains every op of a body and renders a report.
///
/// # Errors
///
/// Propagates [`explain_op`] errors.
pub fn explain_body(m: &GpuModel, occ: &Occupancy, body: &[GpuOp]) -> Result<String> {
    let mut out = format!(
        "cost breakdown at {} blocks x {} threads ({} resident warps/SM):\n",
        occ.blocks, occ.threads_per_block, occ.warps_per_sm
    );
    for op in body {
        out.push_str(&explain_op(m, occ, op)?.render());
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, ShflVariant, SYSTEM3};

    fn occ(blocks: u32, threads: u32) -> Occupancy {
        Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap()
    }

    #[test]
    fn breakdown_consistent_with_engine_across_kernels() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let bodies = [
            kernel::cuda_syncthreads().baseline,
            kernel::cuda_syncwarp().baseline,
            kernel::cuda_atomic_add_scalar(DType::F32).baseline,
            kernel::cuda_atomic_add_array(DType::I32, 32).baseline,
            kernel::cuda_atomic_cas_scalar(DType::U64).baseline,
            kernel::cuda_shfl(DType::F64, ShflVariant::Xor).baseline,
        ];
        for body in &bodies {
            for (blocks, threads) in [(1u32, 32u32), (2, 64), (128, 1024)] {
                let o = occ(blocks, threads);
                let total: f64 = body
                    .iter()
                    .map(|op| explain_op(&m, &o, op).unwrap().total_cy())
                    .sum();
                let engine: f64 = body
                    .iter()
                    .map(|op| engine::op_cycles(&m, &o, op).unwrap())
                    .sum();
                assert!((total - engine).abs() < 1e-9 * engine.max(1.0), "{body:?}");
            }
        }
    }

    #[test]
    fn aggregated_add_shows_aggregation_component() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let body = kernel::cuda_atomic_add_scalar(DType::I32).baseline;
        let b = explain_op(&m, &occ(2, 1024), &body[0]).unwrap();
        assert_eq!(b.aggregation_cy, m.warp_agg_reduce_cy);
        assert_eq!(b.requests, 64, "2 blocks x 32 warps after aggregation");
        assert!(b.same_addr_cy > 0.0);
    }

    #[test]
    fn cas_shows_no_aggregation_and_thread_requests() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let body = kernel::cuda_atomic_cas_scalar(DType::I32).baseline;
        let b = explain_op(&m, &occ(1, 64), &body[0]).unwrap();
        assert_eq!(b.aggregation_cy, 0.0);
        assert_eq!(b.requests, 64, "one request per thread");
    }

    #[test]
    fn private_array_blames_l2_and_sm_queue() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let body = kernel::cuda_atomic_add_array(DType::I32, 32).baseline;
        let b = explain_op(&m, &occ(128, 1024), &body[0]).unwrap();
        assert!(b.l2_cy > 0.0);
        assert!(b.sm_queue_cy > 0.0);
        assert_eq!(
            b.same_addr_cy, 0.0,
            "distinct addresses never queue on one another"
        );
    }

    #[test]
    fn warp_local_ops_report_slowdown() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let body = kernel::cuda_syncwarp().baseline;
        let below = explain_op(&m, &occ(128, 256), &body[0]).unwrap();
        let above = explain_op(&m, &occ(128, 1024), &body[0]).unwrap();
        assert_eq!(below.issue_slowdown, 1.0);
        assert!(above.issue_slowdown > 1.0);
    }

    #[test]
    fn explain_rejects_what_engine_rejects() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let bad = kernel::cuda_atomic_cas_scalar(DType::F64).baseline;
        assert!(explain_op(&m, &occ(1, 32), &bad[0]).is_err());
    }

    #[test]
    fn body_report_lists_each_op() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let body = kernel::cuda_atomic_add_scalar(DType::I32).test;
        let report = explain_body(&m, &occ(64, 256), &body).unwrap();
        assert_eq!(report.lines().count(), body.len() + 1);
        assert!(report.contains("AtomicAdd"));
    }
}
