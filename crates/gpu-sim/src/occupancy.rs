//! Block scheduling and SM occupancy.
//!
//! Thread blocks are assigned to SMs round-robin. An SM holds as many
//! blocks concurrently as its resident-thread and resident-block limits
//! allow; surplus blocks run in later waves. All contention terms in
//! the model depend on what is *resident simultaneously*, which this
//! module computes.

use syncperf_core::{GpuSpec, Result, SyncPerfError};

/// Hardware limit on resident blocks per SM (16 on the modeled
/// generations at the block sizes the paper sweeps).
pub const MAX_BLOCKS_PER_SM: u32 = 16;

/// The occupancy picture of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Launched blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Warps per block (`ceil(threads / 32)`).
    pub warps_per_block: u32,
    /// SMs receiving at least one block.
    pub sms_used: u32,
    /// Blocks resident simultaneously on the busiest SM.
    pub resident_blocks_per_sm: u32,
    /// Threads resident simultaneously on the busiest SM.
    pub threads_per_sm: u32,
    /// Warps resident simultaneously across the whole device.
    pub total_resident_warps: u32,
    /// Threads resident simultaneously across the whole device.
    pub total_resident_threads: u32,
    /// Warps resident simultaneously on the busiest SM.
    pub warps_per_sm: u32,
    /// Number of sequential waves needed to drain all blocks.
    pub waves: u32,
}

impl Occupancy {
    /// Computes occupancy for a launch of `blocks × threads_per_block`
    /// on `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`SyncPerfError::InvalidParams`] if the block size is
    /// zero or exceeds the device's thread-per-block limit.
    pub fn compute(spec: &GpuSpec, blocks: u32, threads_per_block: u32) -> Result<Self> {
        if threads_per_block == 0 || blocks == 0 {
            return Err(SyncPerfError::InvalidParams(
                "blocks and threads must be > 0".into(),
            ));
        }
        if threads_per_block > spec.max_threads_per_block {
            return Err(SyncPerfError::InvalidParams(format!(
                "{threads_per_block} threads per block exceeds the device limit of {}",
                spec.max_threads_per_block
            )));
        }
        let warps_per_block = threads_per_block.div_ceil(spec.warp_size);
        let sms_used = blocks.min(spec.sms);
        // Blocks assigned to the busiest SM (round-robin).
        let assigned_max = blocks.div_ceil(spec.sms);
        // How many of those can be resident at once.
        let by_threads = (spec.max_threads_per_sm / threads_per_block).max(1);
        let resident = assigned_max.min(by_threads).min(MAX_BLOCKS_PER_SM);
        let waves = assigned_max.div_ceil(resident);
        let threads_per_sm = resident * threads_per_block;
        // Total warps resident across the device in a full wave.
        let resident_blocks_device = blocks.min(resident * sms_used);
        let total_resident_warps = resident_blocks_device * warps_per_block;
        Ok(Occupancy {
            blocks,
            threads_per_block,
            warps_per_block,
            sms_used,
            resident_blocks_per_sm: resident,
            threads_per_sm,
            total_resident_warps,
            total_resident_threads: resident_blocks_device * threads_per_block,
            warps_per_sm: resident * warps_per_block,
            waves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{SYSTEM1, SYSTEM3};

    #[test]
    fn single_block_uses_one_sm() {
        let o = Occupancy::compute(&SYSTEM3.gpu, 1, 256).unwrap();
        assert_eq!(o.sms_used, 1);
        assert_eq!(o.resident_blocks_per_sm, 1);
        assert_eq!(o.threads_per_sm, 256);
        assert_eq!(o.total_resident_warps, 8);
        assert_eq!(o.waves, 1);
    }

    #[test]
    fn full_config_one_block_per_sm() {
        // 128 blocks on the 128-SM RTX 4090.
        let o = Occupancy::compute(&SYSTEM3.gpu, 128, 1024).unwrap();
        assert_eq!(o.sms_used, 128);
        assert_eq!(o.resident_blocks_per_sm, 1);
        assert_eq!(o.threads_per_sm, 1024);
        assert_eq!(o.waves, 1);
    }

    #[test]
    fn double_config_two_blocks_per_sm_until_they_do_not_fit() {
        // 256 blocks of 512 threads on the 4090 (1536 threads/SM max):
        // 2 resident blocks of 512 fit.
        let o = Occupancy::compute(&SYSTEM3.gpu, 256, 512).unwrap();
        assert_eq!(o.resident_blocks_per_sm, 2);
        assert_eq!(o.threads_per_sm, 1024);
        assert_eq!(o.waves, 1);
        // At 1024 threads per block only one block fits: two waves
        // ("the double block experiments allocate 2 blocks to each SM…
        // except at 1024 threads" — Fig. 8 discussion).
        let o = Occupancy::compute(&SYSTEM3.gpu, 256, 1024).unwrap();
        assert_eq!(o.resident_blocks_per_sm, 1);
        assert_eq!(o.waves, 2);
    }

    #[test]
    fn warps_round_up() {
        let o = Occupancy::compute(&SYSTEM3.gpu, 1, 33).unwrap();
        assert_eq!(o.warps_per_block, 2);
        let o = Occupancy::compute(&SYSTEM3.gpu, 1, 32).unwrap();
        assert_eq!(o.warps_per_block, 1);
        let o = Occupancy::compute(&SYSTEM3.gpu, 1, 1).unwrap();
        assert_eq!(o.warps_per_block, 1);
    }

    #[test]
    fn resident_block_cap_applies() {
        // 4090, 64 blocks of 1 thread: all on distinct SMs, 1 each.
        let o = Occupancy::compute(&SYSTEM3.gpu, 64, 1).unwrap();
        assert_eq!(o.resident_blocks_per_sm, 1);
        // 2070 SUPER (40 SMs), 80 blocks of 32: 2 per SM.
        let o = Occupancy::compute(&SYSTEM1.gpu, 80, 32).unwrap();
        assert_eq!(o.resident_blocks_per_sm, 2);
        assert_eq!(o.sms_used, 40);
        // 640 tiny blocks on 40 SMs: capped at 16 resident.
        let o = Occupancy::compute(&SYSTEM1.gpu, 640, 1).unwrap();
        assert_eq!(o.resident_blocks_per_sm, 16);
    }

    #[test]
    fn rejects_oversized_blocks() {
        assert!(Occupancy::compute(&SYSTEM3.gpu, 1, 2048).is_err());
        assert!(Occupancy::compute(&SYSTEM3.gpu, 0, 32).is_err());
        assert!(Occupancy::compute(&SYSTEM3.gpu, 1, 0).is_err());
    }

    #[test]
    fn total_resident_warps_device_wide() {
        // 2 blocks of 64 threads: 2 SMs, 2 warps each.
        let o = Occupancy::compute(&SYSTEM3.gpu, 2, 64).unwrap();
        assert_eq!(o.total_resident_warps, 4);
        assert_eq!(o.total_resident_threads, 128);
        assert_eq!(o.warps_per_sm, 2);
    }
}
