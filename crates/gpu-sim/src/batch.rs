//! Batched struct-of-arrays evaluation of many occupancy points of one
//! kernel body.
//!
//! A GPU sweep varies `(blocks, threads)` while the body stays fixed;
//! the engine's per-run work is the per-op cost sum over the body. The
//! batch evaluator flips the loop nest: for each op it fills one
//! contiguous per-point units row and accumulates it into the running
//! per-point totals — a flat `u64` pass over adjacent lanes, one row
//! per op, matching the struct-of-arrays layout of the CPU-side
//! [`crate::cost`]-free trace tables. Each point's accumulation visits
//! ops in body order, so the quantized sum (and therefore the result)
//! is bit-identical to [`crate::engine::run_observed`] per point.

use syncperf_core::{GpuOp, Result, Scope};

use crate::config::GpuModel;
use crate::engine::{op_cycles, quantize_cycles, GpuEngineResult};
use crate::occupancy::Occupancy;

/// Evaluates `body` at every occupancy point in one batched pass.
///
/// Returns one result per point, in order, each bit-identical to
/// [`crate::engine::run_observed`] with a disabled recorder at that
/// point. Fails if any point rejects an op (unsupported dtype or
/// capability) — callers fall back to the per-point path, which
/// reproduces the exact error for the offending point.
///
/// # Errors
///
/// Rejects `reps == 0` and empty batches; propagates the first
/// unsupported-op error of any point.
pub fn run_batch(
    m: &GpuModel,
    occs: &[Occupancy],
    body: &[GpuOp],
    reps: u64,
) -> Result<Vec<GpuEngineResult>> {
    if reps == 0 {
        return Err(syncperf_core::SyncPerfError::InvalidParams(
            "reps must be > 0".into(),
        ));
    }
    if occs.is_empty() {
        return Err(syncperf_core::SyncPerfError::InvalidParams(
            "batch needs at least one point".into(),
        ));
    }
    let n = occs.len();
    let mut units_per_rep = vec![0u64; n];
    let mut row = vec![0u64; n];
    let mut has_system_fence = false;
    for op in body {
        for (i, occ) in occs.iter().enumerate() {
            row[i] = quantize_cycles(op_cycles(m, occ, op)?);
        }
        for i in 0..n {
            units_per_rep[i] += row[i];
        }
        if matches!(
            op,
            GpuOp::ThreadFence {
                scope: Scope::System
            }
        ) {
            has_system_fence = true;
        }
    }
    Ok(occs
        .iter()
        .zip(&units_per_rep)
        .map(|(occ, &upr)| GpuEngineResult {
            total_units: upr * reps,
            units_per_rep: upr,
            total_threads: u64::from(occ.blocks) * u64::from(occ.threads_per_block),
            has_system_fence,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_observed;
    use syncperf_core::obs::Recorder;
    use syncperf_core::{kernel, DType, Scope, SYSTEM1};

    fn occupancies(points: &[(u32, u32)]) -> Vec<Occupancy> {
        points
            .iter()
            .map(|&(b, t)| Occupancy::compute(&SYSTEM1.gpu, b, t).unwrap())
            .collect()
    }

    #[test]
    fn batch_matches_per_point_runs() {
        let m = GpuModel::for_spec(&SYSTEM1.gpu);
        let rec = Recorder::disabled();
        let points = [(1u32, 32u32), (2, 64), (8, 128), (64, 256), (160, 1024)];
        let occs = occupancies(&points);
        for body in [
            kernel::cuda_syncthreads().test,
            kernel::cuda_threadfence(Scope::System, DType::I32, 1).test,
            kernel::cuda_atomic_add_scalar(DType::F64).test,
        ] {
            let batch = run_batch(&m, &occs, &body, 1000).unwrap();
            for (occ, got) in occs.iter().zip(&batch) {
                let single = run_observed(&m, occ, &body, 1000, &rec).unwrap();
                assert_eq!(got, &single);
            }
        }
    }

    #[test]
    fn batch_propagates_unsupported_ops() {
        let m = GpuModel::for_spec(&SYSTEM1.gpu);
        let occs = occupancies(&[(2, 64), (4, 128)]);
        let body = kernel::cuda_atomic_cas_scalar(DType::F32).test;
        assert!(run_batch(&m, &occs, &body, 10).is_err());
    }

    #[test]
    fn batch_rejects_bad_inputs() {
        let m = GpuModel::for_spec(&SYSTEM1.gpu);
        let occs = occupancies(&[(2, 64)]);
        let body = kernel::cuda_syncthreads().baseline;
        assert!(run_batch(&m, &occs, &body, 0).is_err());
        assert!(run_batch(&m, &[], &body, 10).is_err());
    }
}
