//! Whole-program simulation of the paper's Listing 1: five ways to
//! implement a maximum reduction in CUDA (Section II-C).
//!
//! Unlike the microbenchmark engine — which measures one primitive in
//! steady state — a whole reduction is a one-shot program whose cost
//! decomposes into:
//!
//! 1. a **streaming phase** (reading the input, bandwidth-bound),
//! 2. **per-wave overheads** (lead-in instructions, barriers, latency),
//! 3. **atomic serialization** — all same-address atomics drain through
//!    one atomic unit (`count × issue interval`); block-scoped atomics
//!    drain through per-SM units in parallel.
//!
//! This decomposition reproduces the paper's non-intuitive ordering:
//! R3 < R4 < R1 < R2 (runtime), with the persistent-thread R5 fastest.

use syncperf_core::{GpuSpec, Result, SyncPerfError};

use crate::config::GpuModel;
use crate::occupancy::Occupancy;

/// The five reduction implementations of Listing 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionStrategy {
    /// Reduction 1 (cc ≥ 1.3): every thread `atomicMax(&result, v)`.
    GlobalAtomic,
    /// Reduction 2 (cc ≥ 3.0): explicit `__shfl_xor_sync` tree, then
    /// one global atomic per warp.
    ShflThenGlobalAtomic,
    /// Reduction 3 (cc ≥ 6.0): block-scoped atomics into shared memory,
    /// then one global atomic per block.
    BlockAtomicThenGlobal,
    /// Reduction 4 (cc ≥ 8.0): `__reduce_max_sync`, block atomic per
    /// warp, then one global atomic per block.
    WarpReduceThenBlock,
    /// Reduction 5: persistent threads — a grid-stride loop computes
    /// thread-local results first, then Reduction 3's tail.
    PersistentThreads,
}

impl ReductionStrategy {
    /// All five strategies in Listing 1 order.
    pub const ALL: [ReductionStrategy; 5] = [
        ReductionStrategy::GlobalAtomic,
        ReductionStrategy::ShflThenGlobalAtomic,
        ReductionStrategy::BlockAtomicThenGlobal,
        ReductionStrategy::WarpReduceThenBlock,
        ReductionStrategy::PersistentThreads,
    ];

    /// Minimum compute capability (×10) required.
    #[must_use]
    pub fn min_cc(self) -> u32 {
        match self {
            ReductionStrategy::GlobalAtomic => 13,
            ReductionStrategy::ShflThenGlobalAtomic => 30,
            ReductionStrategy::BlockAtomicThenGlobal | ReductionStrategy::PersistentThreads => 60,
            ReductionStrategy::WarpReduceThenBlock => 80,
        }
    }

    /// Paper-facing label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReductionStrategy::GlobalAtomic => "R1: global atomics",
            ReductionStrategy::ShflThenGlobalAtomic => "R2: shfl + global atomic/warp",
            ReductionStrategy::BlockAtomicThenGlobal => "R3: block atomics + global/block",
            ReductionStrategy::WarpReduceThenBlock => "R4: reduce_max_sync + block + global",
            ReductionStrategy::PersistentThreads => "R5: persistent threads",
        }
    }
}

/// Launch configuration for a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionConfig {
    /// Input elements (4-byte ints, as in Listing 1).
    pub size: u64,
    /// Threads per block.
    pub block_size: u32,
    /// Grid blocks used by the persistent-thread variant (R1–R4 launch
    /// `size / block_size` blocks, one element per thread).
    pub persistent_grid_blocks: u32,
}

impl ReductionConfig {
    /// One-million-element input with the usual 256-thread blocks and a
    /// 2-blocks-per-SM persistent grid.
    #[must_use]
    pub fn megabyte_input(spec: &GpuSpec) -> Self {
        ReductionConfig {
            size: 1 << 20,
            block_size: 256,
            persistent_grid_blocks: spec.sms * 2,
        }
    }
}

/// Cost breakdown of one simulated reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionReport {
    /// Which strategy ran.
    pub strategy: ReductionStrategy,
    /// Total kernel cycles.
    pub total_cycles: f64,
    /// Bandwidth-bound streaming cycles.
    pub stream_cycles: f64,
    /// Same-address global-atomic serialization cycles.
    pub global_atomic_cycles: f64,
    /// Block-scoped atomic serialization cycles (per-SM units).
    pub block_atomic_cycles: f64,
    /// Per-wave overhead cycles (lead-ins, barriers, latencies).
    pub overhead_cycles: f64,
    /// Number of device-wide atomics issued (after aggregation).
    pub global_atomics: u64,
    /// Number of block-scoped atomics issued (after aggregation).
    pub block_atomics: u64,
    /// Block-wide barriers per block.
    pub barriers_per_block: u32,
}

/// Simulates one reduction strategy.
///
/// # Errors
///
/// Returns [`SyncPerfError::UnsupportedOp`] if the device's compute
/// capability is below the strategy's requirement, and
/// [`SyncPerfError::InvalidParams`] for degenerate configurations.
pub fn simulate_reduction(
    m: &GpuModel,
    spec: &GpuSpec,
    strategy: ReductionStrategy,
    cfg: &ReductionConfig,
) -> Result<ReductionReport> {
    if m.compute_capability < strategy.min_cc() {
        return Err(SyncPerfError::UnsupportedOp {
            op: strategy.label().into(),
            platform: format!("gpu-sim cc {}", m.compute_capability),
        });
    }
    if cfg.size == 0 || cfg.block_size == 0 || cfg.persistent_grid_blocks == 0 {
        return Err(SyncPerfError::InvalidParams(
            "empty reduction configuration".into(),
        ));
    }

    let elem_bytes = 4u64; // Listing 1 reduces `int` data
    let warp = u64::from(m.warp_size);
    let n = cfg.size;

    // Streaming phase: the input must cross the memory system once.
    let stream_cycles = (n * elem_bytes) as f64 / m.mem_bw_bytes_per_cy;

    let one_elem_blocks = n.div_ceil(u64::from(cfg.block_size)) as u32;
    let (blocks, elems_per_thread) = match strategy {
        ReductionStrategy::PersistentThreads => {
            let total_threads = u64::from(cfg.persistent_grid_blocks) * u64::from(cfg.block_size);
            (cfg.persistent_grid_blocks, n.div_ceil(total_threads))
        }
        _ => (one_elem_blocks, 1),
    };
    let occ = Occupancy::compute(spec, blocks.min(65_535), cfg.block_size)?;
    let waves =
        f64::from(occ.waves) * (f64::from(blocks) / f64::from(occ.blocks.min(blocks))).max(1.0);

    let warps_total = u64::from(blocks) * u64::from(occ.warps_per_block);

    // Atomic counts after hardware warp aggregation (adds/maxes to the
    // same address are combined within a warp — Fig. 9).
    let (global_atomics, block_atomics, barriers, lead_in_cy) = match strategy {
        ReductionStrategy::GlobalAtomic => {
            let ga = if m.warp_aggregation {
                n.div_ceil(warp)
            } else {
                n
            };
            (ga, 0, 0, m.warp_agg_reduce_cy)
        }
        ReductionStrategy::ShflThenGlobalAtomic => {
            // `__any_sync` guard, log2(32) = 5 explicit shuffles, then
            // one atomic per warp (Listing 1 lines 9-13).
            (warps_total, 0, 0, m.vote_cy + 5.0 * m.shfl_cy)
        }
        ReductionStrategy::BlockAtomicThenGlobal => {
            let ba = if m.warp_aggregation {
                n.div_ceil(warp)
            } else {
                n
            };
            (u64::from(blocks), ba, 2, m.warp_agg_reduce_cy)
        }
        ReductionStrategy::WarpReduceThenBlock => {
            // `__any_sync` guard plus the explicit `__reduce_max_sync`
            // (Listing 1 lines 26-29). The explicit path costs more
            // than R3's driver-side warp aggregation — which is why R3
            // beats R4 despite R4's "newer hardware capabilities".
            (
                u64::from(blocks),
                warps_total,
                2,
                m.vote_cy + m.warp_reduce_cy,
            )
        }
        ReductionStrategy::PersistentThreads => {
            let threads = u64::from(blocks) * u64::from(cfg.block_size);
            let ba = if m.warp_aggregation {
                threads.div_ceil(warp)
            } else {
                threads
            };
            (u64::from(blocks), ba, 2, m.warp_agg_reduce_cy)
        }
    };

    // Serialization through the atomic units.
    let global_atomic_cycles = global_atomics as f64 * m.atomic_unit_issue_cy;
    let block_atomic_cycles =
        block_atomics as f64 * m.block_atomic_unit_issue_cy / f64::from(occ.sms_used.max(1));

    // Per-wave overheads: lead-in + barriers + one atomic latency +
    // the thread-local loop of the persistent variant.
    let barrier_cy = f64::from(barriers)
        * (m.syncthreads_base_cy + m.syncthreads_per_warp_cy * f64::from(occ.warps_per_block - 1));
    let local_work = elems_per_thread as f64 * (m.read_cy + m.alu_cy);
    let per_wave = local_work
        + lead_in_cy
        + barrier_cy
        + m.atomic_device.i32_cy
        + if barriers > 0 {
            m.atomic_block.i32_cy
        } else {
            0.0
        };
    let overhead_cycles = per_wave * waves;

    Ok(ReductionReport {
        strategy,
        total_cycles: stream_cycles + global_atomic_cycles + block_atomic_cycles + overhead_cycles,
        stream_cycles,
        global_atomic_cycles,
        block_atomic_cycles,
        overhead_cycles,
        global_atomics,
        block_atomics,
        barriers_per_block: barriers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{SYSTEM1, SYSTEM2, SYSTEM3};

    fn run_all() -> Vec<ReductionReport> {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let cfg = ReductionConfig::megabyte_input(&SYSTEM3.gpu);
        ReductionStrategy::ALL
            .iter()
            .map(|&s| simulate_reduction(&m, &SYSTEM3.gpu, s, &cfg).unwrap())
            .collect()
    }

    #[test]
    fn paper_ordering_r3_r4_r1_r2() {
        let r = run_all();
        let (r1, r2, r3, r4) = (&r[0], &r[1], &r[2], &r[3]);
        assert!(
            r3.total_cycles < r4.total_cycles,
            "R3 fastest of the first four"
        );
        assert!(r4.total_cycles < r1.total_cycles, "then R4");
        assert!(r1.total_cycles < r2.total_cycles, "then R1; R2 slowest");
    }

    #[test]
    fn persistent_threads_beat_everything() {
        let r = run_all();
        let r5 = &r[4];
        for other in &r[..4] {
            assert!(r5.total_cycles < other.total_cycles, "{:?}", other.strategy);
        }
    }

    #[test]
    fn r5_vs_r2_speedup_in_paper_ballpark() {
        // The paper reports ~2.5× on its input and GPU; accept 2–5×.
        let r = run_all();
        let speedup = r[1].total_cycles / r[4].total_cycles;
        assert!(
            (2.0..5.0).contains(&speedup),
            "R5 is {speedup:.2}x faster than R2"
        );
    }

    #[test]
    fn aggregation_reduces_global_atomics_32x() {
        let r = run_all();
        assert_eq!(r[0].global_atomics, (1 << 20) / 32);
        // R3 issues one global atomic per block.
        assert_eq!(r[2].global_atomics, (1 << 20) / 256);
    }

    #[test]
    fn r3_r4_r5_have_two_barriers() {
        let r = run_all();
        assert_eq!(r[0].barriers_per_block, 0);
        assert_eq!(r[1].barriers_per_block, 0);
        for rep in &r[2..] {
            assert_eq!(rep.barriers_per_block, 2, "{:?}", rep.strategy);
        }
    }

    #[test]
    fn cc_gating_matches_listing1_comments() {
        let m1 = GpuModel::for_spec(&SYSTEM1.gpu); // cc 7.5
        let cfg = ReductionConfig::megabyte_input(&SYSTEM1.gpu);
        assert!(simulate_reduction(
            &m1,
            &SYSTEM1.gpu,
            ReductionStrategy::WarpReduceThenBlock,
            &cfg
        )
        .is_err());
        assert!(simulate_reduction(
            &m1,
            &SYSTEM1.gpu,
            ReductionStrategy::BlockAtomicThenGlobal,
            &cfg
        )
        .is_ok());
    }

    #[test]
    fn ordering_holds_on_all_capable_gpus() {
        for sys in [&SYSTEM2, &SYSTEM3] {
            let m = GpuModel::for_spec(&sys.gpu);
            let cfg = ReductionConfig::megabyte_input(&sys.gpu);
            let t: Vec<f64> = ReductionStrategy::ALL
                .iter()
                .map(|&s| {
                    simulate_reduction(&m, &sys.gpu, s, &cfg)
                        .unwrap()
                        .total_cycles
                })
                .collect();
            assert!(
                t[2] < t[3] && t[3] < t[0] && t[0] < t[1] && t[4] < t[2],
                "{}",
                sys
            );
        }
    }

    #[test]
    fn ablation_without_aggregation_r1_explodes() {
        let mut m = GpuModel::for_spec(&SYSTEM3.gpu);
        m.warp_aggregation = false;
        let cfg = ReductionConfig::megabyte_input(&SYSTEM3.gpu);
        let r1 =
            simulate_reduction(&m, &SYSTEM3.gpu, ReductionStrategy::GlobalAtomic, &cfg).unwrap();
        let r2 = simulate_reduction(
            &m,
            &SYSTEM3.gpu,
            ReductionStrategy::ShflThenGlobalAtomic,
            &cfg,
        )
        .unwrap();
        assert!(
            r1.total_cycles > r2.total_cycles,
            "without driver aggregation the explicit shuffle version wins — evidence the \
             JIT optimization is what makes R1 beat R2"
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let bad = ReductionConfig {
            size: 0,
            block_size: 256,
            persistent_grid_blocks: 1,
        };
        assert!(
            simulate_reduction(&m, &SYSTEM3.gpu, ReductionStrategy::GlobalAtomic, &bad).is_err()
        );
    }

    #[test]
    fn stream_phase_identical_across_strategies() {
        let r = run_all();
        for rep in &r[1..] {
            assert_eq!(rep.stream_cycles, r[0].stream_cycles);
        }
    }
}

// ---------------------------------------------------------------------
// Case study: histogramming, the other classic atomic-bound kernel.
// ---------------------------------------------------------------------

/// How a GPU histogram synchronizes its bin updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistogramStrategy {
    /// Every element does a device-wide `atomicAdd` on its global bin
    /// (recommendations 4/5 warn about exactly this under skew).
    GlobalAtomics,
    /// Every block keeps private bins in shared memory (block-scoped
    /// atomics), then merges them into the global histogram.
    SharedPrivatized,
}

/// Histogram workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramConfig {
    /// Input elements.
    pub elements: u64,
    /// Number of bins.
    pub bins: u32,
    /// Fraction of all elements that fall into the single hottest bin
    /// (0.0 = uniform, 1.0 = everything collides on one address).
    pub hot_fraction: f64,
    /// Threads per block.
    pub block_size: u32,
    /// Launched blocks.
    pub blocks: u32,
}

/// Cost breakdown of one simulated histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramReport {
    /// Which strategy ran.
    pub strategy: HistogramStrategy,
    /// Total kernel cycles.
    pub total_cycles: f64,
    /// Input streaming cycles.
    pub stream_cycles: f64,
    /// Cycles serialized through atomic units (device or per-SM).
    pub atomic_cycles: f64,
    /// Merge-phase cycles (zero for the direct strategy).
    pub merge_cycles: f64,
}

/// Number of independent L2 atomic slices that can service different
/// addresses concurrently.
const L2_ATOMIC_SLICES: f64 = 64.0;
/// Same, for one SM's shared-memory atomic banks.
const SM_ATOMIC_BANKS: f64 = 32.0;

/// Simulates one histogram strategy.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] for empty workloads or a
/// `hot_fraction` outside `[0, 1]`.
pub fn simulate_histogram(
    m: &GpuModel,
    spec: &GpuSpec,
    strategy: HistogramStrategy,
    cfg: &HistogramConfig,
) -> Result<HistogramReport> {
    if cfg.elements == 0 || cfg.bins == 0 || cfg.block_size == 0 || cfg.blocks == 0 {
        return Err(SyncPerfError::InvalidParams(
            "empty histogram configuration".into(),
        ));
    }
    if !(0.0..=1.0).contains(&cfg.hot_fraction) {
        return Err(SyncPerfError::InvalidParams(format!(
            "hot_fraction {} outside [0, 1]",
            cfg.hot_fraction
        )));
    }
    let occ = Occupancy::compute(spec, cfg.blocks.min(65_535), cfg.block_size)?;
    let n = cfg.elements as f64;
    let bins = f64::from(cfg.bins);
    let stream_cycles = (cfg.elements * 4) as f64 / m.mem_bw_bytes_per_cy;

    let (atomic_cycles, merge_cycles) = match strategy {
        HistogramStrategy::GlobalAtomics => {
            // Hottest-bin requests serialize on one address; the rest
            // spread over min(bins, slices) parallel units.
            let hot = n * cfg.hot_fraction + n * (1.0 - cfg.hot_fraction) / bins;
            let hot_serial = hot * m.atomic_unit_issue_cy;
            let throughput = n * m.atomic_unit_issue_cy / bins.min(L2_ATOMIC_SLICES);
            (hot_serial.max(throughput), 0.0)
        }
        HistogramStrategy::SharedPrivatized => {
            // Per-block private bins: each block handles N/blocks
            // elements; blocks run in parallel across resident slots,
            // surplus in waves.
            let per_block = n / f64::from(cfg.blocks);
            let hot_local =
                per_block * cfg.hot_fraction + per_block * (1.0 - cfg.hot_fraction) / bins;
            let local_serial =
                hot_local.max(per_block / bins.min(SM_ATOMIC_BANKS)) * m.block_atomic_unit_issue_cy;
            let local = local_serial * f64::from(occ.waves);
            // Merge: every block adds each of its bins into the global
            // histogram — per global bin, `blocks` requests serialize;
            // different bins proceed on parallel slices.
            let merge_serial = f64::from(cfg.blocks) * m.atomic_unit_issue_cy;
            let merge_throughput =
                bins * f64::from(cfg.blocks) * m.atomic_unit_issue_cy / bins.min(L2_ATOMIC_SLICES);
            (local, merge_serial.max(merge_throughput))
        }
    };

    Ok(HistogramReport {
        strategy,
        total_cycles: stream_cycles + atomic_cycles + merge_cycles,
        stream_cycles,
        atomic_cycles,
        merge_cycles,
    })
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use syncperf_core::SYSTEM3;

    fn cfg(hot: f64, bins: u32) -> HistogramConfig {
        HistogramConfig {
            elements: 1 << 22,
            bins,
            hot_fraction: hot,
            block_size: 256,
            blocks: SYSTEM3.gpu.sms * 4,
        }
    }

    fn run(strategy: HistogramStrategy, c: &HistogramConfig) -> HistogramReport {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        simulate_histogram(&m, &SYSTEM3.gpu, strategy, c).unwrap()
    }

    #[test]
    fn privatization_wins_under_skew() {
        let c = cfg(0.5, 256);
        let global = run(HistogramStrategy::GlobalAtomics, &c);
        let private = run(HistogramStrategy::SharedPrivatized, &c);
        assert!(
            global.total_cycles > 3.0 * private.total_cycles,
            "skewed global {} vs privatized {}",
            global.total_cycles,
            private.total_cycles
        );
    }

    #[test]
    fn skew_hurts_global_roughly_linearly() {
        let t25 = run(HistogramStrategy::GlobalAtomics, &cfg(0.25, 256)).atomic_cycles;
        let t50 = run(HistogramStrategy::GlobalAtomics, &cfg(0.50, 256)).atomic_cycles;
        let t100 = run(HistogramStrategy::GlobalAtomics, &cfg(1.0, 256)).atomic_cycles;
        assert!((t50 / t25 - 2.0).abs() < 0.1);
        assert!((t100 / t50 - 2.0).abs() < 0.1);
    }

    #[test]
    fn skew_hurts_privatized_far_less() {
        let p0 = run(HistogramStrategy::SharedPrivatized, &cfg(0.0, 256)).total_cycles;
        let p100 = run(HistogramStrategy::SharedPrivatized, &cfg(1.0, 256)).total_cycles;
        let g0 = run(HistogramStrategy::GlobalAtomics, &cfg(0.0, 256)).total_cycles;
        let g100 = run(HistogramStrategy::GlobalAtomics, &cfg(1.0, 256)).total_cycles;
        assert!(
            (p100 / p0) < 0.1 * (g100 / g0),
            "blocks absorb the hot bin locally"
        );
    }

    #[test]
    fn merge_cost_grows_with_bins() {
        let few = run(HistogramStrategy::SharedPrivatized, &cfg(0.0, 64)).merge_cycles;
        let many = run(HistogramStrategy::SharedPrivatized, &cfg(0.0, 1 << 16)).merge_cycles;
        assert!(
            many > 10.0 * few,
            "wide histograms pay in the merge: {few} -> {many}"
        );
    }

    #[test]
    fn uniform_narrow_histogram_is_the_global_strategy_niche() {
        // With heavy skew absent and a merge that costs more than the
        // contention saved, global atomics can compete (tiny inputs,
        // huge bin count).
        let c = HistogramConfig {
            elements: 1 << 14,
            bins: 1 << 16,
            hot_fraction: 0.0,
            block_size: 256,
            blocks: SYSTEM3.gpu.sms * 4,
        };
        let global = run(HistogramStrategy::GlobalAtomics, &c);
        let private = run(HistogramStrategy::SharedPrivatized, &c);
        assert!(
            global.total_cycles < private.total_cycles,
            "merge-dominated regime favors global: {} vs {}",
            global.total_cycles,
            private.total_cycles
        );
    }

    #[test]
    fn rejects_bad_configs() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let mut c = cfg(0.5, 16);
        c.hot_fraction = 1.5;
        assert!(
            simulate_histogram(&m, &SYSTEM3.gpu, HistogramStrategy::GlobalAtomics, &c).is_err()
        );
        c.hot_fraction = 0.5;
        c.elements = 0;
        assert!(
            simulate_histogram(&m, &SYSTEM3.gpu, HistogramStrategy::GlobalAtomics, &c).is_err()
        );
    }
}

// ---------------------------------------------------------------------
// Case study: exclusive prefix scan — the workload that motivates
// device-wide fences and single-pass synchronization.
// ---------------------------------------------------------------------

/// How a device-wide exclusive scan synchronizes across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanStrategy {
    /// Three kernels: scan each block, scan the block sums, add the
    /// offsets back — no inter-block synchronization, but the data
    /// crosses the memory system three times.
    TwoPass,
    /// Single-pass "decoupled look-back" (chained scan): each block
    /// publishes its partial sum with a `__threadfence()` + flag, and
    /// successor blocks spin on the flags — one data pass plus a
    /// serialized look-back chain built from fences and atomics.
    DecoupledLookback,
}

/// Scan workload description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanConfig {
    /// Input elements (4-byte).
    pub elements: u64,
    /// Threads per block.
    pub block_size: u32,
}

/// Cost breakdown of one simulated scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// Which strategy ran.
    pub strategy: ScanStrategy,
    /// Total cycles.
    pub total_cycles: f64,
    /// Memory-traffic cycles (the dominant term; the two-pass scan
    /// moves the data ~3x, the single-pass ~1x plus block sums).
    pub memory_cycles: f64,
    /// In-block scan work (log2(block) `__syncthreads` sweeps).
    pub block_scan_cycles: f64,
    /// Inter-block synchronization: kernel launches (two-pass) or the
    /// fence/flag look-back chain (single-pass).
    pub coordination_cycles: f64,
}

/// Cycles to launch one kernel from the host (dwarfed by big inputs,
/// decisive for small ones).
const KERNEL_LAUNCH_CY: f64 = 12_000.0;

/// Simulates one scan strategy.
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] for empty configurations.
pub fn simulate_scan(
    m: &GpuModel,
    spec: &GpuSpec,
    strategy: ScanStrategy,
    cfg: &ScanConfig,
) -> Result<ScanReport> {
    if cfg.elements == 0 || cfg.block_size == 0 {
        return Err(SyncPerfError::InvalidParams(
            "empty scan configuration".into(),
        ));
    }
    let blocks = cfg.elements.div_ceil(u64::from(cfg.block_size));
    let occ = Occupancy::compute(spec, (blocks as u32).min(65_535), cfg.block_size)?;
    let n_bytes = (cfg.elements * 4) as f64;

    // In-block Blelloch scan: 2·log2(block) sweeps, each ending in a
    // `__syncthreads()`.
    let sweeps = 2.0 * f64::from(cfg.block_size.next_power_of_two().trailing_zeros());
    let sync_cy =
        m.syncthreads_base_cy + m.syncthreads_per_warp_cy * f64::from(occ.warps_per_block - 1);
    let per_wave_block_scan = sweeps * (sync_cy + m.alu_cy + m.update_cy);
    let waves = (blocks as f64 / f64::from(occ.resident_blocks_per_sm * occ.sms_used)).max(1.0);
    let block_scan_cycles = per_wave_block_scan * waves;

    let (memory_cycles, coordination_cycles) = match strategy {
        ScanStrategy::TwoPass => {
            // Pass 1 reads+writes N, pass 2 scans block sums, pass 3
            // reads+writes N again: ~3 full crossings plus two extra
            // kernel launches.
            let mem = 3.0 * 2.0 * n_bytes / m.mem_bw_bytes_per_cy;
            let sums = blocks as f64 * 2.0 * 4.0 / m.mem_bw_bytes_per_cy;
            (mem + sums, 3.0 * KERNEL_LAUNCH_CY)
        }
        ScanStrategy::DecoupledLookback => {
            // One read+write crossing; the look-back chain serializes
            // block publication: fence + flag store + successor's poll.
            let mem = 2.0 * n_bytes / m.mem_bw_bytes_per_cy;
            let link_cy = m.fence_device_cy + m.atomic_device.i32_cy + m.read_cy + m.update_cy;
            // Publications pipeline: while a wave of resident blocks
            // computes, its predecessors' prefixes arrive, so the
            // chain's critical path is ~one link per wave, not one per
            // block — that pipelining is the whole point of decoupled
            // look-back.
            let resident = f64::from(occ.resident_blocks_per_sm * occ.sms_used).max(1.0);
            let waves_chain = (blocks as f64 / resident).max(1.0);
            let chain = waves_chain * link_cy;
            (mem, KERNEL_LAUNCH_CY + chain)
        }
    };

    Ok(ScanReport {
        strategy,
        total_cycles: memory_cycles + block_scan_cycles + coordination_cycles,
        memory_cycles,
        block_scan_cycles,
        coordination_cycles,
    })
}

#[cfg(test)]
mod scan_tests {
    use super::*;
    use syncperf_core::SYSTEM3;

    fn run(strategy: ScanStrategy, elements: u64) -> ScanReport {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let cfg = ScanConfig {
            elements,
            block_size: 256,
        };
        simulate_scan(&m, &SYSTEM3.gpu, strategy, &cfg).unwrap()
    }

    #[test]
    fn lookback_wins_on_large_inputs() {
        // Big inputs are bandwidth-bound: saving two data passes beats
        // the serialized look-back chain (why CUB's scan is
        // single-pass).
        let two = run(ScanStrategy::TwoPass, 1 << 26);
        let look = run(ScanStrategy::DecoupledLookback, 1 << 26);
        assert!(
            look.total_cycles < 0.6 * two.total_cycles,
            "lookback {} vs two-pass {}",
            look.total_cycles,
            two.total_cycles
        );
    }

    #[test]
    fn memory_ratio_approaches_three() {
        let two = run(ScanStrategy::TwoPass, 1 << 26);
        let look = run(ScanStrategy::DecoupledLookback, 1 << 26);
        let r = two.memory_cycles / look.memory_cycles;
        assert!((2.8..3.2).contains(&r), "three crossings vs one: {r}");
    }

    #[test]
    fn coordination_is_fences_for_lookback_launches_for_twopass() {
        let two = run(ScanStrategy::TwoPass, 1 << 22);
        assert_eq!(two.coordination_cycles, 3.0 * KERNEL_LAUNCH_CY);
        let look = run(ScanStrategy::DecoupledLookback, 1 << 22);
        assert!(
            look.coordination_cycles > KERNEL_LAUNCH_CY,
            "chain cost present"
        );
    }

    #[test]
    fn block_scan_work_identical_across_strategies() {
        let two = run(ScanStrategy::TwoPass, 1 << 22);
        let look = run(ScanStrategy::DecoupledLookback, 1 << 22);
        assert_eq!(two.block_scan_cycles, look.block_scan_cycles);
    }

    #[test]
    fn rejects_empty() {
        let m = GpuModel::for_spec(&SYSTEM3.gpu);
        let cfg = ScanConfig {
            elements: 0,
            block_size: 256,
        };
        assert!(simulate_scan(&m, &SYSTEM3.gpu, ScanStrategy::TwoPass, &cfg).is_err());
    }
}
