//! The GPU simulation engine: interprets a kernel body at warp
//! granularity and returns `clock64()`-style cycle counts.
//!
//! All threads execute the identical body (the paper's kernels have no
//! divergence in the timed loop), so a warp is the unit of progress and
//! every resident warp accrues the same per-repetition cost; block-wide
//! barriers add their rendezvous cost in place. Because every thread
//! finishes at the same instant, the result stores one scalar total
//! instead of a per-thread vector (the old `vec![total; 131072]` was
//! the dominant allocation of a sweep).
//!
//! Per-op cycle costs are quantized once to integer fixed-point units
//! (2²⁰ units per cycle); the total over `reps` repetitions is one
//! exact integer multiply, bit-identical to stepping every repetition
//! ([`run_full_stepping`] is the oracle that does exactly that).

use syncperf_core::obs::{ArgValue, Recorder};
use syncperf_core::{DType, GpuOp, Result, Scope, SyncPerfError, Target};

use crate::config::GpuModel;
use crate::cost::{self, AtomicKind};
use crate::occupancy::Occupancy;

/// log₂ of the number of fixed-point units per cycle.
pub const SCALE_BITS: u32 = 20;

/// Fixed-point units per cycle (2²⁰).
pub const SCALE: f64 = (1u64 << SCALE_BITS) as f64;

/// Quantizes a cost in cycles to fixed-point units.
#[must_use]
pub fn quantize_cycles(cycles: f64) -> u64 {
    debug_assert!(cycles >= 0.0, "negative cost {cycles}");
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (cycles * SCALE).round() as u64
    }
}

/// Converts fixed-point units back to cycles. Exact for any total below
/// 2⁵³ units.
#[must_use]
pub fn units_to_cycles(units: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        units as f64 / SCALE
    }
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuEngineResult {
    /// Total elapsed time of the run in fixed-point units
    /// ([`SCALE`] units per cycle); identical for every thread.
    pub total_units: u64,
    /// Quantized cost of one body repetition, fixed-point units.
    pub units_per_rep: u64,
    /// Number of launched threads (blocks × threads per block).
    pub total_threads: u64,
    /// Whether the body contains a system-scope fence (the executor
    /// adds PCIe jitter for those).
    pub has_system_fence: bool,
}

impl GpuEngineResult {
    /// Total elapsed cycles (every thread finishes together).
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        units_to_cycles(self.total_units)
    }

    /// Cycles of one body repetition (before multiplying by reps).
    #[must_use]
    pub fn cycles_per_rep(&self) -> f64 {
        units_to_cycles(self.units_per_rep)
    }
}

/// Validates dtype support for CAS/Exch ops (`atomicCAS()` has no
/// native floating-point overloads — Section V-B2).
fn check_dtype(kind: AtomicKind, dtype: DType) -> Result<()> {
    let needs_integer = matches!(kind, AtomicKind::Cas | AtomicKind::Exch);
    if needs_integer && dtype.is_float() {
        return Err(SyncPerfError::UnsupportedDType {
            dtype: dtype.label(),
            primitive: match kind {
                AtomicKind::Cas => "atomicCAS".into(),
                AtomicKind::Exch => "atomicExch".into(),
                _ => unreachable!(),
            },
        });
    }
    Ok(())
}

/// Cost of one op, in cycles.
///
/// # Errors
///
/// Returns an error for ops the modeled device cannot execute
/// (unsupported data type or compute capability).
pub fn op_cycles(m: &GpuModel, occ: &Occupancy, op: &GpuOp) -> Result<f64> {
    if let GpuOp::AtomicRmw { op: rmw, dtype, .. } = *op {
        // atomicSub/Min/And/Or/Xor exist only for integer types.
        if dtype.is_float() {
            return Err(SyncPerfError::UnsupportedDType {
                dtype: dtype.label(),
                primitive: rmw.cuda_name().into(),
            });
        }
    }
    if let Some((kind, dtype, scope, target)) = cost::atomic_kind(op) {
        check_dtype(kind, dtype)?;
        if scope == Scope::Block && !m.has_block_atomics() {
            return Err(SyncPerfError::UnsupportedOp {
                op: "block-scoped atomic".into(),
                platform: format!("gpu-sim cc {}", m.compute_capability),
            });
        }
        return Ok(cost::atomic(m, occ, kind, dtype, scope, target));
    }
    Ok(match *op {
        GpuOp::SyncThreads => cost::syncthreads(m, occ),
        GpuOp::SyncWarp => cost::syncwarp(m, occ),
        GpuOp::SyncThreadsReduce { .. } => cost::syncthreads_reduce(m, occ),
        GpuOp::ThreadFence { scope } => cost::fence(m, scope),
        GpuOp::Shfl { dtype, .. } => cost::shfl(m, occ, dtype),
        GpuOp::Vote { .. } => cost::vote(m, occ),
        GpuOp::WarpReduce { dtype } => cost::warp_reduce(m, occ, dtype)?,
        GpuOp::Update { .. } => m.update_cy,
        GpuOp::Read { .. } => m.read_cy,
        GpuOp::Alu { .. } => m.alu_cy,
        GpuOp::Diverge { dtype, paths } => cost::diverge(m, occ, dtype, paths),
        _ => unreachable!("atomics handled above"),
    })
}

/// Runs `body` for `reps` repetitions under the given occupancy.
///
/// # Errors
///
/// Propagates unsupported-op errors and rejects `reps == 0`.
pub fn run(m: &GpuModel, occ: &Occupancy, body: &[GpuOp], reps: u64) -> Result<GpuEngineResult> {
    run_observed(m, occ, body, reps, syncperf_core::obs::global())
}

/// [`run`] with an explicit [`Recorder`]. With recording enabled this
/// emits, under category `gpu_sim`: a `kernel_launch` span carrying
/// block/warp scheduling arguments, and an `atomic_conflict` instant
/// per device-wide-contended atomic op in the body — plus the
/// `gpu_sim.launches`, `gpu_sim.blocks_scheduled`,
/// `gpu_sim.warps_scheduled` and `gpu_sim.atomic_conflicts` counters.
/// A disabled recorder costs one branch per site.
///
/// # Errors
///
/// Propagates unsupported-op errors and rejects `reps == 0`.
pub fn run_observed(
    m: &GpuModel,
    occ: &Occupancy,
    body: &[GpuOp],
    reps: u64,
    rec: &Recorder,
) -> Result<GpuEngineResult> {
    let mut r = analyze_body(m, occ, body, reps, rec)?;
    // One exact integer multiply extrapolates all repetitions — every
    // rep costs the same quantized units, so this is bit-identical to
    // stepping them (u64 addition is associative).
    r.total_units = r.units_per_rep * reps;
    Ok(r)
}

/// The reference path: identical to [`run_observed`] but charges every
/// repetition op-by-op in a stepping loop instead of multiplying. The
/// property tests assert the fast path is bit-exact against this
/// oracle.
///
/// # Errors
///
/// Propagates unsupported-op errors and rejects `reps == 0`.
pub fn run_full_stepping(
    m: &GpuModel,
    occ: &Occupancy,
    body: &[GpuOp],
    reps: u64,
    rec: &Recorder,
) -> Result<GpuEngineResult> {
    let mut r = analyze_body(m, occ, body, reps, rec)?;
    let mut op_units = Vec::with_capacity(body.len());
    for op in body {
        op_units.push(quantize_cycles(op_cycles(m, occ, op)?));
    }
    let mut total = 0u64;
    for _ in 0..reps {
        for &u in &op_units {
            total += u;
        }
    }
    r.total_units = total;
    Ok(r)
}

/// Shared per-run analysis: validates the body, sums the quantized
/// per-repetition cost, flags system fences, and emits the launch span
/// plus scheduling/conflict counters. `total_units` is left at zero for
/// the caller to fill in.
fn analyze_body(
    m: &GpuModel,
    occ: &Occupancy,
    body: &[GpuOp],
    reps: u64,
    rec: &Recorder,
) -> Result<GpuEngineResult> {
    if reps == 0 {
        return Err(SyncPerfError::InvalidParams("reps must be > 0".into()));
    }
    let mut span = rec.span("gpu_sim", "kernel_launch");
    span.push_arg("blocks", u64::from(occ.blocks));
    span.push_arg("threads_per_block", u64::from(occ.threads_per_block));
    span.push_arg("resident_warps", u64::from(occ.total_resident_warps));
    span.push_arg("waves", u64::from(occ.waves));
    rec.counter("gpu_sim.launches").inc();
    rec.counter("gpu_sim.blocks_scheduled")
        .add(u64::from(occ.blocks));
    rec.counter("gpu_sim.warps_scheduled")
        .add(u64::from(occ.blocks) * u64::from(occ.warps_per_block));

    let total_threads = u64::from(occ.blocks) * u64::from(occ.threads_per_block);
    let mut units_per_rep = 0u64;
    let mut has_system_fence = false;
    for (idx, op) in body.iter().enumerate() {
        units_per_rep += quantize_cycles(op_cycles(m, occ, op)?);
        if matches!(
            op,
            GpuOp::ThreadFence {
                scope: Scope::System
            }
        ) {
            has_system_fence = true;
        }
        // Every thread RMW-ing the same address serializes at the
        // atomic unit: all but one of the `total_threads` accesses
        // conflict, every repetition.
        if let Some((_, _, _, target)) = cost::atomic_kind(op) {
            if matches!(target, Target::SharedScalar(_)) && total_threads > 1 {
                rec.counter("gpu_sim.atomic_conflicts")
                    .add((total_threads - 1) * reps);
                if rec.is_enabled() {
                    rec.instant_args(
                        "gpu_sim",
                        "atomic_conflict",
                        vec![
                            ("op_idx", ArgValue::from(idx)),
                            ("threads", ArgValue::U64(total_threads)),
                            ("reps", ArgValue::U64(reps)),
                        ],
                    );
                }
            }
        }
    }
    span.push_arg("cycles_per_rep", units_to_cycles(units_per_rep));
    Ok(GpuEngineResult {
        total_units: 0,
        units_per_rep,
        total_threads,
        has_system_fence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, ShflVariant, Target, SYSTEM1, SYSTEM3};

    fn m() -> GpuModel {
        GpuModel::for_spec(&SYSTEM3.gpu)
    }

    fn occ(blocks: u32, threads: u32) -> Occupancy {
        Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap()
    }

    #[test]
    fn run_multiplies_reps() {
        let body = kernel::cuda_syncwarp().baseline;
        let r1 = run(&m(), &occ(1, 32), &body, 1).unwrap();
        let r10 = run(&m(), &occ(1, 32), &body, 10).unwrap();
        assert!((r10.total_cycles() - 10.0 * r1.total_cycles()).abs() < 1e-9);
        assert_eq!(r1.total_threads, 32);
    }

    #[test]
    fn fast_path_matches_full_stepping_bit_exactly() {
        let model = m();
        let rec = Recorder::disabled();
        for k in [
            kernel::cuda_syncthreads(),
            kernel::cuda_atomic_add_scalar(DType::F64),
            kernel::cuda_threadfence(Scope::System, DType::I32, 1),
            kernel::cuda_shfl(DType::I32, ShflVariant::Down),
        ] {
            for (blocks, threads) in [(1, 32), (4, 256), (128, 1024)] {
                let o = occ(blocks, threads);
                for reps in [1, 7, 100, 10_000] {
                    let fast = run_observed(&model, &o, &k.test, reps, &rec).unwrap();
                    let full = run_full_stepping(&model, &o, &k.test, reps, &rec).unwrap();
                    assert_eq!(fast, full, "{} b={blocks} t={threads} r={reps}", k.name);
                }
            }
        }
    }

    #[test]
    fn rejects_zero_reps() {
        assert!(run(&m(), &occ(1, 32), &kernel::cuda_syncwarp().baseline, 0).is_err());
    }

    #[test]
    fn cas_rejects_floats() {
        let body = kernel::cuda_atomic_cas_scalar(DType::F32).baseline;
        let err = run(&m(), &occ(1, 32), &body, 1).unwrap_err();
        assert!(matches!(err, SyncPerfError::UnsupportedDType { .. }));
    }

    #[test]
    fn exch_rejects_doubles_allows_ints() {
        let bad = vec![GpuOp::AtomicExch {
            dtype: DType::F64,
            scope: Scope::Device,
            target: Target::SHARED,
        }];
        assert!(run(&m(), &occ(1, 32), &bad, 1).is_err());
        let ok = kernel::cuda_atomic_exch(DType::U64).baseline;
        assert!(run(&m(), &occ(1, 32), &ok, 1).is_ok());
    }

    #[test]
    fn warp_reduce_unsupported_on_cc75() {
        let m1 = GpuModel::for_spec(&SYSTEM1.gpu);
        let o = Occupancy::compute(&SYSTEM1.gpu, 1, 32).unwrap();
        let body = vec![GpuOp::WarpReduce { dtype: DType::I32 }];
        assert!(run(&m1, &o, &body, 1).is_err());
    }

    #[test]
    fn system_fence_flagged() {
        let body = kernel::cuda_threadfence(Scope::System, DType::I32, 1).test;
        let r = run(&m(), &occ(1, 32), &body, 1).unwrap();
        assert!(r.has_system_fence);
        let body = kernel::cuda_threadfence(Scope::Device, DType::I32, 1).test;
        let r = run(&m(), &occ(1, 32), &body, 1).unwrap();
        assert!(!r.has_system_fence);
    }

    #[test]
    fn fence_difference_constant_across_conditions() {
        // Fig. 14: test − baseline ≈ fence cost everywhere.
        let model = m();
        for (blocks, threads, stride) in [(1, 32, 1), (1, 1024, 32), (128, 256, 1), (128, 1024, 32)]
        {
            let k = kernel::cuda_threadfence(Scope::Device, DType::I32, stride);
            let o = occ(blocks, threads);
            let base = run(&model, &o, &k.baseline, 1).unwrap().cycles_per_rep();
            let test = run(&model, &o, &k.test, 1).unwrap().cycles_per_rep();
            assert!(
                ((test - base) - model.fence_device_cy).abs() < 1e-9,
                "blocks={blocks} threads={threads} stride={stride}"
            );
        }
    }

    #[test]
    fn block_fence_nearly_free() {
        let model = m();
        let k = kernel::cuda_threadfence(Scope::Block, DType::I32, 4);
        let o = occ(1, 64);
        let base = run(&model, &o, &k.baseline, 1).unwrap().cycles_per_rep();
        let test = run(&model, &o, &k.test, 1).unwrap().cycles_per_rep();
        // 2 cycles on a 16-cycle baseline — within measurement noise of
        // the real experiment ("runtimes at or near zero").
        assert!(test - base < 0.15 * base, "§V-B3: at or near zero");
    }

    #[test]
    fn shfl_variants_identical() {
        let model = m();
        let o = occ(128, 256);
        let costs: Vec<f64> = [
            ShflVariant::Idx,
            ShflVariant::Up,
            ShflVariant::Down,
            ShflVariant::Xor,
        ]
        .iter()
        .map(|&v| {
            run(&model, &o, &kernel::cuda_shfl(DType::I32, v).baseline, 1)
                .unwrap()
                .cycles_per_rep()
        })
        .collect();
        for w in costs.windows(2) {
            assert_eq!(
                w[0], w[1],
                "§V-B4: variants differ only in data movement pattern"
            );
        }
    }

    #[test]
    fn every_gpu_kernel_runs() {
        let model = m();
        let o = occ(2, 64);
        let kernels = vec![
            kernel::cuda_syncthreads(),
            kernel::cuda_syncwarp(),
            kernel::cuda_atomic_add_scalar(DType::F64),
            kernel::cuda_atomic_add_array(DType::I32, 32),
            kernel::cuda_atomic_cas_scalar(DType::I32),
            kernel::cuda_atomic_cas_array(DType::U64, 1),
            kernel::cuda_atomic_exch(DType::I32),
            kernel::cuda_threadfence(Scope::Device, DType::F32, 1),
            kernel::cuda_shfl(DType::F64, ShflVariant::Xor),
            kernel::cuda_vote(syncperf_core::VoteKind::Any),
        ];
        for k in kernels {
            let base = run(&model, &o, &k.baseline, 5).unwrap();
            let test = run(&model, &o, &k.test, 5).unwrap();
            assert!(
                test.cycles_per_rep() > base.cycles_per_rep(),
                "{}: test must cost more",
                k.name
            );
        }
    }

    #[test]
    fn rmw_family_integer_only_and_add_shaped() {
        use syncperf_core::RmwOp;
        let model = m();
        let o = occ(2, 64);
        for op in RmwOp::ALL {
            // Floats rejected, like nvcc would.
            let bad = kernel::cuda_atomic_rmw_scalar(op, DType::F32).baseline;
            assert!(run(&model, &o, &bad, 1).is_err(), "{op:?}");
            // Integers cost exactly what atomicAdd costs (same
            // datapath, same aggregation).
            let rmw = kernel::cuda_atomic_rmw_scalar(op, DType::I32).baseline;
            let add = kernel::cuda_atomic_add_scalar(DType::I32).baseline;
            assert_eq!(
                run(&model, &o, &rmw, 1).unwrap().cycles_per_rep(),
                run(&model, &o, &add, 1).unwrap().cycles_per_rep(),
                "{op:?}"
            );
        }
    }

    #[test]
    fn divergence_cost_constant_per_extra_path() {
        // Bialas & Strzelecki: the cost of a diverging branch is
        // essentially constant — marginal cost per path is flat.
        let model = m();
        let o = occ(1, 32);
        let cost = |paths| {
            run(
                &model,
                &o,
                &[GpuOp::Diverge {
                    dtype: DType::I32,
                    paths,
                }],
                1,
            )
            .unwrap()
            .cycles_per_rep()
        };
        let marginal_2 = cost(2) - cost(1);
        let marginal_16 = (cost(16) - cost(8)) / 8.0;
        let marginal_32 = (cost(32) - cost(31)) / 1.0;
        assert!((marginal_2 - marginal_16).abs() < 1e-9);
        assert!((marginal_2 - marginal_32).abs() < 1e-9);
        // A fully divergent warp costs far more than a uniform one.
        assert!(cost(32) > 20.0 * cost(1));
    }

    #[test]
    fn divergence_paths_capped_at_warp_size() {
        let model = m();
        let o = occ(1, 32);
        let a = run(
            &model,
            &o,
            &[GpuOp::Diverge {
                dtype: DType::I32,
                paths: 32,
            }],
            1,
        )
        .unwrap();
        let b = run(
            &model,
            &o,
            &[GpuOp::Diverge {
                dtype: DType::I32,
                paths: 64,
            }],
            1,
        )
        .unwrap();
        assert_eq!(
            a.cycles_per_rep(),
            b.cycles_per_rep(),
            "a warp has only 32 lanes"
        );
    }

    #[test]
    fn deterministic_like_real_gpu_runs() {
        // Section IV: "many of the GPU tests yield the exact same
        // runtime for all nine runs".
        let model = m();
        let o = occ(64, 512);
        let body = kernel::cuda_atomic_add_scalar(DType::I32).test;
        assert_eq!(
            run(&model, &o, &body, 7).unwrap(),
            run(&model, &o, &body, 7).unwrap()
        );
    }
}
