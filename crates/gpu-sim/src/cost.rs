//! Per-operation cost functions: one function per CUDA primitive,
//! combining the [`GpuModel`] constants with the launch [`Occupancy`].

use syncperf_core::{DType, GpuOp, Result, Scope, SyncPerfError, Target};

use crate::config::GpuModel;
use crate::occupancy::Occupancy;

/// Which atomic operation is being costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// `atomicAdd()` — eligible for warp aggregation on a shared
    /// address.
    Add,
    /// `atomicCAS()` — never aggregated (the comparison outcome of one
    /// lane can change the result for the others, §V-B2).
    Cas,
    /// `atomicExch()` — never aggregated.
    Exch,
    /// `atomicMax()` — treated like CAS-class (used by Listing 1).
    Max,
}

/// 32-bit words moved per element of `dtype` (the GPU shuffle datapath
/// is 32 bits wide; 64-bit types issue two instructions — Fig. 15).
#[must_use]
pub fn words(dtype: DType) -> f64 {
    (dtype.size_bytes() / 4) as f64
}

/// `__syncthreads()` — Fig. 7: cost grows with the warps in the block
/// and is identical for every block count.
#[must_use]
pub fn syncthreads(m: &GpuModel, occ: &Occupancy) -> f64 {
    m.syncthreads_base_cy + m.syncthreads_per_warp_cy * f64::from(occ.warps_per_block - 1)
}

/// `__syncwarp()` — Fig. 8: constant until the SM's resident thread
/// count exceeds the device's full-speed threshold.
#[must_use]
pub fn syncwarp(m: &GpuModel, occ: &Occupancy) -> f64 {
    m.syncwarp_cy * m.issue_slowdown(f64::from(occ.threads_per_sm))
}

/// Warp shuffle — Fig. 15: implies a `__syncwarp()`; 64-bit types cost
/// two 32-bit instructions and hit issue saturation at half the thread
/// count.
#[must_use]
pub fn shfl(m: &GpuModel, occ: &Occupancy, dtype: DType) -> f64 {
    let w = words(dtype);
    m.shfl_cy * w * m.issue_slowdown(f64::from(occ.threads_per_sm) * w)
}

/// Warp vote — §V-B4: behaves like `__syncwarp()` at slightly lower
/// absolute throughput.
#[must_use]
pub fn vote(m: &GpuModel, occ: &Occupancy) -> f64 {
    m.vote_cy * m.issue_slowdown(f64::from(occ.threads_per_sm))
}

/// `__syncthreads_count/and/or` — the block barrier plus a per-warp
/// predicate reduction folded into the release phase.
#[must_use]
pub fn syncthreads_reduce(m: &GpuModel, occ: &Occupancy) -> f64 {
    syncthreads(m, occ) + m.vote_cy + m.alu_cy * f64::from(occ.warps_per_block)
}

/// `__reduce_max_sync()` (compute capability ≥ 8.0).
///
/// # Errors
///
/// Returns [`SyncPerfError::UnsupportedOp`] below compute capability
/// 8.0.
pub fn warp_reduce(m: &GpuModel, occ: &Occupancy, dtype: DType) -> Result<f64> {
    if !m.has_warp_reduce() {
        return Err(SyncPerfError::UnsupportedOp {
            op: "__reduce_max_sync".into(),
            platform: format!("gpu-sim cc {}", m.compute_capability),
        });
    }
    let w = words(dtype);
    Ok(m.warp_reduce_cy * w * m.issue_slowdown(f64::from(occ.threads_per_sm) * w))
}

/// Thread fence of the given scope — Fig. 14 / §V-B3. The returned
/// cost is deterministic; the executor adds the system fence's PCIe
/// jitter on top.
#[must_use]
pub fn fence(m: &GpuModel, scope: Scope) -> f64 {
    match scope {
        Scope::Block => m.fence_block_cy,
        Scope::Device => m.fence_device_cy,
        Scope::System => m.fence_system_cy,
    }
}

/// Distinct 128-byte L2 lines one warp's atomic instruction touches
/// when lanes access a strided array.
#[must_use]
pub fn lines_per_warp(m: &GpuModel, occ: &Occupancy, dtype: DType, stride: u32) -> f64 {
    let lanes = occ.threads_per_block.min(m.warp_size);
    let span = u64::from(lanes) * u64::from(stride) * dtype.size_bytes() as u64;
    let lines = span.div_ceil(u64::from(m.l2_line_bytes));
    (lines.max(1) as f64).min(f64::from(lanes))
}

/// An atomic operation.
///
/// * **Shared scalar, `atomicAdd`, aggregation on** — the driver's
///   warp-aggregated atomic: an in-warp reduction, then one request per
///   warp; queueing counts warps (Fig. 9's constant region to 64
///   threads at 2 blocks).
/// * **Shared scalar, CAS/Exch/Max** — one request per active thread;
///   the constant region ends at [`GpuModel::same_addr_free_requests`]
///   requests (Fig. 11: 4 threads at 1 block, 2 threads at 2 blocks).
/// * **Private strided** — no same-address queueing; instead pays L2
///   line transactions, per-SM atomic-issue queueing, and device-wide
///   L2 bandwidth pressure (Fig. 10/12).
///
/// Block-scoped atomics are serviced on the SM: cheaper service, and
/// only the block's own lanes contend.
#[must_use]
pub fn atomic(
    m: &GpuModel,
    occ: &Occupancy,
    kind: AtomicKind,
    dtype: DType,
    scope: Scope,
    target: Target,
) -> f64 {
    let (service_base, arb_factor) = match scope {
        Scope::Block => (m.atomic_block.for_dtype(dtype), 0.4),
        _ => (m.atomic_device.for_dtype(dtype), 1.0),
    };
    let service = service_base
        + match kind {
            AtomicKind::Add => 0.0,
            AtomicKind::Cas | AtomicKind::Exch | AtomicKind::Max => m.cas_extra_cy,
        };

    match target {
        Target::SharedScalar(_) => {
            let aggregated = kind == AtomicKind::Add && m.warp_aggregation;
            let requests = match (scope, aggregated) {
                (Scope::Block, true) => occ.warps_per_block,
                (Scope::Block, false) => occ.threads_per_block,
                (_, true) => occ.total_resident_warps,
                (_, false) => occ.total_resident_threads,
            };
            let agg_cost = if aggregated {
                m.warp_agg_reduce_cy
            } else {
                0.0
            };
            service
                + agg_cost
                + m.same_addr_delay(requests) * arb_factor * m.dtype_contention_factor(dtype)
        }
        Target::Private { array: _, stride } => {
            let k = lines_per_warp(m, occ, dtype, stride);
            let sm_queue = m.sm_atomic_queue_cy * f64::from(occ.warps_per_sm.saturating_sub(1));
            let pressure = f64::from(occ.total_resident_warps) * k;
            service + k * m.l2_tx_cy + sm_queue + m.l2_queue_delay(pressure) * arb_factor
        }
    }
}

/// Maps a [`GpuOp`] atomic to its kind, if it is one. The further RMW
/// ops (`atomicSub/Min/And/Or/Xor`) are all commutative reductions and
/// share `atomicAdd`'s datapath, including warp aggregation.
#[must_use]
pub fn atomic_kind(op: &GpuOp) -> Option<(AtomicKind, DType, Scope, Target)> {
    match *op {
        GpuOp::AtomicAdd {
            dtype,
            scope,
            target,
        }
        | GpuOp::AtomicRmw {
            dtype,
            scope,
            target,
            ..
        } => Some((AtomicKind::Add, dtype, scope, target)),
        GpuOp::AtomicCas {
            dtype,
            scope,
            target,
        } => Some((AtomicKind::Cas, dtype, scope, target)),
        GpuOp::AtomicExch {
            dtype,
            scope,
            target,
        } => Some((AtomicKind::Exch, dtype, scope, target)),
        GpuOp::AtomicMax {
            dtype,
            scope,
            target,
        } => Some((AtomicKind::Max, dtype, scope, target)),
        _ => None,
    }
}

/// SIMT divergence: `paths` serialized path executions plus a constant
/// reconvergence penalty per extra path.
#[must_use]
pub fn diverge(m: &GpuModel, occ: &Occupancy, dtype: DType, paths: u32) -> f64 {
    let effective = paths.min(m.warp_size).max(1);
    let w = words(dtype);
    let per_path = m.alu_cy * w * m.issue_slowdown(f64::from(occ.threads_per_sm) * w);
    per_path * f64::from(effective) + m.divergence_penalty_cy * f64::from(effective - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{SYSTEM1, SYSTEM3};

    fn model() -> GpuModel {
        GpuModel::for_spec(&SYSTEM3.gpu)
    }

    fn occ(blocks: u32, threads: u32) -> Occupancy {
        Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap()
    }

    #[test]
    fn syncthreads_constant_within_a_warp_then_growing() {
        let m = model();
        let c32 = syncthreads(&m, &occ(1, 32));
        let c16 = syncthreads(&m, &occ(1, 16));
        assert_eq!(
            c32, c16,
            "whole warp runs regardless of lane count (Fig. 7)"
        );
        let c64 = syncthreads(&m, &occ(1, 64));
        let c1024 = syncthreads(&m, &occ(1, 1024));
        assert!(c64 > c32);
        assert!(c1024 > c64);
    }

    #[test]
    fn syncthreads_identical_across_block_counts() {
        let m = model();
        for t in [32, 256, 1024] {
            let a = syncthreads(&m, &occ(1, t));
            let b = syncthreads(&m, &occ(128, t));
            let c = syncthreads(&m, &occ(256, t));
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn syncwarp_constant_until_sm_saturation() {
        let m = model();
        // Full config (128 blocks = #SMs on the 4090): 1 block/SM.
        let c64 = syncwarp(&m, &occ(128, 64));
        let c256 = syncwarp(&m, &occ(128, 256));
        assert_eq!(c64, c256, "flat up to 256 threads/SM on the 4090");
        let c512 = syncwarp(&m, &occ(128, 512));
        assert!(c512 > c256, "drops beyond the full-speed threshold");
        // The drop is 'somewhat', not a collapse (y-axis non-zero).
        assert!(c512 / c256 < 1.5);
    }

    #[test]
    fn syncwarp_double_config_drops_one_step_earlier() {
        // Fig. 8: at 2 blocks/SM the same per-SM load is reached at
        // half the per-block thread count.
        let m = model();
        let full_256 = syncwarp(&m, &occ(128, 256));
        let double_128 = syncwarp(&m, &occ(256, 128));
        assert_eq!(
            full_256, double_128,
            "2 blocks × 128 = 1 block × 256 threads/SM"
        );
        let full_512 = syncwarp(&m, &occ(128, 512));
        let double_256 = syncwarp(&m, &occ(256, 256));
        assert_eq!(full_512, double_256);
        assert!(double_256 > double_128);
    }

    #[test]
    fn system1_holds_full_speed_longer() {
        // RTX 2070 SUPER: full speed to 512 threads/SM (Fig. 8b).
        let m1 = GpuModel::for_spec(&SYSTEM1.gpu);
        let o = |t| Occupancy::compute(&SYSTEM1.gpu, 40, t).unwrap();
        assert_eq!(syncwarp(&m1, &o(256)), syncwarp(&m1, &o(512)));
        assert!(syncwarp(&m1, &o(1024)) > syncwarp(&m1, &o(512)));
    }

    #[test]
    fn shfl_64bit_double_cost_and_earlier_drop() {
        let m = model();
        let f32_128 = shfl(&m, &occ(128, 128), DType::F32);
        let f64_128 = shfl(&m, &occ(128, 128), DType::F64);
        assert!(
            (f64_128 - 2.0 * f32_128).abs() < 1e-9,
            "2 instructions for 64-bit"
        );
        // 64-bit demand saturates at half the thread count.
        let f64_256 = shfl(&m, &occ(128, 256), DType::F64);
        let f32_256 = shfl(&m, &occ(128, 256), DType::F32);
        assert!(f64_256 / f64_128 > 1.0, "64-bit already slowed at 256");
        assert!((f32_256 - f32_128).abs() < 1e-9, "32-bit still flat at 256");
    }

    #[test]
    fn vote_slightly_slower_than_syncwarp() {
        let m = model();
        let o = occ(128, 64);
        assert!(vote(&m, &o) > syncwarp(&m, &o));
        assert!(vote(&m, &o) < 2.0 * syncwarp(&m, &o));
    }

    #[test]
    fn warp_reduce_gated_by_cc() {
        let m1 = GpuModel::for_spec(&SYSTEM1.gpu); // cc 7.5
        let o = Occupancy::compute(&SYSTEM1.gpu, 1, 32).unwrap();
        assert!(warp_reduce(&m1, &o, DType::I32).is_err());
        assert!(warp_reduce(&model(), &occ(1, 32), DType::I32).is_ok());
    }

    #[test]
    fn fence_costs_ordered_by_scope() {
        let m = model();
        assert!(fence(&m, Scope::Block) < fence(&m, Scope::Device));
        assert!(fence(&m, Scope::Device) < fence(&m, Scope::System));
    }

    #[test]
    fn fence_independent_of_occupancy() {
        // Fig. 14: fairly constant regardless of thread count, block
        // count, or stride — the cost function takes no occupancy.
        let m = model();
        assert_eq!(fence(&m, Scope::Device), 250.0);
    }

    #[test]
    fn aggregated_add_constant_until_four_warps() {
        let m = model();
        // 2 blocks: 2 warps at t ≤ 32, 4 warps at t = 64.
        let t32 = atomic(
            &m,
            &occ(2, 32),
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        let t64 = atomic(
            &m,
            &occ(2, 64),
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        assert_eq!(t32, t64, "constant through 64 threads at 2 blocks (Fig. 9)");
        let t128 = atomic(
            &m,
            &occ(2, 128),
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        assert!(t128 > t64, "drops beyond 2 warps per block");
    }

    #[test]
    fn cas_constant_region_ends_at_four_threads_one_block() {
        let m = model();
        let f = |t| {
            atomic(
                &m,
                &occ(1, t),
                AtomicKind::Cas,
                DType::I32,
                Scope::Device,
                Target::SHARED,
            )
        };
        assert_eq!(f(1), f(4), "constant to 4 threads at 1 block (Fig. 11)");
        assert!(f(8) > f(4), "drops beyond 4 threads");
        // 2 blocks: constant only to 2 threads per block.
        let g = |t| {
            atomic(
                &m,
                &occ(2, t),
                AtomicKind::Cas,
                DType::I32,
                Scope::Device,
                Target::SHARED,
            )
        };
        assert_eq!(g(1), g(2));
        assert!(g(4) > g(2));
    }

    #[test]
    fn ablation_no_aggregation_drops_much_earlier() {
        let mut m = model();
        m.warp_aggregation = false;
        let t4 = atomic(
            &m,
            &occ(1, 4),
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        let t32 = atomic(
            &m,
            &occ(1, 32),
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        assert!(
            t32 > t4,
            "without aggregation even one warp contends with itself"
        );
    }

    #[test]
    fn int_fastest_dtype_for_atomics() {
        let m = model();
        let o = occ(64, 256);
        let costs: Vec<f64> = DType::ALL
            .iter()
            .map(|&dt| atomic(&m, &o, AtomicKind::Add, dt, Scope::Device, Target::SHARED))
            .collect();
        assert!(costs[0] < costs[1], "int < ull");
        assert!(costs[1] < costs[2], "ull < float");
        assert!(costs[2] <= costs[3], "float ≤ double");
    }

    #[test]
    fn private_atomics_cheaper_than_shared_at_load() {
        let m = model();
        let o = occ(128, 256);
        let shared = atomic(
            &m,
            &o,
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        let private = atomic(
            &m,
            &o,
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::private(32),
        );
        assert!(
            shared > private,
            "same-location overlap hurts (recommendation 4)"
        );
    }

    #[test]
    fn private_stride_hurts_at_high_block_counts() {
        let m = model();
        let o128 = occ(128, 1024);
        let s1 = atomic(
            &m,
            &o128,
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::private(1),
        );
        let s32 = atomic(
            &m,
            &o128,
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::private(32),
        );
        assert!(
            s32 > s1,
            "32 lines per warp crush L2 bandwidth at 128 blocks (Fig. 10d)"
        );
        // At 1 block the two strides stay within a modest factor: the
        // trend is the same (Fig. 10a/b).
        let o1 = occ(1, 1024);
        let p1 = atomic(
            &m,
            &o1,
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::private(1),
        );
        let p32 = atomic(
            &m,
            &o1,
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::private(32),
        );
        let ratio_1blk = p32 / p1;
        let ratio_128blk = s32 / s1;
        assert!(
            ratio_128blk > ratio_1blk,
            "stride matters far more at high block counts"
        );
    }

    #[test]
    fn more_blocks_lower_private_throughput() {
        let m = model();
        let t = 256;
        let one = atomic(
            &m,
            &occ(1, t),
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::private(1),
        );
        let many = atomic(
            &m,
            &occ(128, t),
            AtomicKind::Add,
            DType::I32,
            Scope::Device,
            Target::private(1),
        );
        assert!(many > one, "128 blocks share the L2 (Fig. 10)");
    }

    #[test]
    fn block_scope_cheaper_than_device_scope() {
        let m = model();
        let o = occ(64, 256);
        for dt in DType::ALL {
            let dev = atomic(&m, &o, AtomicKind::Add, dt, Scope::Device, Target::SHARED);
            let blk = atomic(&m, &o, AtomicKind::Add, dt, Scope::Block, Target::SHARED);
            assert!(blk < dev, "{dt}");
        }
    }

    #[test]
    fn lines_per_warp_geometry() {
        let m = model();
        // 32 lanes × stride 1 × 4 B = 128 B = 1 line.
        assert_eq!(lines_per_warp(&m, &occ(1, 1024), DType::I32, 1), 1.0);
        // 32 lanes × stride 32 × 4 B: each lane 128 B apart → 32 lines.
        assert_eq!(lines_per_warp(&m, &occ(1, 1024), DType::I32, 32), 32.0);
        // 8-byte types at stride 32: still one line per lane.
        assert_eq!(lines_per_warp(&m, &occ(1, 1024), DType::F64, 32), 32.0);
        // Partial warp: 8 lanes stride 1 → 1 line.
        assert_eq!(lines_per_warp(&m, &occ(1, 8), DType::I32, 1), 1.0);
    }

    #[test]
    fn partial_warp_atomic_gain() {
        // Recommendation 8: one lane per warp performing the atomic
        // gives each *operation* a cheaper slot than a full warp of
        // operations — here via the request count at the same address.
        let m = model();
        // 32 warps of which only lane 0 does the CAS (threads=1 per
        // warp is modeled as a 1-thread block) vs one full warp.
        let one_lane = atomic(
            &m,
            &occ(1, 1),
            AtomicKind::Cas,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        let full_warp = atomic(
            &m,
            &occ(1, 32),
            AtomicKind::Cas,
            DType::I32,
            Scope::Device,
            Target::SHARED,
        );
        assert!(full_warp > one_lane);
    }
}
