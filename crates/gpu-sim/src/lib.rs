//! # syncperf-gpu-sim
//!
//! A SIMT GPU simulator: the hardware substrate for regenerating the
//! paper's CUDA figures (Figs. 7-15) and the Listing 1 reduction study
//! without an NVIDIA GPU.
//!
//! The model captures the mechanisms behind every GPU-side result:
//!
//! * **Warp granularity** — partial warps cost like full warps; costs
//!   are flat below 32 threads (Fig. 7).
//! * **Block/SM occupancy** — round-robin block scheduling, resident
//!   limits, waves; `__syncwarp`/shuffle throughput depends on resident
//!   threads per SM, not per block (Fig. 8).
//! * **Atomic units with per-dtype service rates** — `int` < `ull` <
//!   `float`/`double` (Fig. 9).
//! * **Warp-aggregated atomics** — same-address `atomicAdd`s combine
//!   into one request per warp; CAS/Exch cannot (Figs. 9 vs 11).
//! * **Bounded atomic/L2 bandwidth** — "a fixed number of atomics per
//!   time unit" (Figs. 10, 12).
//! * **Constant-cost fences** — with block scope ≈ free and system
//!   scope erratic (Fig. 14, §V-B3).
//! * **A 32-bit shuffle datapath** — 64-bit shuffles cost two
//!   instructions and saturate at half the thread count (Fig. 15).
//!
//! ## Example
//!
//! ```
//! use syncperf_core::{kernel, DType, ExecParams, Protocol, SYSTEM3};
//! use syncperf_gpu_sim::GpuSimExecutor;
//!
//! # fn main() -> syncperf_core::Result<()> {
//! let mut gpu = GpuSimExecutor::new(&SYSTEM3);
//! let p = ExecParams::new(64).with_blocks(2).with_loops(50, 4);
//! // int atomicAdd beats double atomicAdd on a shared variable:
//! let i = Protocol::SIM.measure(&mut gpu, &kernel::cuda_atomic_add_scalar(DType::I32), &p)?;
//! let d = Protocol::SIM.measure(&mut gpu, &kernel::cuda_atomic_add_scalar(DType::F64), &p)?;
//! assert!(i.throughput().unwrap() > d.throughput().unwrap());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod config;
pub mod cost;
pub mod engine;
pub mod executor;
pub mod explain;
pub mod occupancy;
pub mod program;
pub mod trace_tap;

pub use config::{AtomicService, GpuModel};
pub use engine::{run_full_stepping, GpuEngineResult};
pub use executor::GpuSimExecutor;
pub use explain::{explain_op as explain_gpu_op, GpuCostBreakdown};
pub use occupancy::Occupancy;
pub use program::{
    simulate_histogram, simulate_reduction, simulate_scan, HistogramConfig, HistogramReport,
    HistogramStrategy, ReductionConfig, ReductionReport, ReductionStrategy, ScanConfig, ScanReport,
    ScanStrategy,
};
pub use trace_tap::{audit_geometry, audit_launch, LaunchAudit};
