//! The GPU-simulator [`Executor`]: plugs the engine into the
//! measurement protocol with `clock64()`-style cycle reporting.

use syncperf_core::rng::SplitMix64;
use syncperf_core::{ExecParams, Executor, GpuOp, Result, SystemSpec, ThreadTimes, TimeUnit};

use crate::config::GpuModel;
use crate::engine::{self, GpuEngineResult};
use crate::occupancy::Occupancy;

/// How many recent engine results the executor memoizes (mirrors the
/// CPU executor's memo: the protocol alternates between a kernel's two
/// bodies with identical parameters many times per measurement).
const ENGINE_CACHE_CAP: usize = 4;

/// One memoized deterministic engine run.
#[derive(Debug, Clone)]
struct CacheEntry {
    body: Vec<GpuOp>,
    blocks: u32,
    threads: u32,
    reps: u64,
    result: GpuEngineResult,
}

/// Simulates the GPU of one of the paper's systems.
///
/// Times are reported in cycles at the device's clock (the paper reads
/// the cycle counter and divides by the clock frequency). Runs are
/// exactly reproducible — like the paper's GPU measurements ("many of
/// the GPU tests yield the exact same runtime for all nine runs") —
/// except when the body contains a `__threadfence_system()`, whose
/// PCIe crossing makes it "more erratic" (§V-B3); those runs get
/// deterministic seeded jitter.
///
/// # Examples
///
/// ```
/// use syncperf_core::{kernel, DType, ExecParams, Protocol, SYSTEM3};
/// use syncperf_gpu_sim::GpuSimExecutor;
///
/// # fn main() -> syncperf_core::Result<()> {
/// let mut gpu = GpuSimExecutor::new(&SYSTEM3);
/// let m = Protocol::SIM.measure(
///     &mut gpu,
///     &kernel::cuda_syncthreads(),
///     &ExecParams::new(256).with_blocks(64).with_loops(50, 4),
/// )?;
/// assert!(m.throughput().unwrap() > 1e6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GpuSimExecutor {
    system: SystemSpec,
    model: GpuModel,
    rng: SplitMix64,
    recorder: syncperf_core::obs::Recorder,
    /// Most-recent-first memo of engine runs. The engine is fully
    /// deterministic given `(body, blocks, threads, reps)`; bypassed
    /// whenever a recorder is live (observed runs must re-emit their
    /// launch spans and counters). The jitter RNG is only consumed for
    /// system-fence bodies and draws from the memoized result exactly
    /// as from a fresh run, so memoization never changes measurements.
    cache: Vec<CacheEntry>,
}

impl GpuSimExecutor {
    /// Default deterministic seed.
    pub const DEFAULT_SEED: u64 = 0x6E_0C_0D_E5;

    /// Creates a simulator for `system`'s GPU.
    #[must_use]
    pub fn new(system: &SystemSpec) -> Self {
        Self::with_seed(system, Self::DEFAULT_SEED)
    }

    /// Creates a simulator with an explicit seed for the system-fence
    /// jitter.
    #[must_use]
    pub fn with_seed(system: &SystemSpec, seed: u64) -> Self {
        GpuSimExecutor {
            system: system.clone(),
            model: GpuModel::for_spec(&system.gpu),
            rng: SplitMix64::seed_from_u64(seed),
            recorder: syncperf_core::obs::Recorder::disabled(),
            cache: Vec::new(),
        }
    }

    /// Creates a simulator with a custom model (ablation benches).
    #[must_use]
    pub fn with_model(system: &SystemSpec, model: GpuModel) -> Self {
        GpuSimExecutor {
            system: system.clone(),
            model,
            rng: SplitMix64::seed_from_u64(Self::DEFAULT_SEED),
            recorder: syncperf_core::obs::Recorder::disabled(),
            cache: Vec::new(),
        }
    }

    /// Replaces the jitter RNG seed, leaving system and model intact.
    /// The sweep scheduler seeds each job's executor from the job's
    /// content hash so a measurement depends only on its own identity,
    /// never on execution order.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::seed_from_u64(seed);
        self
    }

    /// The active model.
    #[must_use]
    pub fn model(&self) -> &GpuModel {
        &self.model
    }

    /// Mutable access to the model, for ablations.
    pub fn model_mut(&mut self) -> &mut GpuModel {
        &mut self.model
    }

    /// The simulated system.
    #[must_use]
    pub fn system(&self) -> &SystemSpec {
        &self.system
    }

    /// Attaches a [`Recorder`](syncperf_core::obs::Recorder); engine
    /// runs then emit `gpu_sim.*` events/counters into it. Without one,
    /// the executor falls back to the globally installed recorder.
    #[must_use]
    pub fn with_recorder(mut self, rec: syncperf_core::obs::Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// The recorder engine runs observe into: this executor's own if
    /// enabled, otherwise the global one.
    fn effective_recorder(&self) -> &syncperf_core::obs::Recorder {
        if self.recorder.is_enabled() {
            &self.recorder
        } else {
            syncperf_core::obs::global()
        }
    }

    /// Runs the engine through the memo cache (recorder known to be
    /// disabled). Hits move to the front; misses evict the oldest entry
    /// beyond [`ENGINE_CACHE_CAP`].
    fn cached_run(&mut self, body: &[GpuOp], params: &ExecParams) -> Result<GpuEngineResult> {
        let reps = params.timed_reps();
        if let Some(pos) = self.cache.iter().position(|e| {
            e.blocks == params.blocks
                && e.threads == params.threads
                && e.reps == reps
                && e.body == body
        }) {
            let hit = self.cache.remove(pos);
            let result = hit.result.clone();
            self.cache.insert(0, hit);
            return Ok(result);
        }
        let occ = Occupancy::compute(&self.system.gpu, params.blocks, params.threads)?;
        let result =
            engine::run_observed(&self.model, &occ, body, reps, self.effective_recorder())?;
        self.cache.insert(
            0,
            CacheEntry {
                body: body.to_vec(),
                blocks: params.blocks,
                threads: params.threads,
                reps,
                result: result.clone(),
            },
        );
        self.cache.truncate(ENGINE_CACHE_CAP);
        Ok(result)
    }

    /// Seeds the engine memo with a precomputed result for
    /// `(body, params)`. The scheduler's batched sweep evaluation
    /// computes many same-shape points in one struct-of-arrays pass
    /// ([`crate::batch::run_batch`]) and hands each job its slice; the
    /// protocol's executions then hit the memo instead of re-running
    /// the engine. Invisible to results for the same reasons the memo
    /// itself is (see the `cache` field docs).
    pub fn prime_engine(&mut self, body: &[GpuOp], params: &ExecParams, result: GpuEngineResult) {
        self.cache.insert(
            0,
            CacheEntry {
                body: body.to_vec(),
                blocks: params.blocks,
                threads: params.threads,
                reps: params.timed_reps(),
                result,
            },
        );
        self.cache.truncate(ENGINE_CACHE_CAP);
    }
}

impl Executor for GpuSimExecutor {
    type Op = GpuOp;

    fn name(&self) -> &str {
        "gpu-sim"
    }

    fn time_unit(&self) -> TimeUnit {
        TimeUnit::Cycles {
            clock_ghz: self.system.gpu.clock_ghz,
        }
    }

    fn execute(&mut self, body: &[GpuOp], params: &ExecParams) -> Result<ThreadTimes> {
        params.validate()?;
        let result = if self.effective_recorder().is_enabled() {
            // Observed runs bypass the memo so every execution re-emits
            // its launch span and counters.
            let occ = Occupancy::compute(&self.system.gpu, params.blocks, params.threads)?;
            engine::run_observed(
                &self.model,
                &occ,
                body,
                params.timed_reps(),
                self.effective_recorder(),
            )?
        } else {
            self.cached_run(body, params)?
        };
        let total = result.total_cycles();
        #[allow(clippy::cast_possible_truncation)]
        let n = result.total_threads as usize;
        if result.has_system_fence {
            let amp = self.model.fence_system_jitter;
            let per_thread = (0..n)
                .map(|_| {
                    let u: f64 = self.rng.gen_symmetric();
                    total * (1.0 + amp * u)
                })
                .collect();
            Ok(ThreadTimes::per_thread(per_thread))
        } else {
            Ok(ThreadTimes::uniform(total, n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, Protocol, Scope, SYSTEM1, SYSTEM2, SYSTEM3};

    fn quick(blocks: u32, threads: u32) -> ExecParams {
        ExecParams::new(threads)
            .with_blocks(blocks)
            .with_loops(50, 4)
    }

    #[test]
    fn cycle_unit_uses_device_clock() {
        let gpu = GpuSimExecutor::new(&SYSTEM3);
        match gpu.time_unit() {
            TimeUnit::Cycles { clock_ghz } => assert_eq!(clock_ghz, 2.625),
            TimeUnit::Seconds => panic!("GPU must report cycles"),
        }
    }

    #[test]
    fn per_thread_length_is_total_threads() {
        let mut gpu = GpuSimExecutor::new(&SYSTEM3);
        let t = gpu
            .execute(&kernel::cuda_syncwarp().baseline, &quick(4, 64))
            .unwrap();
        assert_eq!(t.len(), 256);
    }

    #[test]
    fn deterministic_without_system_fence() {
        let mut gpu = GpuSimExecutor::new(&SYSTEM3);
        let body = kernel::cuda_atomic_add_scalar(DType::I32).test;
        let a = gpu.execute(&body, &quick(2, 128)).unwrap();
        let b = gpu.execute(&body, &quick(2, 128)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn system_fence_is_erratic() {
        let mut gpu = GpuSimExecutor::new(&SYSTEM3);
        let body = kernel::cuda_threadfence(Scope::System, DType::I32, 1).test;
        let a = gpu.execute(&body, &quick(1, 64)).unwrap();
        let b = gpu.execute(&body, &quick(1, 64)).unwrap();
        assert_ne!(a, b, "§V-B3: system fences involve the PCIe bus");
    }

    #[test]
    fn protocol_end_to_end_syncthreads() {
        let mut gpu = GpuSimExecutor::new(&SYSTEM3);
        let m = Protocol::PAPER
            .measure(&mut gpu, &kernel::cuda_syncthreads(), &quick(64, 256))
            .unwrap();
        // 8 warps per block: base + 7×per-warp cycles.
        let expect = 25.0 + 9.0 * 7.0;
        assert!(
            (m.per_op - expect).abs() < 1e-6,
            "per_op {} vs {expect}",
            m.per_op
        );
    }

    #[test]
    fn all_three_gpus_run() {
        for sys in [&SYSTEM1, &SYSTEM2, &SYSTEM3] {
            let mut gpu = GpuSimExecutor::new(sys);
            let m = Protocol::SIM
                .measure(&mut gpu, &kernel::cuda_syncwarp(), &quick(2, 64))
                .unwrap();
            assert!(m.per_op > 0.0, "{}", sys);
        }
    }

    #[test]
    fn throughput_conversion_uses_clock() {
        let mut gpu = GpuSimExecutor::new(&SYSTEM3);
        let m = Protocol::SIM
            .measure(&mut gpu, &kernel::cuda_syncwarp(), &quick(1, 32))
            .unwrap();
        let expected = 2.625e9 / m.per_op;
        assert!((m.throughput().unwrap() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn attached_recorder_observes_scheduling_and_conflicts() {
        let rec = syncperf_core::obs::Recorder::enabled();
        let mut gpu = GpuSimExecutor::new(&SYSTEM3).with_recorder(rec.clone());
        gpu.execute(
            &kernel::cuda_atomic_add_scalar(DType::I32).baseline,
            &quick(4, 64),
        )
        .unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("gpu_sim.launches"), 1);
        assert_eq!(snap.counter("gpu_sim.blocks_scheduled"), 4);
        assert_eq!(snap.counter("gpu_sim.warps_scheduled"), 8);
        assert!(
            snap.counter("gpu_sim.atomic_conflicts") > 0,
            "shared-scalar atomics conflict"
        );
    }

    #[test]
    fn engine_memo_is_invisible_to_results() {
        // A cache-hitting executor and an observed (cache-bypassing)
        // executor with the same jitter seed must agree bit-for-bit —
        // including for system-fence bodies, whose jitter RNG draws
        // from the memoized result exactly as from a fresh run.
        let fenced = kernel::cuda_threadfence(Scope::System, DType::I32, 1).test;
        let plain = kernel::cuda_atomic_add_scalar(DType::I32).baseline;
        let mut cached = GpuSimExecutor::with_seed(&SYSTEM3, 7);
        let mut observed = GpuSimExecutor::with_seed(&SYSTEM3, 7)
            .with_recorder(syncperf_core::obs::Recorder::enabled());
        for _ in 0..3 {
            for body in [&fenced, &plain] {
                assert_eq!(
                    cached.execute(body, &quick(2, 64)).unwrap(),
                    observed.execute(body, &quick(2, 64)).unwrap()
                );
            }
        }
    }

    #[test]
    fn primed_engine_result_is_used_and_exact() {
        let body = kernel::cuda_syncthreads().test;
        let params = quick(8, 128);
        let mut fresh = GpuSimExecutor::new(&SYSTEM3);
        let expect = fresh.execute(&body, &params).unwrap();

        let mut primed = GpuSimExecutor::new(&SYSTEM3);
        let occ = Occupancy::compute(&SYSTEM3.gpu, params.blocks, params.threads).unwrap();
        let batch = crate::batch::run_batch(
            primed.model(),
            std::slice::from_ref(&occ),
            &body,
            params.timed_reps(),
        )
        .unwrap();
        primed.prime_engine(&body, &params, batch[0].clone());
        assert_eq!(primed.execute(&body, &params).unwrap(), expect);
    }

    #[test]
    fn rejects_oversized_launches() {
        let mut gpu = GpuSimExecutor::new(&SYSTEM3);
        assert!(gpu
            .execute(&kernel::cuda_syncwarp().baseline, &quick(1, 2000))
            .is_err());
    }
}
