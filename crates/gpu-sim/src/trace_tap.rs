//! Launch-geometry bridge into the analyzer's race detector.
//!
//! The GPU engine schedules warps, not threads; the analyzer replays a
//! small SIMT grid. This module maps a real launch shape
//! (`blocks × threads_per_block`, device warp size) onto an audit
//! [`Geometry`] that preserves the hazards the detector must be able to
//! observe, then runs the full static↔dynamic cross-check on a body
//! under that geometry.
//!
//! The audit grid always keeps **at least two blocks and two warps per
//! block** — the static linter's verdicts are defined against
//! device-visible memory reachable from multiple blocks (block-scoped
//! atomics provide no cross-block atomicity, `__syncthreads()` no
//! cross-block ordering), so the replay must span enough of the grid to
//! witness those hazards even when auditing a smaller launch.

use syncperf_analyze::trace::Geometry;
use syncperf_analyze::vc::{replay_gpu, AUDIT_ITERATIONS};
use syncperf_analyze::{check_gpu_body, lint_gpu_body, Diagnostic, DynReport};
use syncperf_core::obs;
use syncperf_core::GpuOp;

/// Scales a launch shape down to an audit geometry: lane count capped
/// at 4 (races within a warp need only two lanes), warps and blocks
/// kept between 2 and 4 so cross-warp and cross-block hazards stay
/// observable without replaying thousands of threads.
#[must_use]
pub fn audit_geometry(blocks: u32, threads_per_block: u32, warp_size: u32) -> Geometry {
    let warp_size = warp_size.max(1);
    let warps = threads_per_block.div_ceil(warp_size).clamp(2, 4);
    Geometry {
        blocks: blocks.clamp(2, 4) as usize,
        warps_per_block: warps as usize,
        lanes_per_warp: warp_size.clamp(2, 4) as usize,
    }
}

/// The outcome of auditing one body under one launch shape.
#[derive(Debug, Clone)]
pub struct LaunchAudit {
    /// The audit grid the body was replayed on.
    pub geometry: Geometry,
    /// Static linter findings for the body.
    pub diagnostics: Vec<Diagnostic>,
    /// Dynamic replay report under `geometry`.
    pub report: DynReport,
}

/// Audits `body` as launched with `blocks × threads_per_block` threads
/// on a device with the given warp size: runs the static linter, the
/// vector-clock replay on the scaled-down grid, and the agreement
/// cross-check between them.
///
/// Records `analyze.gpu_crosscheck.{ok,fail}` on the global recorder.
///
/// # Errors
///
/// Returns a description of any static↔dynamic disagreement.
pub fn audit_launch(
    body: &[GpuOp],
    blocks: u32,
    threads_per_block: u32,
    warp_size: u32,
) -> Result<LaunchAudit, String> {
    let geometry = audit_geometry(blocks, threads_per_block, warp_size);
    // The agreement contract is defined against the default audit
    // grid; the launch-scaled grid must reach the same verdicts.
    let agreement = check_gpu_body(body);
    let report = replay_gpu(body, geometry, AUDIT_ITERATIONS);
    let result = if !agreement.holds() {
        Err(format!(
            "static/dynamic disagreement: {}",
            agreement.explain()
        ))
    } else if report.race_locs() != agreement.report.race_locs()
        || report.barrier_divergence != agreement.report.barrier_divergence
    {
        Err(format!(
            "launch geometry {geometry:?} changes the verdict: {:?} vs {:?}",
            report.race_locs(),
            agreement.report.race_locs()
        ))
    } else {
        Ok(LaunchAudit {
            geometry,
            diagnostics: lint_gpu_body(body),
            report,
        })
    };
    let counter = if result.is_ok() {
        "analyze.gpu_crosscheck.ok"
    } else {
        "analyze.gpu_crosscheck.fail"
    };
    obs::global().counter(counter).inc();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, Scope, Target};

    #[test]
    fn geometry_scaling_preserves_hazard_shape() {
        let g = audit_geometry(1024, 256, 32);
        assert_eq!(g.blocks, 4);
        assert_eq!(g.warps_per_block, 4);
        assert_eq!(g.lanes_per_warp, 4);
        // Even a single-block, single-warp launch audits cross-block.
        let g = audit_geometry(1, 8, 32);
        assert!(g.blocks >= 2 && g.warps_per_block >= 2);
    }

    #[test]
    fn builtin_gpu_kernels_audit_clean() {
        let kernels = [
            kernel::cuda_syncthreads(),
            kernel::cuda_syncwarp(),
            kernel::cuda_atomic_add_scalar(DType::F64),
            kernel::cuda_atomic_add_array(DType::I32, 32),
            kernel::cuda_atomic_cas_scalar(DType::I32),
            kernel::cuda_atomic_exch(DType::U64),
            kernel::cuda_threadfence(Scope::Device, DType::I32, 1),
            kernel::cuda_divergence(DType::I32, 32),
        ];
        for k in kernels {
            for body in [&k.baseline, &k.test] {
                let audit =
                    audit_launch(body, 160, 256, 32).unwrap_or_else(|e| panic!("{}: {e}", k.name));
                assert!(audit.report.is_clean(), "{}: unexpected race", k.name);
            }
        }
    }

    #[test]
    fn seeded_block_scope_race_detected_under_any_launch() {
        let body = [GpuOp::AtomicAdd {
            dtype: DType::I32,
            scope: Scope::Block,
            target: Target::SHARED,
        }];
        for (blocks, tpb) in [(1, 32), (2, 64), (1024, 1024)] {
            let audit = audit_launch(&body, blocks, tpb, 32).expect("agreement");
            assert_eq!(audit.report.races.len(), 1, "{blocks}x{tpb}");
            assert!(audit.diagnostics.iter().any(|d| d.code.code() == "SL001"));
        }
    }

    #[test]
    fn seeded_divergent_barrier_detected() {
        let body = [
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 2,
            },
            GpuOp::SyncThreads,
        ];
        let audit = audit_launch(&body, 4, 128, 32).expect("agreement");
        assert!(audit.report.barrier_divergence);
        assert!(audit.diagnostics.iter().any(|d| d.code.code() == "SL002"));
    }
}
