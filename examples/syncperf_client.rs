//! A complete round trip through the measurement query service: start
//! a server in-process on an ephemeral port, then exercise every
//! endpoint the way an external client would — plain HTTP/1.1 over a
//! `TcpStream`, no client library required.
//!
//! Run with: `cargo run --release --example syncperf_client`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use syncperf_bench::serving;
use syncperf_core::Result;
use syncperf_sched::{SchedConfig, Scheduler};
use syncperf_serve::{ServeConfig, Server};

/// Minimal HTTP client: one request, `Connection: close`, returns
/// (status line, body).
fn http(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: syncperf\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (String, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: syncperf\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn main() -> Result<()> {
    // Keep the example hermetic: its own results/cache directory.
    let results = std::env::temp_dir().join(format!("syncperf-client-{}", std::process::id()));
    std::fs::create_dir_all(&results)?;
    std::fs::write(results.join("fig_demo.csv"), "threads,ops\n2,100\n4,180\n")?;

    let mut sched_cfg = SchedConfig::new(2).with_label("client-example");
    sched_cfg.cache_dir = results.join(".cache");
    let scheduler = Arc::new(Scheduler::new(sched_cfg));

    let mut cfg = ServeConfig::new(scheduler, serving::default_resolver());
    cfg.addr = "127.0.0.1:0".into();
    cfg.results_dir.clone_from(&results);
    let server = Server::start(cfg)?;
    let addr = server.addr();
    println!("serving on http://{addr}\n");

    // 1. Liveness.
    let (status, body) = get(addr, "/healthz");
    println!("GET /healthz           -> {status}: {}", body.trim());

    // 2. Compute a measurement (cold: runs on the scheduler pool).
    let spec = "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 8}";
    let (status, body) = post(addr, "/compute", spec);
    println!("POST /compute (cold)   -> {status}");
    let hash = body
        .split("\"hash\": \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("hash in response")
        .to_string();
    println!("    computed job {hash}");

    // 3. The same request again is answered from the cache.
    let (status, body) = post(addr, "/compute", spec);
    let source = body
        .split("\"source\": \"")
        .nth(1)
        .and_then(|s| s.split('"').next());
    println!(
        "POST /compute (warm)   -> {status} (source: {})",
        source.unwrap_or("?")
    );

    // 4. Fetch it directly by content hash.
    let (status, _) = get(addr, &format!("/job/{hash}"));
    println!("GET /job/{hash} -> {status}");

    // 5. Parameter query: exact, then nearest-match.
    let (status, _) = get(addr, "/query?kernel=omp_barrier&threads=8&exact=1");
    println!("GET /query (exact)     -> {status}");
    let (status, body) = get(addr, "/query?kernel=omp_barrier&threads=6");
    let distance = body
        .split("\"distance\": ")
        .nth(1)
        .and_then(|s| s.split(',').next());
    println!(
        "GET /query (nearest)   -> {status} (distance: {})",
        distance.unwrap_or("?")
    );

    // 6. Figure outputs straight from the results directory.
    let (status, body) = get(addr, "/figure/fig_demo");
    println!(
        "GET /figure/fig_demo   -> {status} ({} bytes of CSV)",
        body.len()
    );

    // 7. A miss is a clean 404, not an error.
    let (status, _) = get(addr, "/job/0000000000000000");
    println!("GET /job/<unknown>     -> {status}");

    // 8. Service counters.
    let (status, body) = get(addr, "/stats");
    println!("GET /stats             -> {status}\n{body}");

    // 9. Graceful shutdown over the wire.
    let (status, _) = post(addr, "/shutdown", "");
    println!("POST /shutdown         -> {status}");
    server.wait();
    println!("server exited cleanly");

    std::fs::remove_dir_all(&results)?;
    Ok(())
}
