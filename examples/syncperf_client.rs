//! A complete round trip through the measurement query service: start
//! a server in-process on an ephemeral port, then exercise every
//! endpoint the way an external client would — over a single
//! keep-alive HTTP/1.1 connection, the same reuse path the
//! `syncperf_load` harness measures (its [`syncperf_load::ClientConn`]
//! is the client here).
//!
//! Run with: `cargo run --release --example syncperf_client`

use std::sync::Arc;
use std::time::Duration;

use syncperf_bench::serving;
use syncperf_core::Result;
use syncperf_load::ClientConn;
use syncperf_sched::{SchedConfig, Scheduler};
use syncperf_serve::{ServeConfig, Server};

fn field(body: &str, key: &str) -> String {
    body.split(&format!("\"{key}\": \""))
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap_or("?")
        .to_string()
}

fn main() -> Result<()> {
    // Keep the example hermetic: its own results/cache directory.
    let results = std::env::temp_dir().join(format!("syncperf-client-{}", std::process::id()));
    std::fs::create_dir_all(&results)?;
    std::fs::write(results.join("fig_demo.csv"), "threads,ops\n2,100\n4,180\n")?;

    let mut sched_cfg = SchedConfig::new(2).with_label("client-example");
    sched_cfg.cache_dir = results.join(".cache");
    let scheduler = Arc::new(Scheduler::new(sched_cfg));

    let mut cfg = ServeConfig::new(scheduler, serving::default_resolver());
    cfg.addr = "127.0.0.1:0".into();
    cfg.results_dir.clone_from(&results);
    let server = Server::start(cfg)?;
    let addr = server.addr();
    println!("serving on http://{addr}\n");

    // Every request below travels over this ONE keep-alive connection
    // — the server advertises `Connection: keep-alive` and the client
    // reuses the socket until told otherwise.
    let mut conn = ClientConn::new(&addr.to_string(), Duration::from_secs(120))
        .map_err(|e| syncperf_core::SyncPerfError::InvalidParams(e.to_string()))?;
    let mut http = |method: &str, path: &str, body: Option<&str>| {
        let reply = conn.request(method, path, body).expect("request");
        (reply.status, reply.body)
    };

    // 1. Liveness.
    let (status, body) = http("GET", "/healthz", None);
    println!("GET /healthz           -> {status}: {}", body.trim());

    // 2. Compute a measurement (cold: runs on the scheduler pool).
    let spec = "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 8}";
    let (status, body) = http("POST", "/compute", Some(spec));
    println!("POST /compute (cold)   -> {status}");
    let hash = field(&body, "hash");
    println!("    computed job {hash}");

    // 3. The same request again is answered from the cache.
    let (status, body) = http("POST", "/compute", Some(spec));
    println!(
        "POST /compute (warm)   -> {status} (source: {})",
        field(&body, "source")
    );

    // 4. Fetch it directly by content hash.
    let (status, _) = http("GET", &format!("/job/{hash}"), None);
    println!("GET /job/{hash} -> {status}");

    // 5. Parameter query: exact, then nearest-match.
    let (status, _) = http("GET", "/query?kernel=omp_barrier&threads=8&exact=1", None);
    println!("GET /query (exact)     -> {status}");
    let (status, body) = http("GET", "/query?kernel=omp_barrier&threads=6", None);
    let distance = body
        .split("\"distance\": ")
        .nth(1)
        .and_then(|s| s.split(',').next());
    println!(
        "GET /query (nearest)   -> {status} (distance: {})",
        distance.unwrap_or("?")
    );

    // 6. Figure outputs straight from the results directory.
    let (status, body) = http("GET", "/figure/fig_demo", None);
    println!(
        "GET /figure/fig_demo   -> {status} ({} bytes of CSV)",
        body.len()
    );

    // 7. A miss is a clean 404, not an error — and it does NOT cost
    //    the connection: the next request still reuses the socket.
    let (status, _) = http("GET", "/job/0000000000000000", None);
    println!("GET /job/<unknown>     -> {status}");

    // 8. Scrape /metrics and read the telemetry back: the per-request
    //    counters show everything above traveling one connection.
    let (status, body) = http("GET", "/metrics", None);
    let snap = syncperf_core::obs::metrics::parse(&body);
    println!(
        "GET /metrics           -> {status} ({} requests served, {} live connections, p99 {}us)",
        snap.counter("serve_requests"),
        snap.gauges.get("serve_connections").copied().unwrap_or(0),
        snap.histogram("serve_latency_us").quantile(0.99),
    );

    // 9. Service counters (human-readable twin of /metrics).
    let (status, body) = http("GET", "/stats", None);
    println!("GET /stats             -> {status}\n{body}");

    // 10. Graceful shutdown over the wire.
    let (status, _) = http("POST", "/shutdown", Some(""));
    println!("POST /shutdown         -> {status}");
    println!("connection reconnects: {}", conn.reconnects);
    server.wait();
    println!("server exited cleanly");

    std::fs::remove_dir_all(&results)?;
    Ok(())
}
