//! Quickstart: measure a handful of synchronization primitives on a
//! simulated system and on real threads.
//!
//! Run with: `cargo run --release --example quickstart`

use syncperf::prelude::*;

fn main() -> Result<()> {
    // --- 1. Measure on the simulated System 3 (AMD 2950X + RTX 4090).
    println!("== simulated {} ==", SYSTEM3);
    let mut cpu = CpuSimExecutor::new(&SYSTEM3);
    let params = ExecParams::new(16).with_loops(1000, 100);

    for (name, k) in [
        ("barrier", kernel::omp_barrier()),
        (
            "atomic update (int, shared)",
            kernel::omp_atomic_update_scalar(DType::I32),
        ),
        (
            "atomic update (double, shared)",
            kernel::omp_atomic_update_scalar(DType::F64),
        ),
        ("critical add (int)", kernel::omp_critical_add(DType::I32)),
        ("flush (padded)", kernel::omp_flush(DType::I32, 16)),
    ] {
        let m = Protocol::PAPER.measure(&mut cpu, &k, &params)?;
        println!(
            "  {name:<32} {:>8.1} ns/op   {:>10.3e} ops/s/thread",
            m.runtime_seconds() * 1e9,
            m.throughput_clamped(1e-10),
        );
    }

    // --- 2. The same framework drives the GPU simulator.
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let gpu_params = ExecParams::new(256).with_blocks(64).with_loops(1000, 100);
    for (name, k) in [
        ("__syncthreads()", kernel::cuda_syncthreads()),
        ("__syncwarp()", kernel::cuda_syncwarp()),
        (
            "atomicAdd (int, shared)",
            kernel::cuda_atomic_add_scalar(DType::I32),
        ),
        (
            "atomicAdd (float, shared)",
            kernel::cuda_atomic_add_scalar(DType::F32),
        ),
        (
            "__threadfence()",
            kernel::cuda_threadfence(Scope::Device, DType::I32, 1),
        ),
    ] {
        let m = Protocol::PAPER.measure(&mut gpu, &k, &gpu_params)?;
        println!(
            "  {name:<32} {:>8.1} cycles  {:>10.3e} ops/s/thread",
            m.per_op,
            m.throughput_clamped(1e-10),
        );
    }

    // --- 3. And real OS threads with real atomics (trends depend on
    //        this machine's core count; the framework is identical).
    println!("\n== real threads on this machine ==");
    let mut real = OmpExecutor::new();
    let quick = ExecParams::new(2).with_loops(200, 50).with_warmup(2);
    let m = Protocol::SIM.measure(
        &mut real,
        &kernel::omp_atomic_update_scalar(DType::I32),
        &quick,
    )?;
    println!(
        "  atomic int add, 2 threads: {:.1} ns/op",
        m.runtime_seconds() * 1e9
    );
    let m = Protocol::SIM.measure(&mut real, &kernel::omp_atomic_read(DType::I32), &quick)?;
    println!(
        "  atomic read overhead: {:.2} ns ({})",
        m.runtime_seconds() * 1e9,
        if m.is_negligible() {
            "negligible, as the paper found"
        } else {
            "measurable"
        }
    );

    // --- 4. Parallel regions and primitives are usable directly, too.
    let sum = AtomicCell::new(0u64);
    Team::new(4).parallel(|ctx| {
        sum.update(ctx.tid as u64 + 1);
        ctx.barrier();
        assert_eq!(sum.read(), 10);
    });
    println!("\nteam of 4 summed thread ids + 1 = {}", sum.read());
    Ok(())
}
