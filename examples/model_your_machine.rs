//! Model *your* machine: define a custom system from a spec string (or
//! a `.sys` file — see `syncperf::core::sysfile`), then ask the
//! simulators how its synchronization primitives will behave before you
//! ever write the parallel code.
//!
//! Run with: `cargo run --release --example model_your_machine`

use syncperf::core::stats;
use syncperf::core::sysfile::parse_system;
use syncperf::prelude::*;

fn main() -> Result<()> {
    // A hypothetical workstation: single-socket 8-core/16-thread CPU
    // and a mid-range cc 8.6 GPU. Only the differences from System 3
    // need to be stated.
    let spec = parse_system(
        "id = 9\n\
         cpu.name = Hypothetical 8-core workstation\n\
         cpu.sockets = 1\n\
         cpu.cores_per_socket = 8\n\
         cpu.numa_nodes = 1\n\
         cpu.base_clock_ghz = 4.2\n\
         cpu_jitter = 0.02\n\
         gpu.name = Hypothetical cc8.6 GPU\n\
         gpu.compute_capability = 8.6\n\
         gpu.clock_ghz = 1.7\n\
         gpu.sms = 46\n\
         gpu.max_threads_per_sm = 1536\n\
         gpu.cuda_cores_per_sm = 128\n\
         gpu.memory_gb = 8\n",
    )?;
    println!("modeling: {spec}\n");

    // --- CPU: where does false sharing stop hurting on this machine?
    let mut cpu = CpuSimExecutor::new(&spec);
    let threads = spec.cpu.total_cores();
    println!("atomic int adds from {threads} threads, by array stride:");
    for stride in [1u32, 4, 8, 16] {
        let m = Protocol::PAPER.measure(
            &mut cpu,
            &kernel::omp_atomic_update_array(DType::I32, stride),
            &ExecParams::new(threads).with_loops(1000, 100),
        )?;
        // Bootstrap CI over the 9 runs' differences shows measurement
        // confidence under this system's jitter.
        let reps = m.params.timed_reps() as f64;
        let diffs: Vec<f64> = m
            .test_runs
            .iter()
            .zip(&m.baseline_runs)
            .map(|(t, b)| (t - b) / reps * 1e9)
            .collect();
        let (lo, hi) = stats::bootstrap_median_ci(&diffs, 0.95, 300, 1);
        println!(
            "  stride {stride:>2}: {:>7.1} ns/op   (95% CI [{lo:.1}, {hi:.1}])",
            m.runtime_seconds() * 1e9
        );
    }

    // --- CPU: barrier scaling on 8 cores + SMT.
    let mut points = Vec::new();
    for t in spec.cpu.omp_thread_counts() {
        let m = Protocol::PAPER.measure(
            &mut cpu,
            &kernel::omp_barrier(),
            &ExecParams::new(t).with_loops(1000, 100),
        )?;
        points.push((f64::from(t), m.throughput_clamped(1e-10)));
    }
    let mut fig = FigureData::new(
        "custom_barrier",
        format!("OpenMP barrier on {}", spec.cpu.name),
        "threads",
        "barriers/s/thread",
    );
    fig.push_series(Series::new("barrier", points));
    println!("\n{}", fig.render_ascii(64, 10));

    // --- GPU: pick a block size for a barrier-heavy kernel.
    let mut gpu = GpuSimExecutor::new(&spec);
    println!("__syncthreads() cost by block size on {}:", spec.gpu.name);
    for threads in [64u32, 128, 256, 512, 1024] {
        let m = Protocol::PAPER.measure(
            &mut gpu,
            &kernel::cuda_syncthreads(),
            &ExecParams::new(threads)
                .with_blocks(spec.gpu.sms)
                .with_loops(1000, 100),
        )?;
        println!(
            "  {threads:>4} threads/block: {:>6.1} cycles/sync",
            m.per_op
        );
    }
    println!("\nsmaller blocks pay less per barrier — recommendation 1 of §V-B5");
    Ok(())
}
