//! The Listing 1 study as a library user would run it: simulate the
//! five CUDA max-reduction strategies on each capable GPU, then verify
//! the reduction logic itself on real threads.
//!
//! Run with: `cargo run --release --example reduction_strategies`

use syncperf::core::all_systems;
use syncperf::gpu_sim::{simulate_reduction, GpuModel};
use syncperf::prelude::*;

fn main() -> Result<()> {
    for sys in all_systems() {
        let model = GpuModel::for_spec(&sys.gpu);
        let cfg = ReductionConfig::megabyte_input(&sys.gpu);
        println!(
            "\n{} (cc {}.{}), {} int elements:",
            sys.gpu.name, sys.gpu.compute_capability.0, sys.gpu.compute_capability.1, cfg.size
        );
        let mut timed = Vec::new();
        for strategy in ReductionStrategy::ALL {
            match simulate_reduction(&model, &sys.gpu, strategy, &cfg) {
                Ok(r) => {
                    let us = r.total_cycles / (sys.gpu.clock_ghz * 1e3);
                    println!(
                        "  {:<40} {:>8.1} µs  (stream {:>5.1} + atomics {:>6.1} + overhead {:>5.1})",
                        strategy.label(),
                        us,
                        r.stream_cycles / (sys.gpu.clock_ghz * 1e3),
                        (r.global_atomic_cycles + r.block_atomic_cycles) / (sys.gpu.clock_ghz * 1e3),
                        r.overhead_cycles / (sys.gpu.clock_ghz * 1e3),
                    );
                    timed.push((strategy, r.total_cycles));
                }
                Err(e) => println!("  {:<40} unsupported: {e}", strategy.label()),
            }
        }
        timed.sort_by(|a, b| a.1.total_cmp(&b.1));
        let names: Vec<&str> = timed
            .iter()
            .map(|(s, _)| match s {
                ReductionStrategy::GlobalAtomic => "R1",
                ReductionStrategy::ShflThenGlobalAtomic => "R2",
                ReductionStrategy::BlockAtomicThenGlobal => "R3",
                ReductionStrategy::WarpReduceThenBlock => "R4",
                ReductionStrategy::PersistentThreads => "R5",
            })
            .collect();
        println!("  fastest -> slowest: {}", names.join(" < "));
    }

    // The reduction pattern itself, verified on real threads: a
    // persistent-thread max reduction using block(team)-local then
    // global atomics — the structure of Listing 1's Reduction 5.
    println!("\nreal-thread persistent max reduction (Reduction 5 structure):");
    let data: Vec<i32> = (0..100_000)
        .map(|i| (i * 2_654_435_761u64 % 1_000_003) as i32)
        .collect();
    let expected = *data.iter().max().expect("nonempty");

    let global = AtomicCell::new(i32::MIN);
    let team_n = 8;
    let team_result = AtomicCell::new(i32::MIN);
    Team::new(team_n).parallel(|ctx| {
        // Thread-local pass (persistent-thread style).
        let mut local = i32::MIN;
        let mut i = ctx.tid;
        while i < data.len() {
            local = local.max(data[i]);
            i += ctx.nthreads;
        }
        // Team-scoped atomic, then one thread escalates globally.
        team_result.max(local);
        ctx.barrier();
        if ctx.tid == 0 {
            global.max(team_result.read());
        }
    });
    assert_eq!(global.read(), expected);
    println!("  max of 100000 elements = {} (verified)", global.read());
    Ok(())
}
