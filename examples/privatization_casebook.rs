//! The casebook: the paper's recommendations applied to two classic
//! atomic-bound workloads — a parallel sum on the CPU and a histogram
//! on the GPU — showing how synchronization strategy, not algorithm,
//! decides the runtime.
//!
//! Run with: `cargo run --release --example privatization_casebook`

use syncperf::core::Affinity;
use syncperf::cpu_sim::{simulate_cpu_reduction, CpuModel, CpuReductionStrategy, Placement};
use syncperf::gpu_sim::{simulate_histogram, GpuModel, HistogramConfig, HistogramStrategy};
use syncperf::prelude::*;

fn main() -> Result<()> {
    // ---- Case 1: parallel sum on the CPU (Section V-A5 in action) ----
    let model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, SYSTEM3.cpu.total_cores());
    let elements = 1u64 << 22;
    println!(
        "case 1: sum {elements} doubles, {} threads on {}",
        placement.len(),
        SYSTEM3.cpu.name
    );

    let mut rows = Vec::new();
    for s in CpuReductionStrategy::ALL {
        let r = simulate_cpu_reduction(&model, &placement, s, elements)?;
        rows.push((s, r.total_ns));
        println!("  {:<36} {:>9.2} ms", s.label(), r.total_ns / 1e6);
    }
    let worst = rows.iter().map(|r| r.1).fold(f64::MIN, f64::max);
    let best = rows.iter().map(|r| r.1).fold(f64::MAX, f64::min);
    println!(
        "  => choosing the right primitive is worth {:.0}x here\n",
        worst / best
    );

    // The winning pattern, verified with real threads and real atomics:
    let data: Vec<f64> = (0..100_000).map(|i| f64::from(i % 1000) * 0.5).collect();
    let expected: f64 = data.iter().sum();
    let global = AtomicCell::new(0.0f64);
    Team::new(4).parallel(|ctx| {
        // Thread-private accumulation (registers — nothing shared)...
        let mut local = 0.0;
        ctx.for_static(data.len(), |i| local += data[i]);
        // ...then one atomic merge per thread.
        global.update(local);
    });
    assert!((global.read() - expected).abs() < 1e-6 * expected);
    println!(
        "  real-thread padded-partials sum verified: {}\n",
        global.read()
    );

    // ---- Case 2: GPU histogram under skew (Section V-B5 in action) ---
    let gm = GpuModel::for_spec(&SYSTEM3.gpu);
    println!(
        "case 2: histogram 2^22 elements into 256 bins on {}",
        SYSTEM3.gpu.name
    );
    println!(
        "  {:<12} {:>16} {:>16}",
        "hot-bin %", "global atomics", "privatized"
    );
    for hot in [0.0, 0.1, 0.5, 1.0] {
        let cfg = HistogramConfig {
            elements: 1 << 22,
            bins: 256,
            hot_fraction: hot,
            block_size: 256,
            blocks: SYSTEM3.gpu.sms * 4,
        };
        let g = simulate_histogram(&gm, &SYSTEM3.gpu, HistogramStrategy::GlobalAtomics, &cfg)?;
        let p = simulate_histogram(&gm, &SYSTEM3.gpu, HistogramStrategy::SharedPrivatized, &cfg)?;
        let us = |c: f64| c / (SYSTEM3.gpu.clock_ghz * 1e3);
        println!(
            "  {:<12} {:>13.1} us {:>13.1} us",
            format!("{:.0}%", hot * 100.0),
            us(g.total_cycles),
            us(p.total_cycles)
        );
    }
    println!("\n  => \"running multiple atomic adds on the same memory location slows");
    println!("     performance, so overlap should be avoided\" — §V-B5, recommendation 4");
    Ok(())
}
