//! False-sharing explorer: for each data type, find the smallest stride
//! at which private-element atomics stop paying coherence costs — the
//! paper's Fig. 3 insight ("programmers should avoid false sharing"),
//! turned into a tool.
//!
//! Run with: `cargo run --release --example false_sharing_explorer`

use syncperf::prelude::*;

/// Smallest stride whose throughput is within 10% of the fully padded
/// (stride-16) throughput.
fn padding_stride(
    sim: &mut CpuSimExecutor,
    dtype: DType,
    threads: u32,
) -> Result<(u32, Vec<(u32, f64)>)> {
    let params = ExecParams::new(threads).with_loops(1000, 100);
    let mut curve = Vec::new();
    for stride in [1u32, 2, 4, 8, 16, 32] {
        let m = Protocol::PAPER.measure(
            sim,
            &kernel::omp_atomic_update_array(dtype, stride),
            &params,
        )?;
        curve.push((stride, m.throughput_clamped(1e-10)));
    }
    let padded = curve.last().expect("nonempty").1;
    let found = curve
        .iter()
        .find(|&&(_, tp)| tp >= 0.9 * padded)
        .map_or(16, |&(s, _)| s);
    Ok((found, curve))
}

fn main() -> Result<()> {
    let threads = SYSTEM3.cpu.total_cores();
    println!(
        "false-sharing exploration on the simulated {} ({threads} threads, one per core)\n",
        SYSTEM3.cpu.name
    );
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let line = 64;

    for dtype in DType::ALL {
        let (stride, curve) = padding_stride(&mut sim, dtype, threads)?;
        println!("{dtype} ({} B):", dtype.size_bytes());
        for (s, tp) in &curve {
            let bytes = *s as usize * dtype.size_bytes();
            println!(
                "  stride {s:>2} ({bytes:>3} B apart): {tp:>10.3e} ops/s/thread{}",
                if bytes >= line {
                    "   <- no line sharing possible"
                } else {
                    ""
                }
            );
        }
        let expect = (line / dtype.size_bytes()) as u32;
        println!(
            "  -> first conflict-free stride: {stride} (geometry predicts {expect}: \
             {line} B line / {} B element)\n",
            dtype.size_bytes()
        );
        assert_eq!(stride, expect, "model must agree with cache-line geometry");
    }

    // The same effect is real: two counters on one line vs padded, on
    // actual threads (absolute numbers depend on this machine).
    println!("on real threads (this machine):");
    let mut real = OmpExecutor::new();
    let p = ExecParams::new(2).with_loops(200, 50).with_warmup(2);
    let shared = Protocol::SIM.measure(
        &mut real,
        &kernel::omp_atomic_update_array(DType::U64, 1),
        &p,
    )?;
    let padded = Protocol::SIM.measure(
        &mut real,
        &kernel::omp_atomic_update_array(DType::U64, 8),
        &p,
    )?;
    println!(
        "  u64 atomics, 2 threads: stride 1 = {:.1} ns/op, stride 8 = {:.1} ns/op",
        shared.runtime_seconds() * 1e9,
        padded.runtime_seconds() * 1e9
    );
    Ok(())
}
