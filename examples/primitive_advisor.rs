//! Primitive advisor: measures the simulated system and derives the
//! paper's developer recommendations (Sections V-A5 and V-B5) from the
//! data, with numeric evidence attached to each.
//!
//! Run with: `cargo run --release --example primitive_advisor`

use syncperf::core::recommend::{recommend_cuda, recommend_openmp, CudaFindings, OpenMpFindings};
use syncperf::core::sweep::{thread_sweep, throughput_series};
use syncperf::prelude::*;

fn cpu_sweep(
    sim: &mut CpuSimExecutor,
    label: &str,
    k: &CpuKernel,
    threads: &[u32],
) -> Result<Series> {
    let points = thread_sweep(threads, ExecParams::new(2).with_loops(1000, 100), |_| {
        k.clone()
    });
    throughput_series(sim, &Protocol::PAPER, label, points)
}

fn gpu_sweep(
    sim: &mut GpuSimExecutor,
    label: &str,
    k: &GpuKernel,
    blocks: u32,
    threads: &[u32],
) -> Result<Series> {
    let points = thread_sweep(
        threads,
        ExecParams::new(1).with_blocks(blocks).with_loops(1000, 100),
        |_| k.clone(),
    );
    throughput_series(sim, &Protocol::PAPER, label, points)
}

fn openmp_findings(sys: &SystemSpec) -> Result<OpenMpFindings> {
    let mut sim = CpuSimExecutor::new(sys);
    let threads: Vec<u32> = sys.cpu.omp_thread_counts();
    let cores = sys.cpu.total_cores();

    let barrier = cpu_sweep(&mut sim, "barrier", &kernel::omp_barrier(), &threads)?;
    let atomic = cpu_sweep(
        &mut sim,
        "int",
        &kernel::omp_atomic_update_scalar(DType::I32),
        &threads,
    )?;
    let critical = cpu_sweep(
        &mut sim,
        "int",
        &kernel::omp_critical_add(DType::I32),
        &threads,
    )?;

    let p = ExecParams::new(cores).with_loops(1000, 100);
    let shared1 = Protocol::PAPER.measure(
        &mut sim,
        &kernel::omp_atomic_update_array(DType::I32, 1),
        &p,
    )?;
    let padded = Protocol::PAPER.measure(
        &mut sim,
        &kernel::omp_atomic_update_array(DType::I32, 16),
        &p,
    )?;
    let read = Protocol::PAPER.measure(&mut sim, &kernel::omp_atomic_read(DType::I32), &p)?;
    let flush_padded = Protocol::PAPER.measure(&mut sim, &kernel::omp_flush(DType::I32, 16), &p)?;
    let update = Protocol::PAPER.measure(
        &mut sim,
        &kernel::omp_atomic_update_array(DType::I32, 16),
        &p,
    )?;

    let ht_ratio = atomic
        .y_at(f64::from(sys.cpu.total_threads()))
        .unwrap_or(1.0)
        / atomic.y_at(f64::from(cores)).unwrap_or(1.0);

    Ok(OpenMpFindings {
        barrier,
        atomic_scalar_int: atomic,
        critical_int: critical,
        false_sharing_speedup: shared1.runtime_seconds() / padded.runtime_seconds(),
        atomic_read_negligible: read.is_negligible(),
        hyperthread_ratio: ht_ratio,
        flush_overhead_no_sharing: (flush_padded.runtime_seconds()
            / update.runtime_seconds().max(1e-12))
        .max(0.0),
    })
}

fn cuda_findings(sys: &SystemSpec) -> Result<CudaFindings> {
    let mut sim = GpuSimExecutor::new(sys);
    let threads = sys.gpu.thread_count_sweep();
    let full = sys.gpu.sms;

    let syncthreads = gpu_sweep(&mut sim, "any", &kernel::cuda_syncthreads(), 1, &threads)?;
    let syncwarp = gpu_sweep(
        &mut sim,
        "syncwarp",
        &kernel::cuda_syncwarp(),
        full,
        &threads,
    )?;
    let fencef = gpu_sweep(
        &mut sim,
        "fence",
        &kernel::cuda_threadfence(Scope::Device, DType::I32, 1),
        full,
        &threads,
    )?;

    let p = ExecParams::new(1024).with_blocks(64).with_loops(1000, 100);
    let int_add =
        Protocol::PAPER.measure(&mut sim, &kernel::cuda_atomic_add_scalar(DType::I32), &p)?;
    let f32_add =
        Protocol::PAPER.measure(&mut sim, &kernel::cuda_atomic_add_scalar(DType::F32), &p)?;
    let private_add =
        Protocol::PAPER.measure(&mut sim, &kernel::cuda_atomic_add_array(DType::I32, 32), &p)?;

    let shfl_p = ExecParams::new(1024)
        .with_blocks(full)
        .with_loops(1000, 100);
    let shfl32 = Protocol::PAPER.measure(
        &mut sim,
        &kernel::cuda_shfl(DType::F32, syncperf::core::ShflVariant::Idx),
        &shfl_p,
    )?;
    let shfl64 = Protocol::PAPER.measure(
        &mut sim,
        &kernel::cuda_shfl(DType::F64, syncperf::core::ShflVariant::Idx),
        &shfl_p,
    )?;

    // Recommendation 8: one active lane per warp vs a full warp of CAS.
    let lane = Protocol::PAPER.measure(
        &mut sim,
        &kernel::cuda_atomic_cas_scalar(DType::I32),
        &ExecParams::new(1).with_blocks(1).with_loops(1000, 100),
    )?;
    let warp = Protocol::PAPER.measure(
        &mut sim,
        &kernel::cuda_atomic_cas_scalar(DType::I32),
        &ExecParams::new(32).with_blocks(1).with_loops(1000, 100),
    )?;

    let variation = |s: &Series| s.y_max() / s.y_min();
    Ok(CudaFindings {
        syncwarp_variation: variation(&syncwarp),
        fence_variation: variation(&fencef),
        syncthreads,
        int_over_float_atomic: f32_add.runtime_seconds() / int_add.runtime_seconds(),
        shared_over_private_atomic: private_add.runtime_seconds() / int_add.runtime_seconds(),
        shfl_32_over_64: shfl64.runtime_seconds() / shfl32.runtime_seconds(),
        partial_warp_atomic_gain: warp.runtime_seconds() / lane.runtime_seconds(),
    })
}

fn main() -> Result<()> {
    let sys = &SYSTEM3;
    println!("measuring the simulated {sys} …\n");

    println!("--- OpenMP recommendations (Section V-A5) ---");
    for rec in recommend_openmp(&openmp_findings(sys)?) {
        println!("* {rec}");
    }

    println!("\n--- CUDA recommendations (Section V-B5) ---");
    for rec in recommend_cuda(&cuda_findings(sys)?) {
        println!("* {rec}");
    }
    Ok(())
}
