//! Telemetry-plane consistency: the exposition format is golden-pinned
//! (it is a wire format — `syncperf-top`, the CI smoke test, and any
//! external Prometheus scraper parse it), histogram quantiles track a
//! sorted-vector oracle within log-bucket resolution, merge is exact,
//! and the flight recorder / gauge modes behave as documented in
//! `docs/OBSERVABILITY.md`.

use proptest::prelude::*;
use syncperf_core::obs::{self, metrics, FlightRecorder, GaugeMode, Histogram, Recorder};

/// The exposition text for a known snapshot, byte for byte. If this
/// test fails because the format deliberately changed, update
/// `docs/OBSERVABILITY.md` and `syncperf-top` in the same change.
#[test]
fn exposition_format_is_golden() {
    let rec = Recorder::enabled();
    rec.counter("serve.requests").add(3);
    rec.gauge("peak").record(9);
    rec.gauge_set("depth").set(2);
    let h = rec.histogram("lat.us");
    for v in [0u64, 1, 3, 100] {
        h.observe(v);
    }
    let text = metrics::render(&rec.snapshot());
    let golden = "\
# TYPE serve_requests counter
serve_requests 3
# TYPE depth gauge
depth{mode=\"set\"} 2
# TYPE peak gauge
peak{mode=\"max\"} 9
# TYPE lat_us histogram
lat_us_bucket{le=\"0\"} 1
lat_us_bucket{le=\"1\"} 2
lat_us_bucket{le=\"3\"} 3
lat_us_bucket{le=\"127\"} 4
lat_us_bucket{le=\"+Inf\"} 4
lat_us_sum 104
lat_us_count 4
# TYPE lat_us_min gauge
lat_us_min 0
# TYPE lat_us_max gauge
lat_us_max 100
# TYPE events_dropped_total counter
events_dropped_total 0
";
    assert_eq!(text, golden);
}

/// log2 bucket index of a value — the resolution unit the histogram
/// promises (bucket 0 holds exactly the value 0).
fn bucket_of(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

/// The oracle the histogram quantile approximates: the rank-`ceil(qn)`
/// order statistic of the exact observation list.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

fn observations() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..2_000_000, 1..200)
}

proptest! {
    #[test]
    fn quantiles_track_the_sorted_oracle_within_one_bucket(mut v in observations()) {
        let h = Histogram::standalone();
        for &x in &v {
            h.observe(x);
        }
        v.sort_unstable();
        let snap = h.snapshot();
        for q in [0.50, 0.90, 0.99] {
            let est = snap.quantile(q);
            let exact = oracle_quantile(&v, q);
            let db = (i64::from(bucket_of(est)) - i64::from(bucket_of(exact))).abs();
            prop_assert!(
                db <= 1,
                "q={q}: estimate {est} (bucket {}) vs oracle {exact} (bucket {})",
                bucket_of(est),
                bucket_of(exact)
            );
        }
        prop_assert_eq!(snap.min(), v[0], "min is exact");
        prop_assert_eq!(snap.max(), *v.last().unwrap(), "max is exact");
        prop_assert_eq!(snap.count(), v.len() as u64);
        prop_assert_eq!(snap.sum, v.iter().sum::<u64>());
    }

    #[test]
    fn merge_equals_recording_into_one_histogram(a in observations(), b in observations()) {
        let (ha, hb, hall) = (Histogram::standalone(), Histogram::standalone(), Histogram::standalone());
        for &x in &a {
            ha.observe(x);
            hall.observe(x);
        }
        for &x in &b {
            hb.observe(x);
            hall.observe(x);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let direct = hall.snapshot();
        prop_assert_eq!(&merged.counts, &direct.counts, "bucket-exact merge");
        prop_assert_eq!(merged.sum, direct.sum);
        prop_assert_eq!(merged.min(), direct.min());
        prop_assert_eq!(merged.max(), direct.max());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }

    #[test]
    fn exposition_round_trip_is_lossless_at_bucket_resolution(v in observations()) {
        let rec = Recorder::enabled();
        let h = rec.histogram("rt.us");
        for &x in &v {
            h.observe(x);
        }
        let snap = rec.snapshot();
        let parsed = metrics::parse(&metrics::render(&snap));
        let orig = snap.histogram("rt.us");
        // Parsed snapshots live in the exposition namespace, where the
        // dot was sanitized to an underscore.
        let back = parsed.histogram("rt_us");
        prop_assert_eq!(&back.counts, &orig.counts);
        prop_assert_eq!(back.sum, orig.sum);
        prop_assert_eq!(back.min(), orig.min());
        prop_assert_eq!(back.max(), orig.max());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(back.quantile(q), orig.quantile(q));
        }
    }
}

#[test]
fn gauge_modes_expose_high_water_vs_last_value() {
    let rec = Recorder::enabled();
    let peak = rec.gauge("q.peak");
    let now = rec.gauge_set("q.now");
    for depth in [3u64, 7, 2] {
        peak.record(depth);
        now.set(depth);
    }
    let snap = rec.snapshot();
    assert_eq!(
        snap.gauge("q.peak"),
        7,
        "max mode keeps the high-water mark"
    );
    assert_eq!(snap.gauge("q.now"), 2, "set mode keeps the last value");
    assert_eq!(snap.gauge_modes["q.peak"], GaugeMode::Max);
    assert_eq!(snap.gauge_modes["q.now"], GaugeMode::Set);
}

#[test]
fn snapshot_merge_combines_planes() {
    let (a, b) = (Recorder::enabled(), Recorder::enabled());
    a.counter("jobs").add(2);
    b.counter("jobs").add(3);
    a.gauge("peak").record(5);
    b.gauge("peak").record(9);
    a.gauge_set("depth").set(1);
    b.gauge_set("depth").set(2);
    a.histogram("w.us").observe(10);
    b.histogram("w.us").observe(1000);
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    assert_eq!(merged.counter("jobs"), 5);
    assert_eq!(merged.gauge("peak"), 9, "max gauges take the max");
    assert_eq!(merged.gauge("depth"), 3, "set gauges sum across sources");
    let h = merged.histogram("w.us");
    assert_eq!((h.count(), h.min(), h.max()), (2, 10, 1000));
}

#[test]
fn flight_recorder_ring_keeps_the_newest_entries() {
    let fr = FlightRecorder::with_capacity(4);
    for i in 0..10 {
        fr.record("test", format!("event {i}"));
    }
    let tail = fr.tail(100);
    assert_eq!(tail.len(), 4, "ring is bounded");
    assert_eq!(fr.recorded(), 10, "total recorded is not");
    let msgs: Vec<&str> = tail.iter().map(|e| e.msg.as_str()).collect();
    assert_eq!(msgs, ["event 6", "event 7", "event 8", "event 9"]);
    assert!(
        tail.windows(2).all(|w| w[0].seq < w[1].seq),
        "oldest-first by sequence"
    );
    // JSONL dump: one parseable object per line.
    for line in fr.to_jsonl().lines() {
        obs::json::parse(line).expect("flight entries serialize to valid JSON");
    }
}

#[test]
fn disabled_recorder_histograms_are_free_and_inert() {
    let rec = Recorder::disabled();
    let h = rec.histogram("never.us");
    assert!(!h.is_enabled());
    h.observe(123);
    assert_eq!(h.snapshot().count(), 0);
    assert!(rec.snapshot().histograms.is_empty());
}
