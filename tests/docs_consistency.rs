//! Documentation-code consistency: the promises in DESIGN.md,
//! EXPERIMENTS.md, and README.md must match what the workspace actually
//! contains.

use std::collections::BTreeSet;
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(repo_root().join(rel)).unwrap_or_else(|e| panic!("missing {rel}: {e}"))
}

fn bench_binaries() -> BTreeSet<String> {
    std::fs::read_dir(repo_root().join("crates/bench/src/bin"))
        .expect("bench bins")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect()
}

#[test]
fn every_figure_binary_mentioned_in_design_exists() {
    let design = read("DESIGN.md");
    let bins = bench_binaries();
    // Binaries referenced by name in DESIGN.md's experiment index.
    for needle in [
        "table1_systems",
        "listing1_reductions",
        "fig01_omp_barrier",
        "fig02_omp_atomic_update_scalar",
        "fig03_omp_atomic_update_array",
        "fig04_omp_atomic_write",
        "fig05_omp_critical",
        "fig06_omp_flush",
        "exp_omp_atomic_read_capture",
        "fig07_cuda_syncthreads",
        "fig08_cuda_syncwarp",
        "fig09_cuda_atomicadd_scalar",
        "fig10_cuda_atomicadd_array",
        "fig11_cuda_atomiccas_scalar",
        "fig12_cuda_atomiccas_array",
        "fig13_cuda_atomicexch",
        "fig14_cuda_threadfence",
        "fig15_cuda_shfl",
        "exp_cuda_fence_scopes",
        "exp_cuda_vote",
        "exp_omp_affinity",
        "exp_cuda_atomic_ops",
        "exp_cuda_divergence",
        "exp_cpu_reduction_strategies",
        "exp_gpu_histogram",
    ] {
        assert!(
            design.contains(needle),
            "DESIGN.md does not mention {needle}"
        );
        assert!(
            bins.contains(needle),
            "DESIGN.md promises binary {needle} but it does not exist"
        );
    }
}

#[test]
fn every_paper_figure_covered_in_experiments_md() {
    let experiments = read("EXPERIMENTS.md");
    for fig in 1..=15 {
        assert!(
            experiments.contains(&format!("Fig. {fig}")),
            "EXPERIMENTS.md is missing Fig. {fig}"
        );
    }
    assert!(experiments.contains("Table I"));
    assert!(experiments.contains("Listing 1"));
}

#[test]
fn readme_examples_exist() {
    let readme = read("README.md");
    for example in [
        "quickstart",
        "false_sharing_explorer",
        "reduction_strategies",
        "primitive_advisor",
        "privatization_casebook",
        "model_your_machine",
    ] {
        assert!(
            readme.contains(example),
            "README does not list example {example}"
        );
        assert!(
            repo_root().join(format!("examples/{example}.rs")).exists(),
            "README lists example {example} but examples/{example}.rs is missing"
        );
    }
}

#[test]
fn readme_binaries_exist() {
    let readme = read("README.md");
    let bins = bench_binaries();
    for line in readme.lines().filter(|l| l.contains("--bin ")) {
        let after = line.split("--bin ").nth(1).expect("bin name after flag");
        let name: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        assert!(
            bins.contains(&name),
            "README references missing binary `{name}`"
        );
    }
}

#[test]
fn design_md_lists_all_workspace_crates() {
    let design = read("DESIGN.md");
    for krate in [
        "syncperf-core",
        "syncperf-omp",
        "syncperf-cpu-sim",
        "syncperf-gpu-sim",
        "syncperf-analyze",
        "syncperf-sched",
        "syncperf-serve",
        "syncperf-dist",
        "syncperf-load",
        "syncperf-bench",
    ] {
        assert!(design.contains(krate), "DESIGN.md missing crate {krate}");
    }
}

#[test]
fn distributed_docs_match_the_wire_and_code() {
    // docs/DISTRIBUTED.md, DESIGN.md §12, the README subsection, and
    // the observability docs document the same coordinator/worker
    // surface the dist crate implements.
    let dist_doc = read("docs/DISTRIBUTED.md");
    let sched_doc = read("docs/SCHEDULER.md");
    let obs_doc = read("docs/OBSERVABILITY.md");
    let design = read("DESIGN.md");
    let readme = read("README.md");
    let runner = read("crates/bench/src/runner.rs");
    let coordinator = read("crates/dist/src/coordinator.rs");
    let frame = read("crates/dist/src/frame.rs");

    // CLI flags: documented where the scheduler flags are, parsed by
    // the shared runner.
    for flag in [
        "--workers",
        "--connect",
        "--chaos-kill-one",
        "--metrics-addr",
    ] {
        for (doc, name) in [
            (&dist_doc, "docs/DISTRIBUTED.md"),
            (&sched_doc, "docs/SCHEDULER.md"),
            (&runner, "runner.rs"),
        ] {
            assert!(doc.contains(flag), "{name} missing flag {flag}");
        }
    }

    // Every wire frame kind is named in the protocol table.
    for frame_kind in [
        "Hello",
        "HelloAck",
        "Batch",
        "Result",
        "JobError",
        "ShardDone",
        "Revoke",
        "Revoked",
        "Heartbeat",
        "Shutdown",
    ] {
        assert!(
            dist_doc.contains(frame_kind),
            "docs/DISTRIBUTED.md missing frame {frame_kind}"
        );
        assert!(frame.contains(frame_kind), "frame.rs missing {frame_kind}");
    }

    // The documented dist.* metric names are the ones the coordinator
    // registers/exports, and the metric-name table knows them too.
    for metric in [
        "dist.workers",
        "dist.workers_live",
        "dist.batches_streamed",
        "dist.batches_inflight",
        "dist.jobs_sent",
        "dist.results_received",
        "dist.local_jobs",
        "dist.coordinator_jobs",
        "dist.shard_reissues",
        "dist.migrations",
        "dist.worker_deaths",
        "dist.corrupt_entries",
        "dist.duplicate_results",
        "dist.worker_errors",
        "dist.retries",
        "dist.bytes_sent",
        "dist.bytes_received",
        "dist.wait_us",
        "dist.service_us",
    ] {
        for (doc, name) in [
            (&dist_doc, "docs/DISTRIBUTED.md"),
            (&obs_doc, "docs/OBSERVABILITY.md"),
            (&coordinator, "coordinator.rs"),
        ] {
            assert!(doc.contains(metric), "{name} missing metric {metric}");
        }
    }

    // Flat-field schema sync: every key `--cache-stats` actually
    // writes (base and dist) is listed verbatim in docs/SCHEDULER.md.
    let json = syncperf_bench::runner::cache_stats_json(
        &syncperf_sched::SchedStats::default(),
        Some(&syncperf_dist::DistStats::default()),
    );
    for piece in json.split('"').skip(1).step_by(2) {
        assert!(
            sched_doc.contains(&format!("`{piece}`")),
            "docs/SCHEDULER.md missing --cache-stats field `{piece}`"
        );
    }

    // Cross-references, the front-end binary, and the tracked bench.
    assert!(readme.contains("docs/DISTRIBUTED.md"));
    assert!(design.contains("docs/DISTRIBUTED.md"));
    assert!(bench_binaries().contains("syncperf_dist"));
    for (doc, name) in [
        (&dist_doc, "docs/DISTRIBUTED.md"),
        (&design, "DESIGN.md"),
        (&readme, "README.md"),
    ] {
        assert!(
            doc.contains("BENCH_dist.json"),
            "{name} missing the tracked benchmark"
        );
    }
    assert!(
        repo_root()
            .join("crates/dist/tests/dist_consistency.rs")
            .exists(),
        "the merge edge-case suite the docs promise is missing"
    );
}

#[test]
fn scheduler_docs_match_the_cli_and_code() {
    // docs/SCHEDULER.md, DESIGN.md §8, and the README subsection
    // document the same scheduler surface the runner implements.
    let sched_doc = read("docs/SCHEDULER.md");
    let design = read("DESIGN.md");
    let readme = read("README.md");
    let runner = read("crates/bench/src/runner.rs");

    for flag in ["--jobs", "--no-cache", "--resume", "--cache-stats"] {
        for (doc, name) in [
            (&sched_doc, "docs/SCHEDULER.md"),
            (&design, "DESIGN.md"),
            (&runner, "runner.rs"),
        ] {
            assert!(doc.contains(flag), "{name} missing flag {flag}");
        }
    }
    for (doc, name) in [
        (&sched_doc, "docs/SCHEDULER.md"),
        (&design, "DESIGN.md"),
        (&readme, "README.md"),
    ] {
        assert!(doc.contains("SYNCPERF_JOBS"), "{name} missing env fallback");
    }

    assert!(design.contains("docs/SCHEDULER.md"));
    assert!(readme.contains("docs/SCHEDULER.md"));
    assert!(readme.contains("Parallel & incremental runs"));

    // The documented salt and counter names are the code's.
    assert!(sched_doc.contains(syncperf_sched::SCHED_SALT));
    for counter in ["sched.jobs", "sched.cache_hits", "sched.steals"] {
        assert!(
            sched_doc.contains(counter),
            "docs/SCHEDULER.md missing counter {counter}"
        );
    }
}

#[test]
fn serving_docs_match_the_endpoints_and_code() {
    // docs/SERVING.md, DESIGN.md §9, and the README subsection
    // document the same service surface the serve crate implements.
    let serving_doc = read("docs/SERVING.md");
    let design = read("DESIGN.md");
    let readme = read("README.md");
    let server_src = read("crates/serve/src/server.rs");

    for endpoint in [
        "/job/",
        "/query",
        "/figure/",
        "/manifest/",
        "/compute",
        "/metrics",
        "/events",
        "/stats",
        "/shutdown",
    ] {
        for (doc, name) in [
            (&serving_doc, "docs/SERVING.md"),
            (&server_src, "server.rs"),
        ] {
            assert!(doc.contains(endpoint), "{name} missing endpoint {endpoint}");
        }
        if endpoint != "/manifest/" {
            assert!(design.contains(endpoint), "DESIGN.md missing {endpoint}");
        }
    }
    for flag in [
        "--addr",
        "--workers",
        "--cache-bytes",
        "--timeout-secs",
        "--max-conns",
        "--replicas",
    ] {
        assert!(
            serving_doc.contains(flag),
            "docs/SERVING.md missing flag {flag}"
        );
    }
    for (doc, name) in [
        (&serving_doc, "docs/SERVING.md"),
        (&design, "DESIGN.md"),
        (&readme, "README.md"),
    ] {
        assert!(
            doc.contains("SYNCPERF_CACHE_BYTES"),
            "{name} missing cache-budget env var"
        );
    }
    assert!(readme.contains("docs/SERVING.md"));
    assert!(design.contains("docs/SERVING.md"));

    // The documented metric names are the code's (the per-endpoint
    // families are format!-built in server.rs, so match on their
    // shared prefix).
    for counter in [
        "serve.requests",
        "serve.cache_hits",
        "serve.cache_misses",
        "serve.computes",
        "serve.dedup_waits",
        "serve.evictions",
        "serve.errors",
        "serve.rejected",
        "serve.timeouts",
        "serve.connections",
        "serve.latency_us",
        "serve.endpoint.",
    ] {
        assert!(
            serving_doc.contains(counter),
            "docs/SERVING.md missing counter {counter}"
        );
        assert!(
            server_src.contains(counter),
            "server.rs missing counter {counter}"
        );
    }

    // The serve binary and client example the docs promise exist.
    assert!(bench_binaries().contains("serve"));
    assert!(repo_root().join("examples/syncperf_client.rs").exists());
    assert!(repo_root().join("tests/serve_consistency.rs").exists());
}

#[test]
fn serving_event_loop_and_load_docs_match_the_code() {
    // docs/SERVING.md's event-loop/backpressure/replica/load-harness
    // sections describe real, tested behaviour: the reactor exists,
    // the status codes and headers it names appear in the HTTP layer,
    // the load harness and its tracked baseline exist, and ci.sh runs
    // the lane the docs promise.
    let serving_doc = read("docs/SERVING.md");
    let server_src = read("crates/serve/src/server.rs");
    let http_src = read("crates/serve/src/http.rs");
    let ci = read("ci.sh");

    // The event-loop architecture section names its moving parts.
    assert!(
        repo_root().join("crates/serve/src/reactor.rs").is_file(),
        "the epoll reactor the docs describe is missing"
    );
    for needle in ["epoll", "reactor.rs", "TCP_NODELAY", "try_parse"] {
        assert!(
            serving_doc.contains(needle),
            "docs/SERVING.md missing event-loop anchor {needle}"
        );
    }

    // Backpressure/deadline semantics: every status and header the
    // docs promise is one the code can actually produce.
    for (needle, src, which) in [
        ("Retry-After", &server_src, "server.rs"),
        ("503", &server_src, "server.rs"),
        ("431", &http_src, "http.rs"),
        ("408", &http_src, "http.rs"),
    ] {
        assert!(serving_doc.contains(needle), "docs missing {needle}");
        assert!(src.contains(needle), "{which} missing {needle}");
    }
    assert!(serving_doc.contains("slowloris"));

    // Replica mode and the shared-cache story: writers produce
    // deterministic bytes per hash, so racing readers see at worst a
    // torn file the corruption-tolerant loader treats as a miss.
    for needle in [
        "--replicas",
        "byte-identical",
        "deterministic function of its",
        "torn",
    ] {
        assert!(
            serving_doc.contains(needle),
            "docs/SERVING.md missing replica anchor {needle}"
        );
    }

    // The load harness: crate, binary, tracked baseline, CI lane.
    assert!(repo_root().join("crates/load/src/lib.rs").is_file());
    assert!(bench_binaries().contains("syncperf_load"));
    for (doc, name) in [(&serving_doc, "docs/SERVING.md"), (&ci, "ci.sh")] {
        assert!(
            doc.contains("syncperf_load"),
            "{name} missing the load harness"
        );
        assert!(
            doc.contains("BENCH_serve.json"),
            "{name} missing the tracked serve baseline"
        );
    }
    assert!(
        ci.contains("--replicas 2"),
        "ci.sh load lane must drive a replica pair"
    );
    let report = read("BENCH_serve.json");
    let parsed = syncperf::core::obs::json::parse(&report).expect("BENCH_serve.json parses");
    for field in [
        "connections",
        "throughput_rps",
        "error_rate",
        "p50_us",
        "p99_us",
        "check_p99_factor",
        "check_max_error_rate",
    ] {
        assert!(
            parsed.get(field).and_then(|v| v.as_f64()).is_some(),
            "BENCH_serve.json missing numeric field {field}"
        );
    }

    // The TLS recipe covers both documented proxies.
    assert!(serving_doc.contains("nginx"));
    assert!(serving_doc.contains("Caddy"));
}

#[test]
fn observability_docs_match_the_telemetry_plane() {
    // docs/OBSERVABILITY.md documents the metric names, the exposition
    // schema, and the flight recorder the obs/sched/serve code
    // implements; keep the three in lockstep.
    let obs_doc = read("docs/OBSERVABILITY.md");
    let readme = read("README.md");
    let design = read("DESIGN.md");
    let server_src = read("crates/serve/src/server.rs");
    let sched_src = read("crates/sched/src/scheduler.rs");

    // Metric-name table: every family the code registers is listed.
    for (name, src, which) in [
        ("serve.latency_us", &server_src, "server.rs"),
        ("serve.endpoint.", &server_src, "server.rs"),
        ("serve.index_entries", &server_src, "server.rs"),
        ("serve.inflight", &server_src, "server.rs"),
        ("serve.flight_events", &server_src, "server.rs"),
        ("sched.wait_us", &sched_src, "scheduler.rs"),
        ("sched.service_us.hit", &sched_src, "scheduler.rs"),
        ("sched.service_us.miss", &sched_src, "scheduler.rs"),
        ("sched.queue_depth", &sched_src, "scheduler.rs"),
        ("sched.queue_depth_peak", &sched_src, "scheduler.rs"),
        ("sched.worker.", &sched_src, "scheduler.rs"),
    ] {
        assert!(
            obs_doc.contains(name),
            "docs/OBSERVABILITY.md missing metric {name}"
        );
        assert!(src.contains(name), "{which} missing metric {name}");
    }

    // Exposition and flight-recorder schema anchors.
    for needle in [
        "# TYPE",
        "_bucket{le=",
        "events_dropped_total",
        "GET /metrics",
        "GET /events",
        "flightrec-",
        "--metrics",
        "syncperf_top",
    ] {
        assert!(
            obs_doc.contains(needle),
            "docs/OBSERVABILITY.md missing {needle}"
        );
    }

    // The live-view binary and the quantile/golden tests exist.
    assert!(bench_binaries().contains("syncperf_top"));
    assert!(repo_root().join("tests/telemetry_consistency.rs").exists());
    assert!(readme.contains("syncperf_top"));
    assert!(readme.contains("docs/OBSERVABILITY.md"));
    assert!(design.contains("docs/OBSERVABILITY.md"));
}

#[test]
fn performance_docs_match_the_code() {
    // docs/PERFORMANCE.md, DESIGN.md §10, and the tracked benchmark
    // report document the fast path the engines actually implement.
    let perf_doc = read("docs/PERFORMANCE.md");
    let design = read("DESIGN.md");
    let ci = read("ci.sh");

    // The documented constants are the code's.
    assert!(perf_doc.contains("SCALE_BITS = 20"));
    assert_eq!(syncperf::cpu_sim::plan::SCALE_BITS, 20);
    assert_eq!(syncperf::gpu_sim::engine::SCALE_BITS, 20);
    assert!(perf_doc.contains("OBSERVED_REPS"));
    assert!(perf_doc.contains("(= 4)"));
    assert_eq!(syncperf::cpu_sim::OBSERVED_REPS, 4);
    assert!(perf_doc.contains(syncperf_sched::SCHED_SALT));

    // The oracle, the property test, and the bench suites it names
    // all exist.
    assert!(perf_doc.contains("run_full_stepping"));
    assert!(repo_root().join("tests/property_based.rs").exists());

    // §6: the trace-compilation and batching layer the doc promises
    // is the one the code ships, under the names it uses.
    for name in [
        "OpTrace",
        "PlanTable",
        "trace_vs_interp",
        "same_shape",
        "plan.compile_us",
        "plan.trace_ops",
        "plan.batch_size",
        "plan_batches",
        "plan_primed_jobs",
    ] {
        assert!(
            perf_doc.contains(name),
            "docs/PERFORMANCE.md missing {name}"
        );
    }
    assert!(design.contains("OpTrace"));
    assert!(design.contains("same_shape"));
    assert!(repo_root().join("crates/cpu-sim/src/trace.rs").exists());
    assert!(repo_root().join("crates/gpu-sim/src/batch.rs").exists());

    for bench in ["sim_engines", "infrastructure"] {
        assert!(perf_doc.contains(bench));
        assert!(
            repo_root()
                .join(format!("crates/bench/benches/{bench}.rs"))
                .exists(),
            "docs/PERFORMANCE.md promises bench suite {bench}"
        );
    }

    // The tracked harness: binary, committed report, and the CI gates
    // that keep them honest.
    assert!(bench_binaries().contains("bench_report"));
    assert!(perf_doc.contains("BENCH_syncperf.json"));
    assert!(perf_doc.contains("SYNCPERF_BENCH_QUICK"));
    assert!(ci.contains("bench_report --check"));
    assert!(ci.contains("SYNCPERF_BENCH_QUICK=1"));
    let report = read("BENCH_syncperf.json");
    let parsed = syncperf::core::obs::json::parse(&report).expect("BENCH_syncperf.json parses");
    for field in [
        "before_ms",
        "after_ms",
        "speedup",
        "check_regression_factor",
    ] {
        assert!(
            parsed.get(field).and_then(|v| v.as_f64()).is_some(),
            "BENCH_syncperf.json missing numeric field {field}"
        );
    }

    // DESIGN.md §10 summarizes the same contract.
    assert!(design.contains("## 10."));
    assert!(design.contains("docs/PERFORMANCE.md"));
}

#[test]
fn ablations_promised_in_design_exist() {
    let design = read("DESIGN.md");
    let bins = bench_binaries();
    for ablation in [
        "ablation_contention_model",
        "ablation_warp_aggregation",
        "ablation_fp_atomics",
        "ablation_barrier_model",
    ] {
        assert!(
            design.contains(ablation),
            "DESIGN.md missing ablation {ablation}"
        );
        assert!(
            bins.contains(ablation),
            "promised ablation binary {ablation} missing"
        );
    }
}

#[test]
fn model_md_constants_match_code() {
    // MODEL.md quotes specific constants; keep prose and code in sync.
    let model = read("MODEL.md");
    let cpu = syncperf::cpu_sim::CpuModel::baseline();
    assert!(model.contains("SAT = 7"));
    assert_eq!(cpu.contention_sat, 7);
    assert!(model.contains("40 ns"));
    assert_eq!(cpu.line_transfer_ns, 40.0);
    assert!(model.contains("h = 0.6"));
    assert_eq!(cpu.store_buffer_hiding, 0.6);

    let gpu = syncperf::gpu_sim::GpuModel::for_spec(&syncperf::core::SYSTEM3.gpu);
    assert!(model.contains("int 36"));
    assert_eq!(gpu.atomic_device.i32_cy, 36.0);
    assert!(model.contains("FREE = 4"));
    assert_eq!(gpu.same_addr_free_requests, 4);
    assert!(model.contains("device 250"));
    assert_eq!(gpu.fence_device_cy, 250.0);
}

#[test]
fn model_checker_docs_match_the_cli_and_code() {
    // docs/ANALYSIS.md documents the explorer's codes, the engine
    // selector, the explain flag, and the SARIF output; ci.sh actually
    // runs the gate it promises; DESIGN.md describes the explorer.
    let analysis = read("docs/ANALYSIS.md");
    for needle in [
        "`SL007`",
        "`SL008`",
        "`SL009`",
        "`SL010`",
        "--engine",
        "--explain",
        "sarif",
        "partial-order reduction",
        "tests/golden/sync_lint.sarif",
    ] {
        assert!(
            analysis.contains(needle),
            "docs/ANALYSIS.md missing {needle}"
        );
    }

    let ci = read("ci.sh");
    assert!(
        ci.contains("--engine both"),
        "ci.sh must gate on both engines"
    );
    assert!(ci.contains("sarif"), "ci.sh must emit the SARIF report");

    let design = read("DESIGN.md");
    for needle in ["interp", "explore", "partial-order reduction", "sarif"] {
        assert!(design.contains(needle), "DESIGN.md missing {needle}");
    }

    // The golden SARIF file the docs point at is committed.
    assert!(repo_root().join("tests/golden/sync_lint.sarif").is_file());
}
