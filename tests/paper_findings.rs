//! The paper's headline findings, asserted end-to-end through the
//! public API — one test per claim in EXPERIMENTS.md.

use syncperf::core::all_systems;
use syncperf::gpu_sim::{simulate_reduction, GpuModel};
use syncperf::prelude::*;

fn cpu_throughput(sim: &mut CpuSimExecutor, k: &CpuKernel, threads: u32) -> f64 {
    let p = ExecParams::new(threads).with_loops(1000, 100);
    Protocol::PAPER
        .measure(sim, k, &p)
        .unwrap()
        .throughput_clamped(1e-10)
}

fn gpu_throughput(sim: &mut GpuSimExecutor, k: &GpuKernel, blocks: u32, threads: u32) -> f64 {
    let p = ExecParams::new(threads)
        .with_blocks(blocks)
        .with_loops(1000, 100);
    Protocol::PAPER
        .measure(sim, k, &p)
        .unwrap()
        .throughput_clamped(1e-10)
}

// ---- OpenMP findings -------------------------------------------------

#[test]
fn finding_barrier_plateau_beyond_eight_threads() {
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let k = kernel::omp_barrier();
    let t2 = cpu_throughput(&mut sim, &k, 2);
    let t8 = cpu_throughput(&mut sim, &k, 8);
    let t32 = cpu_throughput(&mut sim, &k, 32);
    assert!(t2 > 2.0 * t8, "initial per-thread decrease");
    assert!(t8 < 2.0 * t32, "largely stable beyond ~8 threads");
}

#[test]
fn finding_integer_atomics_beat_floating_point() {
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    for threads in [2, 8, 32] {
        let int = cpu_throughput(
            &mut sim,
            &kernel::omp_atomic_update_scalar(DType::I32),
            threads,
        );
        let dbl = cpu_throughput(
            &mut sim,
            &kernel::omp_atomic_update_scalar(DType::F64),
            threads,
        );
        assert!(int > dbl, "at {threads} threads");
    }
}

#[test]
fn finding_word_size_irrelevant_on_64bit_cpus() {
    let mut sim = CpuSimExecutor::new(&SYSTEM2);
    let i = cpu_throughput(&mut sim, &kernel::omp_atomic_update_scalar(DType::I32), 16);
    let u = cpu_throughput(&mut sim, &kernel::omp_atomic_update_scalar(DType::U64), 16);
    assert!(
        (i / u - 1.0).abs() < 0.1,
        "int vs ull within noise: {i} vs {u}"
    );
}

#[test]
fn finding_false_sharing_knee_at_cache_line_geometry() {
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let threads = SYSTEM3.cpu.total_cores();
    // doubles: conflict-free from stride 8 (64 B / 8 B).
    let d4 = cpu_throughput(
        &mut sim,
        &kernel::omp_atomic_update_array(DType::F64, 4),
        threads,
    );
    let d8 = cpu_throughput(
        &mut sim,
        &kernel::omp_atomic_update_array(DType::F64, 8),
        threads,
    );
    assert!(d8 > 3.0 * d4, "doubles jump at stride 8 (Fig. 3c)");
    // ints: conflict-free from stride 16 (64 B / 4 B).
    let i8 = cpu_throughput(
        &mut sim,
        &kernel::omp_atomic_update_array(DType::I32, 8),
        threads,
    );
    let i16 = cpu_throughput(
        &mut sim,
        &kernel::omp_atomic_update_array(DType::I32, 16),
        threads,
    );
    assert!(i16 > 3.0 * i8, "ints jump at stride 16 (Fig. 3d)");
}

#[test]
fn finding_critical_sections_slowest() {
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    for threads in [4, 16, 32] {
        let atomic = cpu_throughput(
            &mut sim,
            &kernel::omp_atomic_update_scalar(DType::I32),
            threads,
        );
        let critical = cpu_throughput(&mut sim, &kernel::omp_critical_add(DType::I32), threads);
        assert!(
            critical < atomic,
            "critical must lose at {threads} threads (Fig. 5)"
        );
    }
}

#[test]
fn finding_flush_free_without_false_sharing() {
    let mut sim = CpuSimExecutor::new(&SYSTEM2);
    let p = ExecParams::new(32)
        .with_affinity(Affinity::Close)
        .with_loops(1000, 100);
    let padded = Protocol::PAPER
        .measure(&mut sim, &kernel::omp_flush(DType::F64, 16), &p)
        .unwrap();
    let shared = Protocol::PAPER
        .measure(&mut sim, &kernel::omp_flush(DType::F64, 1), &p)
        .unwrap();
    assert!(
        shared.runtime_seconds() > 3.0 * padded.runtime_seconds(),
        "flush is expensive only under false sharing (Fig. 6)"
    );
}

#[test]
fn finding_hyperthreading_harmless() {
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let k = kernel::omp_atomic_update_array(DType::I32, 16);
    let at_cores = cpu_throughput(&mut sim, &k, SYSTEM3.cpu.total_cores());
    let at_max = cpu_throughput(&mut sim, &k, SYSTEM3.cpu.total_threads());
    let ratio = at_max / at_cores;
    assert!(
        ratio > 0.75,
        "per-thread throughput holds up under SMT: {ratio}"
    );
}

// ---- CUDA findings ---------------------------------------------------

#[test]
fn finding_syncthreads_flat_in_warp_then_decreasing() {
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let k = kernel::cuda_syncthreads();
    let t8 = gpu_throughput(&mut gpu, &k, 1, 8);
    let t32 = gpu_throughput(&mut gpu, &k, 1, 32);
    let t1024 = gpu_throughput(&mut gpu, &k, 1, 1024);
    assert_eq!(t8, t32, "whole warp runs below 32 threads");
    assert!(
        t1024 < 0.5 * t32,
        "throughput drops with warp count (Fig. 7)"
    );
}

#[test]
fn finding_syncwarp_depends_on_sm_load_not_block() {
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let k = kernel::cuda_syncwarp();
    // Same threads/SM through different (blocks × threads) splits.
    let a = gpu_throughput(&mut gpu, &k, 128, 256);
    let b = gpu_throughput(&mut gpu, &k, 256, 128);
    assert_eq!(a, b, "__syncwarp depends on warps per SM (Fig. 8)");
}

#[test]
fn finding_warp_aggregation_constant_region() {
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let k = kernel::cuda_atomic_add_scalar(DType::I32);
    let t32 = gpu_throughput(&mut gpu, &k, 2, 32);
    let t64 = gpu_throughput(&mut gpu, &k, 2, 64);
    let t128 = gpu_throughput(&mut gpu, &k, 2, 128);
    assert_eq!(t32, t64, "2-block config constant to 64 threads (Fig. 9)");
    assert!(t128 < t64);
}

#[test]
fn finding_cas_has_no_aggregation() {
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let k = kernel::cuda_atomic_cas_scalar(DType::I32);
    let t4 = gpu_throughput(&mut gpu, &k, 1, 4);
    let t8 = gpu_throughput(&mut gpu, &k, 1, 8);
    let t32 = gpu_throughput(&mut gpu, &k, 1, 32);
    assert!(t8 < t4, "CAS constant region ends at 4 threads (Fig. 11)");
    assert!(t32 < t8);
}

#[test]
fn finding_fence_constant_and_scope_ordered() {
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let dev = kernel::cuda_threadfence(Scope::Device, DType::I32, 1);
    let a = gpu_throughput(&mut gpu, &dev, 1, 32);
    let b = gpu_throughput(&mut gpu, &dev, 128, 1024);
    assert!(
        (a / b - 1.0).abs() < 0.05,
        "fence cost constant (Fig. 14): {a} vs {b}"
    );
}

#[test]
fn finding_shfl_32bit_double_64bit() {
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let f32k = kernel::cuda_shfl(DType::F32, ShflVariant::Xor);
    let f64k = kernel::cuda_shfl(DType::F64, ShflVariant::Xor);
    let a = gpu_throughput(&mut gpu, &f32k, 2, 32);
    let b = gpu_throughput(&mut gpu, &f64k, 2, 32);
    assert!(
        (a / b - 2.0).abs() < 0.1,
        "two 32-bit instructions per 64-bit shuffle (Fig. 15)"
    );
}

#[test]
fn finding_reduction_ordering_on_every_capable_gpu() {
    for sys in all_systems() {
        let model = GpuModel::for_spec(&sys.gpu);
        let cfg = ReductionConfig::megabyte_input(&sys.gpu);
        let t = |s| simulate_reduction(&model, &sys.gpu, s, &cfg).map(|r| r.total_cycles);
        let r1 = t(ReductionStrategy::GlobalAtomic).unwrap();
        let r2 = t(ReductionStrategy::ShflThenGlobalAtomic).unwrap();
        let r3 = t(ReductionStrategy::BlockAtomicThenGlobal).unwrap();
        let r5 = t(ReductionStrategy::PersistentThreads).unwrap();
        assert!(r3 < r1 && r1 < r2, "{}: R3 < R1 < R2", sys);
        assert!(r5 < r3, "{}: persistent threads fastest", sys);
        if sys.gpu.cc_number() >= 80 {
            let r4 = t(ReductionStrategy::WarpReduceThenBlock).unwrap();
            assert!(r3 < r4 && r4 < r1, "{}: R3 < R4 < R1", sys);
        }
    }
}

#[test]
fn finding_recommendation_engines_produce_paper_counts() {
    use syncperf::core::recommend::{
        recommend_cuda, recommend_openmp, CudaFindings, OpenMpFindings,
    };
    // Findings as the regenerated figures report them.
    let omp = OpenMpFindings {
        barrier: Series::new("b", vec![(2.0, 3.4e6), (16.0, 8.0e5), (32.0, 7.8e5)]),
        atomic_scalar_int: Series::new("i", vec![(2.0, 1.6e7), (32.0, 5.0e6)]),
        critical_int: Series::new("c", vec![(2.0, 6.0e6), (32.0, 1.5e6)]),
        false_sharing_speedup: 30.0,
        atomic_read_negligible: true,
        hyperthread_ratio: 1.0,
        flush_overhead_no_sharing: 1.6,
    };
    assert_eq!(
        recommend_openmp(&omp).len(),
        7,
        "Section V-A5 lists 7 recommendations"
    );
    let cuda = CudaFindings {
        syncthreads: Series::new("s", vec![(32.0, 1e8), (1024.0, 1e7)]),
        syncwarp_variation: 1.5,
        int_over_float_atomic: 1.5,
        shared_over_private_atomic: 0.2,
        fence_variation: 1.0,
        shfl_32_over_64: 2.9,
        partial_warp_atomic_gain: 19.5,
    };
    assert_eq!(
        recommend_cuda(&cuda).len(),
        8,
        "Section V-B5 lists 8 recommendations"
    );
}

#[test]
fn extension_close_affinity_wins_on_one_socket() {
    // Two-socket System 1: "close" keeps small teams on socket 0,
    // "spread" alternates sockets and pays cross-socket transfers.
    let figs = syncperf_bench::figures_cpu::exp_affinity().unwrap();
    let fig = &figs[0];
    let close = fig.series_by_label("close").unwrap();
    let spread = fig.series_by_label("spread").unwrap();
    for t in [2.0, 4.0, 8.0] {
        assert!(
            close.y_at(t).unwrap() > spread.y_at(t).unwrap(),
            "close must beat spread at {t} threads on a 2-socket system"
        );
    }
}
