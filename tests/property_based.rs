//! Property-based tests (proptest) over the core data structures and
//! simulator invariants.

use proptest::prelude::*;
use syncperf::core::stats;
use syncperf::cpu_sim::{CpuModel, Placement};
use syncperf::gpu_sim::Occupancy;
use syncperf::prelude::*;

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9..1e9f64, 1..64)
}

proptest! {
    // ---- stats ------------------------------------------------------

    #[test]
    fn median_bounded_by_min_max(v in finite_vec()) {
        let m = stats::median(&v);
        prop_assert!(m >= stats::min(&v) && m <= stats::max(&v));
    }

    #[test]
    fn median_permutation_invariant(mut v in finite_vec(), seed in 0u64..1000) {
        let before = stats::median(&v);
        // Deterministic shuffle.
        let n = v.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            v.swap(i, j);
        }
        prop_assert_eq!(before, stats::median(&v));
    }

    #[test]
    fn mean_shift_equivariant(v in finite_vec(), c in -1e6..1e6f64) {
        let shifted: Vec<f64> = v.iter().map(|x| x + c).collect();
        prop_assert!((stats::mean(&shifted) - stats::mean(&v) - c).abs() < 1e-6 * (1.0 + c.abs()));
    }

    #[test]
    fn stddev_nonnegative_and_translation_invariant(v in finite_vec(), c in -1e6..1e6f64) {
        let s = stats::stddev(&v);
        prop_assert!(s >= 0.0);
        let shifted: Vec<f64> = v.iter().map(|x| x + c).collect();
        prop_assert!((stats::stddev(&shifted) - s).abs() < 1e-3);
    }

    #[test]
    fn percentile_monotonic_in_p(v in finite_vec(), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::percentile(&v, lo) <= stats::percentile(&v, hi) + 1e-9);
    }

    // ---- params -----------------------------------------------------

    #[test]
    fn valid_params_validate(threads in 1u32..=1024, blocks in 1u32..=65_535,
                             n_iter in 1u32..10_000, n_unroll in 1u32..1_000) {
        let p = ExecParams::new(threads).with_blocks(blocks).with_loops(n_iter, n_unroll);
        prop_assert!(p.validate().is_ok());
        prop_assert_eq!(p.timed_reps(), u64::from(n_iter) * u64::from(n_unroll));
        prop_assert_eq!(p.total_threads(), threads * blocks);
    }

    // ---- CPU placement ----------------------------------------------

    #[test]
    fn placement_within_topology(n in 1u32..128, aff_idx in 0usize..3) {
        let aff = [Affinity::Spread, Affinity::Close, Affinity::SystemChoice][aff_idx];
        let p = Placement::new(&SYSTEM3.cpu, aff, n);
        prop_assert_eq!(p.len(), n as usize);
        for t in 0..n as usize {
            let s = p.slot(t);
            prop_assert!(s.core < SYSTEM3.cpu.total_cores());
            prop_assert!(s.smt < SYSTEM3.cpu.threads_per_core);
            prop_assert_eq!(s.socket, s.core / SYSTEM3.cpu.cores_per_socket);
        }
    }

    #[test]
    fn no_core_sharing_below_core_count(n in 1u32..=16, aff_idx in 0usize..2) {
        let aff = [Affinity::Spread, Affinity::Close][aff_idx];
        let p = Placement::new(&SYSTEM3.cpu, aff, n);
        for t in 0..n as usize {
            prop_assert!(!p.core_is_smt_loaded(t), "thread {t} of {n} shares a core");
        }
    }

    // ---- CPU cost model ---------------------------------------------

    #[test]
    fn contention_monotonic_and_saturating(c1 in 0u32..64, c2 in 0u32..64) {
        let m = CpuModel::baseline();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(m.contention_ns(lo, false) <= m.contention_ns(hi, false));
        // Marginal growth past saturation is just the sharer tax.
        if lo > m.contention_sat && hi > lo {
            let marginal = (m.contention_ns(hi, false) - m.contention_ns(lo, false))
                / f64::from(hi - lo);
            prop_assert!((marginal - m.sharer_tax_ns).abs() < 1e-9);
        }
    }

    // ---- GPU occupancy ----------------------------------------------

    #[test]
    fn occupancy_invariants(blocks in 1u32..512, threads in 1u32..=1024) {
        let o = Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap();
        prop_assert!(o.threads_per_sm <= SYSTEM3.gpu.max_threads_per_sm);
        prop_assert!(o.waves >= 1);
        prop_assert!(o.sms_used <= SYSTEM3.gpu.sms);
        prop_assert!(o.sms_used <= blocks);
        prop_assert_eq!(o.warps_per_block, threads.div_ceil(32));
        prop_assert!(o.total_resident_warps >= o.warps_per_block);
        prop_assert!(o.total_resident_threads <= blocks * threads);
        // Resident work never exceeds one wave's capacity.
        prop_assert!(o.resident_blocks_per_sm * threads <= SYSTEM3.gpu.max_threads_per_sm
            || o.resident_blocks_per_sm == 1);
    }

    // ---- kernels ----------------------------------------------------

    #[test]
    fn kernel_factories_well_formed(stride in 1u32..64, dt_idx in 0usize..4) {
        let dt = DType::ALL[dt_idx];
        for k in [
            kernel::omp_atomic_update_array(dt, stride),
            kernel::omp_flush(dt, stride),
        ] {
            prop_assert!(k.test.len() >= k.baseline.len());
            prop_assert!(k.extra_ops >= 1);
            prop_assert!(!k.name.is_empty());
        }
        let gk = kernel::cuda_atomic_add_array(dt, stride);
        prop_assert!(gk.test.len() > gk.baseline.len());
    }

    // ---- engine determinism & scaling --------------------------------

    #[test]
    fn cpu_engine_linear_in_reps(threads in 2u32..16, reps in 2u64..50) {
        let m = CpuModel::baseline();
        let p = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
        let body = kernel::omp_atomic_update_scalar(DType::I32).test;
        let r1 = syncperf::cpu_sim::engine::run(&m, &p, &body, reps).unwrap();
        let r2 = syncperf::cpu_sim::engine::run(&m, &p, &body, reps * 2).unwrap();
        for (a, b) in r1.per_thread_ns.iter().zip(&r2.per_thread_ns) {
            // Steady state: doubling reps doubles time (within the
            // warm-up rounding of the first rep).
            prop_assert!((b / a - 2.0).abs() < 0.05, "a={a} b={b}");
        }
    }

    #[test]
    fn gpu_engine_deterministic(blocks in 1u32..64, threads in 1u32..=256) {
        let m = syncperf::gpu_sim::GpuModel::for_spec(&SYSTEM3.gpu);
        let o = Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap();
        let body = kernel::cuda_atomic_add_scalar(DType::I32).test;
        let a = syncperf::gpu_sim::engine::run(&m, &o, &body, 10).unwrap();
        let b = syncperf::gpu_sim::engine::run(&m, &o, &body, 10).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gpu_atomic_cost_monotonic_in_blocks(threads in 32u32..=256) {
        let m = syncperf::gpu_sim::GpuModel::for_spec(&SYSTEM3.gpu);
        let body = kernel::cuda_atomic_add_scalar(DType::I32).baseline;
        let mut prev = 0.0;
        for blocks in [1u32, 2, 64, 128] {
            let o = Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap();
            let r = syncperf::gpu_sim::engine::run(&m, &o, &body, 1).unwrap();
            prop_assert!(r.cycles_per_rep() >= prev, "more blocks → more same-address contention");
            prev = r.cycles_per_rep();
        }
    }

    // ---- reports ----------------------------------------------------

    #[test]
    fn csv_row_count_matches_distinct_x(xs in prop::collection::btree_set(0u32..1000, 1..30)) {
        let points: Vec<(f64, f64)> = xs.iter().map(|&x| (f64::from(x), 1.0)).collect();
        let mut fig = FigureData::new("p", "prop", "x", "y");
        fig.push_series(Series::new("s", points));
        let csv = fig.to_csv();
        prop_assert_eq!(csv.lines().count(), xs.len() + 1);
    }
}

// ---- static/dynamic race-detector agreement -------------------------
//
// For ANY loop body assembled from the op pool below, the static sync
// linter's race verdict (syncperf::analyze::lint) must coincide with
// the vector-clock replay's (syncperf::analyze::vc) — per location, and
// for barrier divergence. See docs/ANALYSIS.md.

/// Every CPU op shape the linter distinguishes: barriers, fences, all
/// atomic kinds, plain accesses on shared / padded / stride-0 targets.
const CPU_OP_POOL: [CpuOp; 12] = [
    CpuOp::Barrier,
    CpuOp::Flush,
    CpuOp::AtomicUpdate {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::AtomicCapture {
        dtype: DType::U64,
        target: Target::SHARED2,
    },
    CpuOp::AtomicRead {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::AtomicWrite {
        dtype: DType::F64,
        target: Target::SHARED2,
    },
    CpuOp::Read {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::Update {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::Update {
        dtype: DType::F32,
        target: Target::private(8),
    },
    CpuOp::Update {
        dtype: DType::F64,
        target: Target::private(0),
    },
    CpuOp::CriticalAdd {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    // A second array, so the two nonzero strides never alias: the
    // analyzer models one stride per (dtype, array) pair, as every
    // built-in kernel does (docs/ANALYSIS.md, "modeled IR domain").
    CpuOp::Read {
        dtype: DType::F32,
        target: Target::Private {
            array: 1,
            stride: 4,
        },
    },
];

/// Every GPU op shape: block/device/system atomics, the three fence
/// widths, warp ops, block barriers, divergence, plain accesses.
const GPU_OP_POOL: [GpuOp; 16] = [
    GpuOp::SyncThreads,
    GpuOp::SyncWarp,
    GpuOp::SyncThreadsReduce {
        kind: VoteKind::Ballot,
    },
    GpuOp::AtomicAdd {
        dtype: DType::I32,
        scope: Scope::Device,
        target: Target::SHARED,
    },
    GpuOp::AtomicAdd {
        dtype: DType::I32,
        scope: Scope::Block,
        target: Target::SHARED,
    },
    GpuOp::AtomicCas {
        dtype: DType::U64,
        scope: Scope::System,
        target: Target::SHARED2,
    },
    GpuOp::AtomicMax {
        dtype: DType::F32,
        scope: Scope::Device,
        target: Target::SHARED,
    },
    GpuOp::ThreadFence {
        scope: Scope::Block,
    },
    GpuOp::ThreadFence {
        scope: Scope::Device,
    },
    GpuOp::Shfl {
        dtype: DType::I32,
        variant: ShflVariant::Idx,
    },
    GpuOp::Vote {
        kind: VoteKind::Any,
    },
    GpuOp::Update {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    GpuOp::Update {
        dtype: DType::I32,
        target: Target::private(32),
    },
    GpuOp::Read {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    GpuOp::Alu { dtype: DType::I32 },
    GpuOp::Diverge {
        dtype: DType::I32,
        paths: 4,
    },
];

proptest! {
    #[test]
    fn cpu_static_and_dynamic_race_verdicts_agree(
        idxs in prop::collection::vec(0usize..CPU_OP_POOL.len(), 0..9),
    ) {
        let body: Vec<CpuOp> = idxs.iter().map(|&i| CPU_OP_POOL[i]).collect();
        let a = syncperf::analyze::check_cpu_body(&body);
        prop_assert!(a.holds(), "body {body:?}: {}", a.explain());
    }

    #[test]
    fn gpu_static_and_dynamic_race_verdicts_agree(
        idxs in prop::collection::vec(0usize..GPU_OP_POOL.len(), 0..9),
    ) {
        let body: Vec<GpuOp> = idxs.iter().map(|&i| GPU_OP_POOL[i]).collect();
        let a = syncperf::analyze::check_gpu_body(&body);
        prop_assert!(a.holds(), "body {body:?}: {}", a.explain());
    }
}

// ---- steady-state fast path ≡ full stepping -------------------------
//
// The engines extrapolate once a fixed point is reached; these
// properties pin the extrapolated result to the op-by-op stepping
// oracle, bit for bit, over random bodies drawn from the same op pools
// the race-detector properties use — with and without a live recorder.

proptest! {
    #[test]
    fn cpu_fast_path_bit_exact_vs_full_stepping(
        idxs in prop::collection::vec(0usize..CPU_OP_POOL.len(), 1..9),
        threads in 1u32..24,
        aff_idx in 0usize..3,
        reps in 1u64..200,
        observe in proptest::bool::ANY,
    ) {
        let aff = [Affinity::Spread, Affinity::Close, Affinity::SystemChoice][aff_idx];
        let m = CpuModel::baseline();
        let p = Placement::new(&SYSTEM3.cpu, aff, threads);
        let body: Vec<CpuOp> = idxs.iter().map(|&i| CPU_OP_POOL[i]).collect();
        let rec = if observe {
            syncperf::core::obs::Recorder::enabled()
        } else {
            syncperf::core::obs::Recorder::disabled()
        };
        let fast = syncperf::cpu_sim::engine::run_observed(&m, &p, &body, reps, &rec).unwrap();
        let full = syncperf::cpu_sim::run_full_stepping(&m, &p, &body, reps, &rec).unwrap();
        prop_assert_eq!(fast, full);
    }

    #[test]
    fn gpu_fast_path_bit_exact_vs_full_stepping(
        idxs in prop::collection::vec(0usize..GPU_OP_POOL.len(), 1..9),
        blocks in 1u32..64,
        threads in 1u32..=256,
        reps in 1u64..200,
        observe in proptest::bool::ANY,
    ) {
        let m = syncperf::gpu_sim::GpuModel::for_spec(&SYSTEM3.gpu);
        let o = Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap();
        let body: Vec<GpuOp> = idxs.iter().map(|&i| GPU_OP_POOL[i]).collect();
        let rec = if observe {
            syncperf::core::obs::Recorder::enabled()
        } else {
            syncperf::core::obs::Recorder::disabled()
        };
        let fast = syncperf::gpu_sim::engine::run_observed(&m, &o, &body, reps, &rec);
        let full = syncperf::gpu_sim::run_full_stepping(&m, &o, &body, reps, &rec);
        match (fast, full) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // Unsupported op (e.g. a float atomicMax): both paths must
            // reject it the same way.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }
}

// ---- batched plan tables ≡ single-point traces ≡ full stepping ------
//
// The scheduler's sweep batching compiles one struct-of-arrays plan
// table for a whole parameter grid and evaluates every point in one
// lockstep pass. These properties pin the batched results to the
// single-point engine AND to the op-by-op stepping oracle, bit for
// bit, over random bodies × parameter grids, with and without a live
// recorder.

proptest! {
    #[test]
    fn cpu_batched_plan_table_bit_exact(
        idxs in prop::collection::vec(0usize..CPU_OP_POOL.len(), 1..9),
        grid in prop::collection::vec(1u32..24, 1..6),
        affs in prop::collection::vec(0usize..3, 1..6),
        reps in 1u64..200,
        observe in proptest::bool::ANY,
    ) {
        let m = CpuModel::baseline();
        let body: Vec<CpuOp> = idxs.iter().map(|&i| CPU_OP_POOL[i]).collect();
        let placements: Vec<Placement> = grid
            .iter()
            .enumerate()
            .map(|(i, &threads)| {
                let aff = [Affinity::Spread, Affinity::Close, Affinity::SystemChoice]
                    [affs[i % affs.len()]];
                Placement::new(&SYSTEM3.cpu, aff, threads)
            })
            .collect();
        let rec = if observe {
            syncperf::core::obs::Recorder::enabled()
        } else {
            syncperf::core::obs::Recorder::disabled()
        };
        let batched =
            syncperf::cpu_sim::trace::run_batch_observed(&m, &body, &placements, reps, &rec)
                .unwrap();
        prop_assert_eq!(batched.len(), placements.len());
        for (p, got) in placements.iter().zip(&batched) {
            let single =
                syncperf::cpu_sim::engine::run_observed(&m, p, &body, reps, &rec).unwrap();
            prop_assert_eq!(got, &single, "batched point diverges from single-point engine");
            let full = syncperf::cpu_sim::run_full_stepping(&m, p, &body, reps, &rec).unwrap();
            prop_assert_eq!(got, &full, "batched point diverges from the stepping oracle");
        }
    }

    #[test]
    fn gpu_batched_evaluation_bit_exact(
        idxs in prop::collection::vec(0usize..GPU_OP_POOL.len(), 1..9),
        blocks_grid in prop::collection::vec(1u32..64, 1..6),
        threads_grid in prop::collection::vec(1u32..=256, 1..6),
        reps in 1u64..200,
    ) {
        let m = syncperf::gpu_sim::GpuModel::for_spec(&SYSTEM3.gpu);
        let body: Vec<GpuOp> = idxs.iter().map(|&i| GPU_OP_POOL[i]).collect();
        let occs: Vec<Occupancy> = blocks_grid
            .iter()
            .enumerate()
            .map(|(i, &blocks)| {
                let threads = threads_grid[i % threads_grid.len()];
                Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap()
            })
            .collect();
        let rec = syncperf::core::obs::Recorder::disabled();
        let batched = syncperf::gpu_sim::batch::run_batch(&m, &occs, &body, reps);
        match batched {
            Ok(results) => {
                prop_assert_eq!(results.len(), occs.len());
                for (o, got) in occs.iter().zip(&results) {
                    let single =
                        syncperf::gpu_sim::engine::run_observed(&m, o, &body, reps, &rec)
                            .unwrap();
                    prop_assert_eq!(got, &single);
                }
            }
            // Unsupported op (e.g. a float atomicMax): every per-point
            // path must reject the body too.
            Err(_) => {
                for o in &occs {
                    prop_assert!(
                        syncperf::gpu_sim::engine::run_observed(&m, o, &body, reps, &rec)
                            .is_err(),
                        "batch rejected a body the single-point engine accepts"
                    );
                }
            }
        }
    }
}

// Real-atomics properties: concurrent updates never lose increments,
// for any thread/iteration mix (bounded for test time).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn real_atomic_updates_never_lost(threads in 2usize..6, per in 100u64..2000) {
        let cell = AtomicCell::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per {
                        cell.update(1);
                    }
                });
            }
        });
        prop_assert_eq!(cell.read(), threads as u64 * per);
    }

    #[test]
    fn real_team_barrier_phases_hold(threads in 2usize..6, rounds in 1u64..20) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let counter = AtomicU64::new(0);
        Team::new(threads).parallel(|ctx| {
            for round in 1..=rounds {
                counter.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
                assert_eq!(counter.load(Ordering::Relaxed), round * threads as u64);
                ctx.barrier();
            }
        });
        prop_assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed),
                        rounds * threads as u64);
    }
}
