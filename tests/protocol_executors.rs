//! Cross-crate integration: the measurement protocol behaves
//! consistently across all three executors (real threads, CPU
//! simulator, GPU simulator).

use syncperf::prelude::*;

fn quick_cpu() -> ExecParams {
    ExecParams::new(4).with_loops(100, 20).with_warmup(1)
}

#[test]
fn same_kernel_same_protocol_three_executors() {
    let k = kernel::omp_atomic_update_scalar(DType::I32);
    let mut real = OmpExecutor::new();
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let m_real = Protocol::SIM.measure(&mut real, &k, &quick_cpu()).unwrap();
    let m_sim = Protocol::SIM.measure(&mut sim, &k, &quick_cpu()).unwrap();
    // Both are real atomics (ns scale) and simulated atomics (ns
    // scale): within two orders of magnitude of each other.
    let r = m_real.runtime_seconds() / m_sim.runtime_seconds();
    assert!(
        (0.01..100.0).contains(&r),
        "real {} s vs sim {} s",
        m_real.runtime_seconds(),
        m_sim.runtime_seconds()
    );

    let gk = kernel::cuda_atomic_add_scalar(DType::I32);
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let m_gpu = Protocol::SIM
        .measure(
            &mut gpu,
            &gk,
            &ExecParams::new(32).with_blocks(2).with_loops(100, 20),
        )
        .unwrap();
    assert!(m_gpu.per_op > 0.0);
    assert!(matches!(m_gpu.time_unit, TimeUnit::Cycles { .. }));
}

#[test]
fn executors_report_their_names_and_units() {
    let real = OmpExecutor::new();
    let sim = CpuSimExecutor::new(&SYSTEM2);
    let gpu = GpuSimExecutor::new(&SYSTEM1);
    assert_eq!(real.name(), "omp-real-threads");
    assert_eq!(sim.name(), "cpu-sim");
    assert_eq!(gpu.name(), "gpu-sim");
    assert_eq!(real.time_unit(), TimeUnit::Seconds);
    assert_eq!(sim.time_unit(), TimeUnit::Seconds);
    assert_eq!(gpu.time_unit(), TimeUnit::Cycles { clock_ghz: 1.80 });
}

#[test]
fn atomic_read_is_free_on_real_threads_and_simulator() {
    // The paper's §V-A2 finding must hold on both substrates.
    let k = kernel::omp_atomic_read(DType::I32);
    let mut real = OmpExecutor::new();
    let m = Protocol::PAPER
        .measure(
            &mut real,
            &k,
            &ExecParams::new(2).with_loops(100, 50).with_warmup(2),
        )
        .unwrap();
    assert!(
        m.is_negligible(),
        "real-thread atomic read overhead {} s should be negligible",
        m.runtime_seconds()
    );
    let mut sim = CpuSimExecutor::new(&SYSTEM2);
    let m = Protocol::PAPER
        .measure(&mut sim, &k, &ExecParams::new(8).with_loops(1000, 100))
        .unwrap();
    assert!(m.is_negligible());
}

#[test]
fn cpu_ops_rejected_by_wrong_params_everywhere() {
    let k = kernel::omp_barrier();
    let bad = ExecParams::new(0);
    let mut real = OmpExecutor::new();
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    assert!(Protocol::SIM.measure(&mut real, &k, &bad).is_err());
    assert!(Protocol::SIM.measure(&mut sim, &k, &bad).is_err());
}

#[test]
fn gpu_rejects_float_cas_like_cuda_would() {
    let mut gpu = GpuSimExecutor::new(&SYSTEM3);
    let err = Protocol::SIM
        .measure(
            &mut gpu,
            &kernel::cuda_atomic_cas_scalar(DType::F64),
            &ExecParams::new(32).with_loops(10, 10),
        )
        .unwrap_err();
    assert!(matches!(err, SyncPerfError::UnsupportedDType { .. }));
    assert!(err.to_string().contains("atomicCAS"));
}

#[test]
fn measurement_carries_full_provenance() {
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let k = kernel::omp_critical_add(DType::F32);
    let p = ExecParams::new(8).with_loops(100, 10);
    let m = Protocol::PAPER.measure(&mut sim, &k, &p).unwrap();
    assert_eq!(m.kernel_name, "omp_critical_float");
    assert_eq!(m.params, p);
    assert_eq!(m.baseline_runs.len(), 9);
    assert_eq!(m.test_runs.len(), 9);
    assert!(m.median_test >= m.median_baseline * 0.5);
}

#[test]
fn simulated_jitter_exercises_the_retry_path() {
    // On the jittery System 3, measuring a near-zero-cost primitive
    // makes some attempts come out test < baseline; the protocol must
    // retry and still produce a finite result.
    let mut sim = CpuSimExecutor::new(&SYSTEM3);
    let k = kernel::omp_atomic_read(DType::F64);
    let p = ExecParams::new(16).with_loops(1000, 100);
    let mut total_retries = 0;
    for _ in 0..5 {
        let m = Protocol::PAPER.measure(&mut sim, &k, &p).unwrap();
        total_retries += m.retries;
        assert!(m.per_op.is_finite());
    }
    assert!(
        total_retries > 0,
        "expected at least one retry across 5 measurements"
    );
}
