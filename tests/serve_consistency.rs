//! End-to-end query-service consistency (ROADMAP: the serving layer
//! must answer from the warm cache without recomputation, and a
//! compute-on-miss must be byte-identical to the serial runner).
//!
//! Each test starts a real server on an ephemeral port and talks to it
//! over plain TCP — the same path an external client takes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use syncperf_bench::serving;
use syncperf_sched::cache::encode_measurement;
use syncperf_sched::{SchedConfig, Scheduler};
use syncperf_serve::{ComputeRequest, ServeConfig, ServeStats, Server};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("syncperf-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(results: &std::path::Path, cache_bytes: Option<u64>) -> Server {
    let cfg = SchedConfig::new(2)
        .with_cache_dir(results.join(".cache"))
        .with_label("serve-it");
    let mut serve_cfg =
        ServeConfig::new(Arc::new(Scheduler::new(cfg)), serving::default_resolver());
    serve_cfg.addr = "127.0.0.1:0".into();
    serve_cfg.results_dir = results.to_path_buf();
    serve_cfg.cache_bytes = cache_bytes;
    serve_cfg.recorder = syncperf_core::obs::Recorder::enabled();
    Server::start(serve_cfg).expect("server starts")
}

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("recv");
    let status = reply
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The `"measurement"` object of a service answer, which is exactly
/// the cache-entry encoding (trailing `}` and newline of the envelope
/// stripped).
fn measurement_of(body: &str) -> String {
    body.split_once("\"measurement\": ")
        .expect("answer carries a measurement")
        .1
        .strip_suffix("}\n")
        .expect("envelope closes")
        .to_string()
}

fn field<'a>(body: &'a str, key: &str) -> &'a str {
    body.split_once(&format!("\"{key}\": \""))
        .unwrap_or_else(|| panic!("`{key}` in response: {body}"))
        .1
        .split('"')
        .next()
        .unwrap()
}

#[test]
fn cold_compute_is_byte_identical_to_the_serial_runner() {
    let results = tmp("cold");
    let server = start_server(&results, None);
    let addr = server.addr();

    let spec =
        "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_atomicadd_scalar_int\", \"threads\": 8}";
    let (status, body) = post(addr, "/compute", spec);
    assert_eq!(status, 200, "cold compute succeeds: {body}");
    assert_eq!(field(&body, "source"), "computed");
    let served = measurement_of(&body);

    // The reference: the same request resolved and measured on a
    // fresh serial (1-worker) scheduler with its own cold cache.
    let req = ComputeRequest {
        executor: "cpu-sim".into(),
        kernel: "omp_atomicadd_scalar_int".into(),
        threads: 8,
        ..ComputeRequest::default()
    };
    let job = serving::resolve(&req).expect("request resolves");
    let serial_dir = tmp("cold-serial");
    let serial = Scheduler::new(
        SchedConfig::new(1)
            .with_cache_dir(serial_dir.join(".cache"))
            .with_label("serve-it-serial"),
    );
    let hash = serial.job_hash(&job);
    let m = serial.measure(job).expect("serial measure");
    assert_eq!(
        served,
        encode_measurement(hash, &m),
        "served bytes must equal the serial runner's encoding"
    );
    assert_eq!(field(&body, "hash"), syncperf_sched::hash::hex16(hash));

    // The same request again is a pure cache answer: no new
    // computation, and /job serves the identical bytes.
    let (status, warm) = post(addr, "/compute", spec);
    assert_eq!(status, 200);
    assert_eq!(field(&warm, "source"), "cache");
    assert_eq!(measurement_of(&warm), served);
    let (status, by_hash) = get(addr, &format!("/job/{}", field(&body, "hash")));
    assert_eq!(status, 200);
    assert_eq!(measurement_of(&by_hash), served);

    let (_, stats) = get(addr, "/stats");
    assert!(
        stats.contains("\"computes\": 1"),
        "exactly one computation: {stats}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
    let _ = std::fs::remove_dir_all(&serial_dir);
}

#[test]
fn warm_restart_answers_without_recomputation() {
    let results = tmp("warm");
    // First server computes and shuts down.
    let server = start_server(&results, None);
    let spec = "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 4}";
    let (status, body) = post(server.addr(), "/compute", spec);
    assert_eq!(status, 200);
    let hash = field(&body, "hash").to_string();
    let served = measurement_of(&body);
    server.shutdown();

    // A fresh server over the same results dir rebuilds its index from
    // disk and answers /job and /query without any computation.
    let server = start_server(&results, None);
    let addr = server.addr();
    let (status, by_hash) = get(addr, &format!("/job/{hash}"));
    assert_eq!(status, 200);
    assert_eq!(measurement_of(&by_hash), served);
    let (status, by_query) = get(addr, "/query?kernel=omp_barrier&threads=4&exact=1");
    assert_eq!(status, 200);
    assert_eq!(measurement_of(&by_query), served);
    let (_, stats) = get(addr, "/stats");
    assert!(stats.contains("\"computes\": 0"), "no recompute: {stats}");
    assert!(
        stats.contains("\"cache_hits\": 2"),
        "both were hits: {stats}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn figure_endpoint_serves_results_files_and_rejects_traversal() {
    let results = tmp("figure");
    std::fs::create_dir_all(&results).unwrap();
    std::fs::write(results.join("fig99.csv"), "threads,ops\n1,1\n").unwrap();
    std::fs::write(results.join("fig99.svg"), "<svg></svg>").unwrap();
    let server = start_server(&results, None);
    let addr = server.addr();

    let (status, csv) = get(addr, "/figure/fig99");
    assert_eq!((status, csv.as_str()), (200, "threads,ops\n1,1\n"));
    let (status, svg) = get(addr, "/figure/fig99.svg");
    assert_eq!((status, svg.as_str()), (200, "<svg></svg>"));
    let (status, _) = get(addr, "/figure/no_such_figure");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/figure/..%2F..%2Fetc%2Fpasswd");
    assert_eq!(status, 400, "path traversal is rejected outright");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn concurrent_identical_computes_run_exactly_one_job() {
    let results = tmp("dedup");
    let server = start_server(&results, None);
    let addr = server.addr();
    let spec = "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_critical_int\", \"threads\": 16}";

    // 6 identical computes racing, while 6 more threads hammer /query
    // the whole time. Every /query answer must be a complete document
    // (404 before the entry lands, 200 with parseable JSON after) —
    // never a torn read.
    let computes: Vec<_> = (0..6)
        .map(|_| {
            let spec = spec.to_string();
            std::thread::spawn(move || post(addr, "/compute", &spec))
        })
        .collect();
    let queries: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut seen_hit = false;
                for _ in 0..30 {
                    let (status, body) = get(addr, "/query?kernel=omp_critical_int&threads=16");
                    match status {
                        200 => {
                            let m = measurement_of(&body);
                            syncperf_core::obs::json::parse(&m)
                                .expect("a served measurement is always complete JSON");
                            seen_hit = true;
                        }
                        404 => {}
                        other => panic!("unexpected status {other}: {body}"),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                seen_hit
            })
        })
        .collect();

    let mut bodies = Vec::new();
    for c in computes {
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200, "every racer gets an answer: {body}");
        bodies.push(measurement_of(&body));
    }
    for q in queries {
        let _ = q.join().unwrap();
    }
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "all racers see identical bytes"
    );

    // Exactly one scheduler job ran, no matter how the race resolved.
    let (_, stats) = get(addr, "/stats");
    assert!(
        stats.contains("\"computes\": 1"),
        "exactly one compute: {stats}"
    );
    assert!(
        stats.contains("\"executed\": 1"),
        "exactly one scheduler execution: {stats}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn eviction_keeps_the_cache_under_budget_and_the_index_consistent() {
    let results = tmp("evict");
    // Budget of ~2 entries (entries for these kernels run ~800 bytes).
    let server = start_server(&results, Some(2000));
    let addr = server.addr();

    for threads in [2u32, 4, 8, 16, 32] {
        let spec = format!(
            "{{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": {threads}}}"
        );
        let (status, body) = post(addr, "/compute", &spec);
        assert_eq!(status, 200, "compute at {threads} threads: {body}");
    }

    let index = server.index();
    assert!(index.is_consistent(), "index survives eviction churn");
    assert!(
        index.total_bytes() <= 2000,
        "on-disk cache respects SYNCPERF_CACHE_BYTES: {} bytes",
        index.total_bytes()
    );
    assert!(!index.is_empty(), "eviction never empties a live cache");
    let (_, stats) = get(addr, "/stats");
    let evictions: u64 = stats
        .split_once("\"evictions\": ")
        .and_then(|(_, rest)| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .expect("evictions counter in stats");
    assert!(evictions >= 3, "5 entries minus a 2-entry budget: {stats}");

    // What survives is still queryable, and what was evicted recomputes
    // cleanly rather than erroring.
    let (status, _) = get(addr, "/query?kernel=omp_barrier&threads=32");
    assert_eq!(status, 200);
    let (status, body) = post(
        addr,
        "/compute",
        "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 2}",
    );
    assert_eq!(status, 200);
    assert!(
        field(&body, "source") == "computed" || field(&body, "source") == "cache",
        "evicted entries come back on demand"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

/// Reads exactly one HTTP response off `stream` using Content-Length
/// framing (a keep-alive client can't read to EOF — the connection
/// stays open).
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 512];
        let n = stream.read(&mut chunk).expect("read headers");
        assert!(n > 0, "connection closed before headers completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .expect("Content-Length header");
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 512];
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    (status, head, String::from_utf8_lossy(&body).to_string())
}

#[test]
fn keep_alive_serves_two_requests_on_one_socket() {
    let results = tmp("keepalive");
    let server = start_server(&results, None);
    let addr = server.addr();

    // One TCP connection, two sequential requests. HTTP/1.1 without
    // `Connection: close` defaults to keep-alive, so both answers must
    // arrive on this same socket.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send first");
    let (status, head, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "first request on the socket: {body}");
    assert!(
        head.contains("Connection: keep-alive\r\n"),
        "server advertises reuse: {head}"
    );

    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send second");
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "second request reuses the socket: {body}");
    assert!(
        body.contains("\"requests\": 2"),
        "both requests were counted: {body}"
    );

    // A third request that opts out is answered and then closed: the
    // next read sees EOF.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send third");
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(
        head.contains("Connection: close\r\n"),
        "close is honored and echoed: {head}"
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain to EOF");
    assert!(rest.is_empty(), "server closed after Connection: close");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn metrics_counters_advance_across_keep_alive_requests() {
    let results = tmp("metrics");
    let server = start_server(&results, None);
    let addr = server.addr();

    // Two /metrics scrapes over one keep-alive socket. Each exposition
    // must parse losslessly, and the second must show the first scrape
    // counted — the counters advance while the connection stays open.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send first");
    let (status, head, body) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus exposition content type: {head}"
    );
    assert!(head.contains("Connection: keep-alive\r\n"));
    // Parsed snapshots carry the exposition names (dots sanitized to
    // underscores on the wire).
    let first = syncperf_core::obs::metrics::parse(&body);
    let first_requests = first.counter("serve_requests");
    let first_scrapes = first.counter("serve_endpoint_metrics_requests");

    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send second");
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    let second = syncperf_core::obs::metrics::parse(&body);
    assert_eq!(
        second.counter("serve_requests"),
        first_requests + 1,
        "the first scrape itself was counted"
    );
    assert_eq!(
        second.counter("serve_endpoint_metrics_requests"),
        first_scrapes + 1
    );
    assert!(
        second
            .histogram("serve_endpoint_metrics_latency_us")
            .count()
            >= 1,
        "scrape latency lands in the per-endpoint histogram"
    );
    // Exposition is well-formed: every sample line has a numeric value,
    // and the histogram families are typed.
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value parses: {line:?}"
        );
    }
    assert!(body.contains("# TYPE serve_latency_us histogram"));
    assert!(body.contains("serve_latency_us_bucket{le=\"+Inf\"}"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn events_endpoint_tails_the_flight_recorder_as_jsonl() {
    let results = tmp("events");
    let server = start_server(&results, None);
    let addr = server.addr();

    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/events?n=4");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "startup + requests were recorded");
    assert!(lines.len() <= 4, "n bounds the tail: {} lines", lines.len());
    let mut prev_seq = None;
    for line in &lines {
        let v = syncperf_core::obs::json::parse(line).expect("each line is one JSON object");
        let seq = v
            .get("seq")
            .and_then(syncperf_core::obs::json::Value::as_f64)
            .expect("entries carry a sequence number");
        if let Some(p) = prev_seq {
            assert!(seq > p, "tail is oldest-first by sequence");
        }
        prev_seq = Some(seq);
    }
    assert!(
        body.contains("\"cat\":\"http\""),
        "the /healthz request itself was recorded: {body}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn serve_stats_round_trip_through_snapshot() {
    let results = tmp("stats");
    let rec = syncperf_core::obs::Recorder::enabled();
    let cfg = SchedConfig::new(1)
        .with_cache_dir(results.join(".cache"))
        .with_label("serve-it-stats");
    let mut serve_cfg =
        ServeConfig::new(Arc::new(Scheduler::new(cfg)), serving::default_resolver());
    serve_cfg.addr = "127.0.0.1:0".into();
    serve_cfg.results_dir = results.clone();
    serve_cfg.recorder = rec.clone();
    let server = Server::start(serve_cfg).expect("server starts");
    let addr = server.addr();

    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _) = get(addr, "/job/0000000000000000");
    assert_eq!(status, 404);
    server.shutdown();

    let stats = ServeStats::from_snapshot(&rec.snapshot());
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.errors, 1);
    let _ = std::fs::remove_dir_all(&results);
}
