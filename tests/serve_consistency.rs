//! End-to-end query-service consistency (ROADMAP: the serving layer
//! must answer from the warm cache without recomputation, and a
//! compute-on-miss must be byte-identical to the serial runner).
//!
//! Each test starts a real server on an ephemeral port and talks to it
//! over plain TCP — the same path an external client takes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use syncperf_bench::serving;
use syncperf_sched::cache::encode_measurement;
use syncperf_sched::{SchedConfig, Scheduler};
use syncperf_serve::{ComputeRequest, ServeConfig, ServeStats, Server};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("syncperf-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(results: &std::path::Path, cache_bytes: Option<u64>) -> Server {
    start_server_with(results, cache_bytes, |_| {})
}

fn start_server_with(
    results: &std::path::Path,
    cache_bytes: Option<u64>,
    tweak: impl FnOnce(&mut ServeConfig),
) -> Server {
    let cfg = SchedConfig::new(2)
        .with_cache_dir(results.join(".cache"))
        .with_label("serve-it");
    let mut serve_cfg =
        ServeConfig::new(Arc::new(Scheduler::new(cfg)), serving::default_resolver());
    serve_cfg.addr = "127.0.0.1:0".into();
    serve_cfg.results_dir = results.to_path_buf();
    serve_cfg.cache_bytes = cache_bytes;
    serve_cfg.recorder = syncperf_core::obs::Recorder::enabled();
    tweak(&mut serve_cfg);
    Server::start(serve_cfg).expect("server starts")
}

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("recv");
    let status = reply
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The `"measurement"` object of a service answer, which is exactly
/// the cache-entry encoding (trailing `}` and newline of the envelope
/// stripped).
fn measurement_of(body: &str) -> String {
    body.split_once("\"measurement\": ")
        .expect("answer carries a measurement")
        .1
        .strip_suffix("}\n")
        .expect("envelope closes")
        .to_string()
}

fn field<'a>(body: &'a str, key: &str) -> &'a str {
    body.split_once(&format!("\"{key}\": \""))
        .unwrap_or_else(|| panic!("`{key}` in response: {body}"))
        .1
        .split('"')
        .next()
        .unwrap()
}

#[test]
fn cold_compute_is_byte_identical_to_the_serial_runner() {
    let results = tmp("cold");
    let server = start_server(&results, None);
    let addr = server.addr();

    let spec =
        "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_atomicadd_scalar_int\", \"threads\": 8}";
    let (status, body) = post(addr, "/compute", spec);
    assert_eq!(status, 200, "cold compute succeeds: {body}");
    assert_eq!(field(&body, "source"), "computed");
    let served = measurement_of(&body);

    // The reference: the same request resolved and measured on a
    // fresh serial (1-worker) scheduler with its own cold cache.
    let req = ComputeRequest {
        executor: "cpu-sim".into(),
        kernel: "omp_atomicadd_scalar_int".into(),
        threads: 8,
        ..ComputeRequest::default()
    };
    let job = serving::resolve(&req).expect("request resolves");
    let serial_dir = tmp("cold-serial");
    let serial = Scheduler::new(
        SchedConfig::new(1)
            .with_cache_dir(serial_dir.join(".cache"))
            .with_label("serve-it-serial"),
    );
    let hash = serial.job_hash(&job);
    let m = serial.measure(job).expect("serial measure");
    assert_eq!(
        served,
        encode_measurement(hash, &m),
        "served bytes must equal the serial runner's encoding"
    );
    assert_eq!(field(&body, "hash"), syncperf_sched::hash::hex16(hash));

    // The same request again is a pure cache answer: no new
    // computation, and /job serves the identical bytes.
    let (status, warm) = post(addr, "/compute", spec);
    assert_eq!(status, 200);
    assert_eq!(field(&warm, "source"), "cache");
    assert_eq!(measurement_of(&warm), served);
    let (status, by_hash) = get(addr, &format!("/job/{}", field(&body, "hash")));
    assert_eq!(status, 200);
    assert_eq!(measurement_of(&by_hash), served);

    let (_, stats) = get(addr, "/stats");
    assert!(
        stats.contains("\"computes\": 1"),
        "exactly one computation: {stats}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
    let _ = std::fs::remove_dir_all(&serial_dir);
}

#[test]
fn warm_restart_answers_without_recomputation() {
    let results = tmp("warm");
    // First server computes and shuts down.
    let server = start_server(&results, None);
    let spec = "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 4}";
    let (status, body) = post(server.addr(), "/compute", spec);
    assert_eq!(status, 200);
    let hash = field(&body, "hash").to_string();
    let served = measurement_of(&body);
    server.shutdown();

    // A fresh server over the same results dir rebuilds its index from
    // disk and answers /job and /query without any computation.
    let server = start_server(&results, None);
    let addr = server.addr();
    let (status, by_hash) = get(addr, &format!("/job/{hash}"));
    assert_eq!(status, 200);
    assert_eq!(measurement_of(&by_hash), served);
    let (status, by_query) = get(addr, "/query?kernel=omp_barrier&threads=4&exact=1");
    assert_eq!(status, 200);
    assert_eq!(measurement_of(&by_query), served);
    let (_, stats) = get(addr, "/stats");
    assert!(stats.contains("\"computes\": 0"), "no recompute: {stats}");
    assert!(
        stats.contains("\"cache_hits\": 2"),
        "both were hits: {stats}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn figure_endpoint_serves_results_files_and_rejects_traversal() {
    let results = tmp("figure");
    std::fs::create_dir_all(&results).unwrap();
    std::fs::write(results.join("fig99.csv"), "threads,ops\n1,1\n").unwrap();
    std::fs::write(results.join("fig99.svg"), "<svg></svg>").unwrap();
    let server = start_server(&results, None);
    let addr = server.addr();

    let (status, csv) = get(addr, "/figure/fig99");
    assert_eq!((status, csv.as_str()), (200, "threads,ops\n1,1\n"));
    let (status, svg) = get(addr, "/figure/fig99.svg");
    assert_eq!((status, svg.as_str()), (200, "<svg></svg>"));
    let (status, _) = get(addr, "/figure/no_such_figure");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/figure/..%2F..%2Fetc%2Fpasswd");
    assert_eq!(status, 400, "path traversal is rejected outright");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn concurrent_identical_computes_run_exactly_one_job() {
    let results = tmp("dedup");
    let server = start_server(&results, None);
    let addr = server.addr();
    let spec = "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_critical_int\", \"threads\": 16}";

    // 6 identical computes racing, while 6 more threads hammer /query
    // the whole time. Every /query answer must be a complete document
    // (404 before the entry lands, 200 with parseable JSON after) —
    // never a torn read.
    let computes: Vec<_> = (0..6)
        .map(|_| {
            let spec = spec.to_string();
            std::thread::spawn(move || post(addr, "/compute", &spec))
        })
        .collect();
    let queries: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut seen_hit = false;
                for _ in 0..30 {
                    let (status, body) = get(addr, "/query?kernel=omp_critical_int&threads=16");
                    match status {
                        200 => {
                            let m = measurement_of(&body);
                            syncperf_core::obs::json::parse(&m)
                                .expect("a served measurement is always complete JSON");
                            seen_hit = true;
                        }
                        404 => {}
                        other => panic!("unexpected status {other}: {body}"),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                seen_hit
            })
        })
        .collect();

    let mut bodies = Vec::new();
    for c in computes {
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200, "every racer gets an answer: {body}");
        bodies.push(measurement_of(&body));
    }
    for q in queries {
        let _ = q.join().unwrap();
    }
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "all racers see identical bytes"
    );

    // Exactly one scheduler job ran, no matter how the race resolved.
    let (_, stats) = get(addr, "/stats");
    assert!(
        stats.contains("\"computes\": 1"),
        "exactly one compute: {stats}"
    );
    assert!(
        stats.contains("\"executed\": 1"),
        "exactly one scheduler execution: {stats}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn eviction_keeps_the_cache_under_budget_and_the_index_consistent() {
    let results = tmp("evict");
    // Budget of ~2 entries (entries for these kernels run ~800 bytes).
    let server = start_server(&results, Some(2000));
    let addr = server.addr();

    for threads in [2u32, 4, 8, 16, 32] {
        let spec = format!(
            "{{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": {threads}}}"
        );
        let (status, body) = post(addr, "/compute", &spec);
        assert_eq!(status, 200, "compute at {threads} threads: {body}");
    }

    let index = server.index();
    assert!(index.is_consistent(), "index survives eviction churn");
    assert!(
        index.total_bytes() <= 2000,
        "on-disk cache respects SYNCPERF_CACHE_BYTES: {} bytes",
        index.total_bytes()
    );
    assert!(!index.is_empty(), "eviction never empties a live cache");
    let (_, stats) = get(addr, "/stats");
    let evictions: u64 = stats
        .split_once("\"evictions\": ")
        .and_then(|(_, rest)| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .expect("evictions counter in stats");
    assert!(evictions >= 3, "5 entries minus a 2-entry budget: {stats}");

    // What survives is still queryable, and what was evicted recomputes
    // cleanly rather than erroring.
    let (status, _) = get(addr, "/query?kernel=omp_barrier&threads=32");
    assert_eq!(status, 200);
    let (status, body) = post(
        addr,
        "/compute",
        "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 2}",
    );
    assert_eq!(status, 200);
    assert!(
        field(&body, "source") == "computed" || field(&body, "source") == "cache",
        "evicted entries come back on demand"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

/// Reads exactly one HTTP response off `stream` using Content-Length
/// framing (a keep-alive client can't read to EOF — the connection
/// stays open). Reads the head one byte at a time and the body with
/// `read_exact`, so it can never consume bytes belonging to the next
/// response when the server batches several into one segment.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    while !buf.ends_with(b"\r\n\r\n") {
        let mut byte = [0u8; 1];
        let n = stream.read(&mut byte).expect("read headers");
        assert!(n > 0, "connection closed before headers completed");
        buf.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&buf).to_string();
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .expect("Content-Length header");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8_lossy(&body).to_string())
}

#[test]
fn keep_alive_serves_two_requests_on_one_socket() {
    let results = tmp("keepalive");
    let server = start_server(&results, None);
    let addr = server.addr();

    // One TCP connection, two sequential requests. HTTP/1.1 without
    // `Connection: close` defaults to keep-alive, so both answers must
    // arrive on this same socket.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send first");
    let (status, head, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "first request on the socket: {body}");
    assert!(
        head.contains("Connection: keep-alive\r\n"),
        "server advertises reuse: {head}"
    );

    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send second");
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "second request reuses the socket: {body}");
    assert!(
        body.contains("\"requests\": 2"),
        "both requests were counted: {body}"
    );

    // A third request that opts out is answered and then closed: the
    // next read sees EOF.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send third");
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(
        head.contains("Connection: close\r\n"),
        "close is honored and echoed: {head}"
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain to EOF");
    assert!(rest.is_empty(), "server closed after Connection: close");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn metrics_counters_advance_across_keep_alive_requests() {
    let results = tmp("metrics");
    let server = start_server(&results, None);
    let addr = server.addr();

    // Two /metrics scrapes over one keep-alive socket. Each exposition
    // must parse losslessly, and the second must show the first scrape
    // counted — the counters advance while the connection stays open.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send first");
    let (status, head, body) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus exposition content type: {head}"
    );
    assert!(head.contains("Connection: keep-alive\r\n"));
    // Parsed snapshots carry the exposition names (dots sanitized to
    // underscores on the wire).
    let first = syncperf_core::obs::metrics::parse(&body);
    let first_requests = first.counter("serve_requests");
    let first_scrapes = first.counter("serve_endpoint_metrics_requests");

    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send second");
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    let second = syncperf_core::obs::metrics::parse(&body);
    assert_eq!(
        second.counter("serve_requests"),
        first_requests + 1,
        "the first scrape itself was counted"
    );
    assert_eq!(
        second.counter("serve_endpoint_metrics_requests"),
        first_scrapes + 1
    );
    assert!(
        second
            .histogram("serve_endpoint_metrics_latency_us")
            .count()
            >= 1,
        "scrape latency lands in the per-endpoint histogram"
    );
    // Exposition is well-formed: every sample line has a numeric value,
    // and the histogram families are typed.
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value parses: {line:?}"
        );
    }
    assert!(body.contains("# TYPE serve_latency_us histogram"));
    assert!(body.contains("serve_latency_us_bucket{le=\"+Inf\"}"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn events_endpoint_tails_the_flight_recorder_as_jsonl() {
    let results = tmp("events");
    let server = start_server(&results, None);
    let addr = server.addr();

    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/events?n=4");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "startup + requests were recorded");
    assert!(lines.len() <= 4, "n bounds the tail: {} lines", lines.len());
    let mut prev_seq = None;
    for line in &lines {
        let v = syncperf_core::obs::json::parse(line).expect("each line is one JSON object");
        let seq = v
            .get("seq")
            .and_then(syncperf_core::obs::json::Value::as_f64)
            .expect("entries carry a sequence number");
        if let Some(p) = prev_seq {
            assert!(seq > p, "tail is oldest-first by sequence");
        }
        prev_seq = Some(seq);
    }
    assert!(
        body.contains("\"cat\":\"http\""),
        "the /healthz request itself was recorded: {body}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn serve_stats_round_trip_through_snapshot() {
    let results = tmp("stats");
    let rec = syncperf_core::obs::Recorder::enabled();
    let cfg = SchedConfig::new(1)
        .with_cache_dir(results.join(".cache"))
        .with_label("serve-it-stats");
    let mut serve_cfg =
        ServeConfig::new(Arc::new(Scheduler::new(cfg)), serving::default_resolver());
    serve_cfg.addr = "127.0.0.1:0".into();
    serve_cfg.results_dir = results.clone();
    serve_cfg.recorder = rec.clone();
    let server = Server::start(serve_cfg).expect("server starts");
    let addr = server.addr();

    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _) = get(addr, "/job/0000000000000000");
    assert_eq!(status, 404);
    server.shutdown();

    let stats = ServeStats::from_snapshot(&rec.snapshot());
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.errors, 1);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn stalled_connection_is_evicted_without_blocking_others() {
    let results = tmp("slowloris");
    // A short read deadline so the test finishes quickly.
    let server = start_server_with(&results, None, |cfg| {
        cfg.request_timeout = Duration::from_millis(300);
    });
    let addr = server.addr();

    // The slowloris: connect and send nothing at all.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // A second peer drip-feeds half a request and then stalls too.
    let mut half = TcpStream::connect(addr).expect("connect");
    half.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    half.write_all(b"GET /healthz HT").expect("partial head");

    // While both are stalled, other requests sail through.
    for _ in 0..3 {
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200, "stalled peers must not block the loop");
    }

    // The deadline evicts both: the silent one reads EOF, the
    // mid-request one gets a best-effort 408 first.
    let mut rest = Vec::new();
    stalled.read_to_end(&mut rest).expect("server closes");
    assert!(rest.is_empty(), "a peer that never spoke gets no bytes");
    let mut rest = String::new();
    half.read_to_string(&mut rest).expect("server closes");
    assert!(
        rest.starts_with("HTTP/1.1 408"),
        "a mid-request stall gets 408: {rest:?}"
    );

    let (_, stats) = get(addr, "/stats");
    let timeouts: u64 = stats
        .split_once("\"timeouts\": ")
        .and_then(|(_, rest)| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .expect("timeouts counter in stats");
    assert!(timeouts >= 2, "both stalls counted: {stats}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn oversized_heads_are_rejected_with_431() {
    let results = tmp("431");
    let server = start_server(&results, None);
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // 20 KiB of header without a terminator blows the 16 KiB head cap.
    let mut raw = b"GET /healthz HTTP/1.1\r\nX-Filler: ".to_vec();
    raw.resize(20 * 1024, b'a');
    stream.write_all(&raw).expect("send oversized head");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("recv");
    assert!(
        reply.starts_with("HTTP/1.1 431"),
        "oversized head answers 431 and closes: {reply:?}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn malformed_pipelining_answers_then_closes() {
    let results = tmp("pipeline");
    let server = start_server(&results, None);
    let addr = server.addr();

    // One write carrying a valid request pipelined with garbage. The
    // valid one is answered 200; the garbage gets 400 with
    // `Connection: close`, and the socket then reads EOF — the server
    // must not try to re-interpret bytes after a framing error.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nNONSENSE VERBIAGE\r\n\r\n")
        .expect("send pipelined");
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 200, "the well-formed request is served");
    assert!(head.contains("Connection: keep-alive\r\n"));
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 400, "the garbage is rejected");
    assert!(head.contains("Connection: close\r\n"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "connection closed after the parse error");

    // Well-formed pipelining, by contrast, answers both and stays open.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /stats HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .expect("send pipelined pair");
    let (status, _, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive\r\n"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn connection_cap_sheds_load_with_503_and_retry_after() {
    let results = tmp("cap");
    let server = start_server_with(&results, None, |cfg| {
        cfg.max_connections = 2;
    });
    let addr = server.addr();

    // Fill the cap with two keep-alive connections (a served request
    // guarantees each is registered, not just queued in the backlog).
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let (status, _, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        held.push(stream);
    }

    // The third connection is shed at accept time.
    let mut extra = TcpStream::connect(addr).expect("connect");
    extra
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reply = String::new();
    extra.read_to_string(&mut reply).expect("recv rejection");
    assert!(
        reply.starts_with("HTTP/1.1 503"),
        "over-cap accept answers 503: {reply:?}"
    );
    assert!(
        reply.contains("Retry-After: 1\r\n"),
        "backpressure advertises a retry hint: {reply:?}"
    );

    // Releasing one held connection frees a slot for a newcomer.
    // Until the reactor notices the close, a probe may still be shed
    // (503, or a reset if its bytes arrive after the one-shot close)
    // — retry until one lands.
    drop(held.pop());
    let probe = |addr| -> std::io::Result<bool> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?;
        let mut reply = String::new();
        stream.read_to_string(&mut reply)?;
        Ok(reply.starts_with("HTTP/1.1 200"))
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !probe(addr).unwrap_or(false) {
        assert!(
            std::time::Instant::now() < deadline,
            "a freed slot must become usable"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_, stats) = get(addr, "/stats");
    let rejected: u64 = stats
        .split("\"rejected\": ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("stats carry the rejected counter");
    assert!(rejected >= 1, "the shed connection was counted: {stats}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn manifest_endpoint_serves_checkpoints_for_sweep_resume() {
    let results = tmp("manifest");
    let cache_dir = results.join(".cache");

    // A partial sweep: two of three jobs done, checkpointed under the
    // label a figure-regeneration run would use.
    let sched = Scheduler::new(
        SchedConfig::new(1)
            .with_cache_dir(cache_dir.clone())
            .with_label("resume-it"),
    );
    let specs = [
        ("omp_barrier", 4u32),
        ("omp_barrier", 8),
        ("omp_critical_int", 4),
    ];
    let jobs: Vec<_> = specs
        .iter()
        .map(|(kernel, threads)| {
            let req = ComputeRequest {
                executor: "cpu-sim".into(),
                kernel: (*kernel).to_string(),
                threads: *threads,
                ..ComputeRequest::default()
            };
            serving::resolve(&req).expect("resolves")
        })
        .collect();
    let mut checkpoint = syncperf_sched::Checkpoint::fresh(&cache_dir, "resume-it");
    for job in &jobs[..2] {
        let hash = sched.job_hash(job);
        sched.measure(job.clone()).expect("measure");
        checkpoint.record(hash);
    }
    checkpoint.save().expect("checkpoint saved");

    let server = start_server(&results, None);
    let addr = server.addr();

    // The manifest round-trips over HTTP and parses as the checkpoint
    // schema.
    let (status, body) = get(addr, "/manifest/resume-it");
    assert_eq!(status, 200, "manifest served: {body}");
    let v = syncperf_core::obs::json::parse(&body).expect("manifest is JSON");
    assert_eq!(
        v.get("label").and_then(|l| l.as_str()),
        Some("resume-it"),
        "label survives: {body}"
    );
    let done: Vec<String> = match v.get("done") {
        Some(syncperf_core::obs::json::Value::Array(items)) => items
            .iter()
            .filter_map(|i| i.as_str().map(str::to_string))
            .collect(),
        other => panic!("manifest carries a done array, got {other:?}"),
    };
    assert_eq!(done.len(), 2);

    // A resuming client fetches every done hash from the cache, then
    // computes only what's missing.
    for hash in &done {
        let (status, body) = get(addr, &format!("/job/{hash}"));
        assert_eq!(status, 200, "done hashes are cached: {body}");
        assert_eq!(field(&body, "source"), "cache");
    }
    let (status, body) = post(
        addr,
        "/compute",
        "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_critical_int\", \"threads\": 4}",
    );
    assert_eq!(status, 200);
    assert_eq!(
        field(&body, "source"),
        "computed",
        "the missing job is the only recompute: {body}"
    );
    let (_, stats) = get(addr, "/stats");
    assert!(
        stats.contains("\"computes\": 1"),
        "resume recomputed exactly the missing job: {stats}"
    );

    // Unknown labels 404, empty labels 400, and traversal-looking
    // labels sanitize to a plain miss rather than escaping the dir.
    let (status, _) = get(addr, "/manifest/no-such-label");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/manifest/");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/manifest/..%2F..%2Fetc%2Fpasswd");
    assert_eq!(status, 404, "traversal sanitizes to a missing label");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn replica_pair_serves_byte_identical_answers_from_a_shared_cache() {
    let results = tmp("replicas");
    // Two replicas over one cache directory, re-scanning quickly. This
    // is the in-process equivalent of `serve --replicas 2` (the bin
    // spawns child processes; each child runs exactly this server).
    let replica_a = start_server_with(&results, None, |cfg| {
        cfg.index_refresh = Duration::from_millis(50);
    });
    let replica_b = start_server_with(&results, None, |cfg| {
        cfg.index_refresh = Duration::from_millis(50);
    });

    let spec =
        "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_atomicadd_scalar_int\", \"threads\": 4}";
    let (status, body) = post(replica_a.addr(), "/compute", spec);
    assert_eq!(status, 200, "compute on replica A: {body}");
    let hash = field(&body, "hash").to_string();
    let from_a = measurement_of(&body);

    // Replica B picks the foreign write up via re-scan and serves the
    // identical bytes — without computing anything itself.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let from_b = loop {
        let (status, body) = get(replica_b.addr(), &format!("/job/{hash}"));
        if status == 200 {
            break measurement_of(&body);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replica B must index the foreign write"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(from_b, from_a, "replicas serve byte-identical answers");
    let (_, stats_b) = get(replica_b.addr(), "/stats");
    assert!(
        stats_b.contains("\"computes\": 0"),
        "B served from the shared cache: {stats_b}"
    );

    // The single-replica reference: a fresh server over the same
    // directory answers with the same bytes.
    replica_a.shutdown();
    replica_b.shutdown();
    let single = start_server(&results, None);
    let (status, body) = get(single.addr(), &format!("/job/{hash}"));
    assert_eq!(status, 200);
    assert_eq!(
        measurement_of(&body),
        from_a,
        "single-replica serving is byte-identical to the pair"
    );
    single.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn concurrent_multi_writer_computes_share_the_cache_without_tears() {
    let results = tmp("multiwriter");
    let replica_a = start_server_with(&results, None, |cfg| {
        cfg.index_refresh = Duration::from_millis(50);
    });
    let replica_b = start_server_with(&results, None, |cfg| {
        cfg.index_refresh = Duration::from_millis(50);
    });
    let addr_a = replica_a.addr();
    let addr_b = replica_b.addr();

    // Identical jobs race across both replicas (each may compute its
    // own copy — exactly-once cluster-wide is NOT guaranteed without
    // the dist coordinator), while distinct jobs land on each side.
    let identical = "{\"executor\": \"cpu-sim\", \"kernel\": \"omp_barrier\", \"threads\": 8}";
    let racers: Vec<_> = (0..6)
        .map(|i| {
            let addr = if i % 2 == 0 { addr_a } else { addr_b };
            std::thread::spawn(move || post(addr, "/compute", identical))
        })
        .collect();
    let distinct: Vec<_> = [(addr_a, 2u32), (addr_b, 4), (addr_a, 16), (addr_b, 32)]
        .into_iter()
        .map(|(addr, threads)| {
            std::thread::spawn(move || {
                let spec = format!(
                    "{{\"executor\": \"cpu-sim\", \"kernel\": \"omp_critical_int\", \"threads\": {threads}}}"
                );
                post(addr, "/compute", &spec)
            })
        })
        .collect();

    let mut identical_bodies = Vec::new();
    for r in racers {
        let (status, body) = r.join().unwrap();
        assert_eq!(status, 200, "identical racer answered: {body}");
        identical_bodies.push(measurement_of(&body));
    }
    assert!(
        identical_bodies.windows(2).all(|w| w[0] == w[1]),
        "every answer for the identical job is byte-identical cluster-wide"
    );
    for d in distinct {
        let (status, body) = d.join().unwrap();
        assert_eq!(status, 200, "distinct job answered: {body}");
    }

    // No index tears: both indexes are internally consistent, and
    // every on-disk entry decodes with its embedded hash intact.
    assert!(replica_a.index().is_consistent());
    assert!(replica_b.index().is_consistent());
    let cache = syncperf_sched::Cache::new(results.join(".cache"));
    let entries = cache.entries();
    assert!(entries.len() >= 5, "identical + 4 distinct jobs stored");
    for info in &entries {
        let text = std::fs::read_to_string(cache.entry_path(info.hash)).expect("entry reads");
        syncperf_sched::cache::decode_measurement(info.hash, &text)
            .expect("every multi-writer entry decodes cleanly");
    }

    // Once both replicas settle, the identical job's bytes match
    // through either front end.
    std::thread::sleep(Duration::from_millis(200));
    let (status, via_a) = post(addr_a, "/compute", identical);
    assert_eq!(status, 200);
    let (status, via_b) = post(addr_b, "/compute", identical);
    assert_eq!(status, 200);
    assert_eq!(measurement_of(&via_a), identical_bodies[0]);
    assert_eq!(measurement_of(&via_b), identical_bodies[0]);

    replica_a.shutdown();
    replica_b.shutdown();
    let _ = std::fs::remove_dir_all(&results);
}
