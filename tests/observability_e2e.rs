//! End-to-end observability: run real figure-style experiments with
//! recording enabled and assert the whole stack shows up in one
//! recorder — protocol retries, simulator coherence traffic, and the
//! real runtime's barrier rounds (ISSUE 1 acceptance criterion).

use syncperf_core::obs::Recorder;
use syncperf_core::{kernel, DType, ExecParams, Protocol, SYSTEM3};
use syncperf_cpu_sim::CpuSimExecutor;
use syncperf_omp::OmpExecutor;

#[test]
fn figure_experiment_with_recording_fills_cross_layer_counters() {
    let rec = Recorder::enabled();

    // Layer 1+2 — protocol over the CPU simulator: a contended atomic
    // update produces MESI transitions, and measuring a near-zero-cost
    // primitive on the jittery System 3 produces attempt rejections.
    let mut sim = CpuSimExecutor::new(&SYSTEM3).with_recorder(rec.clone());
    let p = ExecParams::new(16).with_loops(1000, 100);
    Protocol::PAPER
        .measure_observed(
            &mut sim,
            &kernel::omp_atomic_update_scalar(DType::I32),
            &p,
            &rec,
        )
        .unwrap();
    for _ in 0..5 {
        Protocol::PAPER
            .measure_observed(&mut sim, &kernel::omp_atomic_read(DType::F64), &p, &rec)
            .unwrap();
    }

    // Layer 3 — the real-thread runtime: barrier rounds are counted
    // from an actual `std::thread` team.
    let mut omp = OmpExecutor::new().with_recorder(rec.clone());
    Protocol::SIM
        .measure_observed(
            &mut omp,
            &kernel::omp_barrier(),
            &ExecParams::new(2).with_loops(20, 10).with_warmup(1),
            &rec,
        )
        .unwrap();

    let snap = rec.snapshot();
    assert!(
        snap.counter("cpu_sim.mesi_transitions") > 0,
        "contended atomics must show coherence traffic: {snap:?}"
    );
    assert!(
        snap.counter("protocol.attempts_rejected") > 0,
        "System 3 jitter must reject some attempts: {snap:?}"
    );
    assert!(
        snap.counter("omp.barrier_rounds") > 0,
        "the real runtime must count barrier rounds: {snap:?}"
    );

    // The same run must export as valid Chrome trace JSON with the
    // protocol spans present.
    let events = rec.drain_events();
    assert!(events.iter().any(|e| e.cat == "protocol"));
    assert!(events.iter().any(|e| e.cat == "cpu_sim"));
    assert!(events.iter().any(|e| e.cat == "omp"));
    let json = syncperf_core::obs::sink::chrome_trace_json(&events, &snap);
    let parsed = syncperf_core::obs::json::parse(&json).expect("valid JSON");
    assert!(
        !parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .is_empty(),
        "trace must contain events"
    );
}

#[test]
fn retry_summary_reads_back_from_the_snapshot() {
    let rec = Recorder::enabled();
    let mut sim = CpuSimExecutor::new(&SYSTEM3).with_recorder(rec.clone());
    let p = ExecParams::new(16).with_loops(1000, 100);
    for _ in 0..5 {
        Protocol::PAPER
            .measure_observed(&mut sim, &kernel::omp_atomic_read(DType::F64), &p, &rec)
            .unwrap();
    }
    let s = syncperf_core::protocol::RetrySummary::from_snapshot(&rec.snapshot());
    assert_eq!(s.runs, 45, "5 measurements x 9 runs");
    assert!(s.attempts >= s.runs);
    assert_eq!(s.rejected, s.attempts - s.runs + s.exhausted_runs);
    assert!(s.rejection_rate() > 0.0 && s.rejection_rate() < 1.0);
}
