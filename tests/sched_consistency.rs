//! End-to-end scheduler/cache consistency (ROADMAP: the `--jobs N`
//! output must be byte-identical to serial scheduler output, and the
//! cache must never serve a stale or corrupt entry).
//!
//! These tests install the process-global scheduler, so they serialize
//! on one mutex and always uninstall before releasing it.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use syncperf_sched::{install, uninstall, SchedConfig, SchedStats, Scheduler};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("syncperf-sched-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs fig01 under a scheduler with the given worker count / cache
/// dir / salt, returning the CSV bytes and the run's statistics.
fn fig01_csv(workers: usize, cache_dir: &std::path::Path, salt: u64) -> (String, SchedStats) {
    let cfg = SchedConfig::new(workers)
        .with_cache_dir(cache_dir)
        .with_label("sched-it")
        .with_salt_extra(salt);
    let sched = install(Scheduler::new(cfg));
    let figs = syncperf_bench::figures_cpu::fig01_barrier();
    let stats = sched.stats();
    uninstall();
    let figs = figs.expect("fig01 generates");
    (figs[0].to_csv(), stats)
}

#[test]
fn worker_count_does_not_change_figure_csv() {
    let _g = lock();
    let (dir1, dir4) = (tmp("w1"), tmp("w4"));
    let (csv1, s1) = fig01_csv(1, &dir1, 0);
    let (csv4, s4) = fig01_csv(4, &dir4, 0);
    // Both runs were cold (separate cache dirs): every job executed.
    assert_eq!(s1.executed, s1.jobs);
    assert_eq!(s4.executed, s4.jobs);
    assert_eq!(csv1, csv4, "1-worker and 4-worker CSVs must be identical");
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn corrupt_or_truncated_entries_force_recompute() {
    let _g = lock();
    let dir = tmp("corrupt");
    let (cold_csv, cold) = fig01_csv(2, &dir, 0);
    assert_eq!(cold.executed, cold.jobs);

    // Sanity: a clean warm run is all hits.
    let (_, warm) = fig01_csv(2, &dir, 0);
    assert_eq!(warm.cache_hits, warm.jobs);

    // Vandalize the cache: truncate half the entries, garble the rest.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty());
    for (i, path) in entries.iter().enumerate() {
        if i % 2 == 0 {
            let bytes = std::fs::read(path).unwrap();
            std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
        } else {
            std::fs::write(path, b"{not json at all").unwrap();
        }
    }

    // Every vandalized entry is a miss — recomputed, never a crash —
    // and the regenerated figure is identical.
    let (recomputed_csv, re) = fig01_csv(2, &dir, 0);
    assert_eq!(re.executed, re.jobs, "all entries were corrupt");
    assert_eq!(re.cache_hits, 0);
    assert_eq!(recomputed_csv, cold_csv);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salt_bump_invalidates_every_entry() {
    let _g = lock();
    let dir = tmp("salt");
    let (_, cold) = fig01_csv(2, &dir, 0);
    assert_eq!(cold.executed, cold.jobs);
    // Same salt: all hits. Bumped salt (a stand-in for a code-version
    // bump of `SCHED_SALT`): all misses, everything re-measured.
    let (_, warm) = fig01_csv(2, &dir, 0);
    assert_eq!(warm.cache_hits, warm.jobs);
    let (_, bumped) = fig01_csv(2, &dir, 1);
    assert_eq!(bumped.cache_hits, 0);
    assert_eq!(bumped.executed, bumped.jobs);
    let _ = std::fs::remove_dir_all(&dir);
}
