//! SARIF output is golden-pinned: the rendered log for a fixed finding
//! set must match `tests/golden/sync_lint.sarif` byte for byte. SARIF
//! consumers (GitHub code scanning, VS Code SARIF viewers) key on
//! exact field shapes, so any change to the renderer must show up as a
//! reviewed diff of the golden file.

use std::path::Path;

use syncperf::analyze::{render_sarif, BodyKind, DiagCode, Diagnostic, SarifFinding};

fn golden_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sync_lint.sarif")
}

/// The fixed finding set the golden file pins: one allowlisted
/// heuristic finding and one live explorer verdict, covering both the
/// suppression path and an op-anchored logical location.
fn fixture() -> Vec<SarifFinding> {
    vec![
        SarifFinding {
            kernel: "omp_flush_f64_s8".to_string(),
            body: BodyKind::Test,
            diagnostic: Diagnostic::new(
                DiagCode::RedundantSync,
                Some(1),
                "flush at op #1 is immediately followed by a barrier",
            ),
            allowed_reason: Some(
                "the paper's flush test measures exactly this pattern".to_string(),
            ),
        },
        SarifFinding {
            kernel: "demo_wedge".to_string(),
            body: BodyKind::Baseline,
            diagnostic: Diagnostic::new(
                DiagCode::BarrierDeadlock,
                Some(1),
                "barrier at op #1 unreachable by threads parked on lock 0",
            ),
            allowed_reason: None,
        },
    ]
}

#[test]
fn sarif_output_matches_golden_file() {
    let rendered = render_sarif(&fixture());
    if std::env::var_os("SYNCPERF_REGOLDEN").is_some() {
        std::fs::write(golden_path(), &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("tests/golden/sync_lint.sarif missing — regenerate with the fixture");
    assert_eq!(
        rendered, golden,
        "SARIF renderer drifted from tests/golden/sync_lint.sarif; if the change is \
         intentional, update the golden file and review the diff"
    );
}

#[test]
fn golden_file_is_valid_sarif_2_1_0() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file");
    assert!(golden.contains("\"version\": \"2.1.0\""));
    assert!(golden.contains("sarif-2.1.0.json"));
    // The suppression path: the allowlisted finding is emitted, marked
    // suppressed, never dropped.
    assert!(golden.contains("\"suppressions\""));
    assert!(golden.contains("\"kind\": \"external\""));
}
