//! End-to-end model-checker gates: the bounded exhaustive explorer
//! must (a) prove the whole kernel registry deadlock-free within the
//! CI time budget, (b) agree with the vector-clock replay on every
//! race verdict, (c) subsume the SL002 adjacency heuristic, and
//! (d) keep agreeing on randomly generated IR bodies.

use std::time::Instant;

use proptest::prelude::*;
use syncperf::analyze::{
    crosscheck_engines_cpu, crosscheck_engines_gpu, explore_cpu_body, explore_gpu_body,
    lint_gpu_body, DiagCode,
};
use syncperf::core::{kernel, CpuOp, DType, GpuOp, Scope, Target};
use syncperf_bench::codes::{kernel_inventory, AnyKernel};

/// Every registered instance, both bodies: the explorer must finish
/// under the state cap, prove deadlock freedom, raise none of
/// SL007–SL010, and agree with the vector-clock engine — all inside
/// the 60-second budget ISSUE.md pins for the registry sweep.
#[test]
fn registry_explores_clean_and_engines_agree() {
    let started = Instant::now();
    let mut bodies = 0usize;
    for inst in kernel_inventory() {
        let name = inst.kernel.name();
        match &inst.kernel {
            AnyKernel::Cpu(k) => {
                for body in [&k.baseline, &k.test] {
                    bodies += 1;
                    let report = explore_cpu_body(body);
                    assert!(report.stats.complete, "{name}: state cap hit");
                    assert!(report.deadlock_free, "{name}: not deadlock free");
                    assert!(
                        report.diagnostics.is_empty(),
                        "{name}: unexpected explorer findings {:?}",
                        report.diagnostics
                    );
                    let agreement = crosscheck_engines_cpu(body);
                    assert!(agreement.holds(), "{name}: {}", agreement.explain());
                }
            }
            AnyKernel::Gpu(k) => {
                for body in [&k.baseline, &k.test] {
                    bodies += 1;
                    let report = explore_gpu_body(body);
                    assert!(report.stats.complete, "{name}: bound hit");
                    assert!(report.deadlock_free, "{name}: not deadlock free");
                    assert!(
                        report.diagnostics.is_empty(),
                        "{name}: unexpected explorer findings {:?}",
                        report.diagnostics
                    );
                    let agreement = crosscheck_engines_gpu(body);
                    assert!(agreement.holds(), "{name}: {}", agreement.explain());
                }
            }
        }
    }
    assert!(bodies >= 192, "registry shrank: {bodies} bodies");
    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs() < 60,
        "registry exploration took {elapsed:?} (budget 60 s)"
    );
}

/// Wherever the adjacency heuristic fires, the path-sensitive verdict
/// must fire too (the converse is deliberately false — see the
/// regression test below).
#[test]
fn sl002_hits_are_subsumed_by_sl007() {
    for inst in kernel_inventory() {
        let AnyKernel::Gpu(k) = &inst.kernel else {
            continue;
        };
        for body in [&k.baseline, &k.test] {
            let lint_hit = lint_gpu_body(body)
                .iter()
                .any(|d| d.code == DiagCode::BarrierDivergence);
            if lint_hit {
                let explored = explore_gpu_body(body);
                assert!(
                    explored
                        .diagnostics
                        .iter()
                        .any(|d| d.code == DiagCode::BarrierDeadlock),
                    "{}: SL002 fired but explorer saw no SL007",
                    inst.kernel.name()
                );
            }
        }
    }
}

/// SL002's false-negative window: a barrier two ops downstream of the
/// divergence. The adjacency heuristic misses it; the explorer does
/// not. (`cuda_divergent_barrier` is the non-registry regression
/// factory added for exactly this case.)
#[test]
fn explorer_closes_the_sl002_adjacency_window() {
    let k = kernel::cuda_divergent_barrier(DType::I32, 2);
    assert!(
        !lint_gpu_body(&k.test)
            .iter()
            .any(|d| d.code == DiagCode::BarrierDivergence),
        "the regression body must sit outside SL002's adjacency window"
    );
    let report = explore_gpu_body(&k.test);
    assert!(!report.deadlock_free);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::BarrierDeadlock));
    // The baseline (no barrier after the divergence) stays clean.
    let baseline = explore_gpu_body(&k.baseline);
    assert!(baseline.deadlock_free);
    assert!(baseline.diagnostics.is_empty());
}

/// The deadlock oracle: three hand-written wedging bodies, each with a
/// distinct wedge shape, must each produce the right diagnostic.
#[test]
fn deadlock_oracle() {
    // A barrier inside a critical section: the lock holder parks at
    // the barrier, everyone else parks on the lock → SL007.
    let barrier_in_critical = [
        CpuOp::CriticalBegin { lock: 0 },
        CpuOp::Barrier,
        CpuOp::CriticalEnd { lock: 0 },
    ];
    let report = explore_cpu_body(&barrier_in_critical);
    assert!(!report.deadlock_free);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::BarrierDeadlock));

    // An unreleased lock wedges every other thread at the acquire.
    let unreleased = [
        CpuOp::CriticalBegin { lock: 0 },
        CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        },
    ];
    let report = explore_cpu_body(&unreleased);
    assert!(!report.deadlock_free);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::LockCycle));

    // Hand-over-hand locking that wraps across iterations: classic
    // AB/BA order inversion → SL008.
    let hand_over_hand = [
        CpuOp::CriticalBegin { lock: 0 },
        CpuOp::CriticalBegin { lock: 1 },
        CpuOp::CriticalEnd { lock: 0 },
    ];
    let report = explore_cpu_body(&hand_over_hand);
    assert!(!report.deadlock_free);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::LockCycle));
}

/// Op pools for the random-body generators. The race-agreement pool
/// excludes explicit critical brackets so every generated body is
/// deadlock-free by construction and the agreement check is never
/// vacuous.
const CPU_RACE_POOL: [CpuOp; 8] = [
    CpuOp::Barrier,
    CpuOp::Flush,
    CpuOp::Read {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::Update {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::AtomicUpdate {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::AtomicWrite {
        dtype: DType::U64,
        target: Target::SHARED2,
    },
    CpuOp::AtomicRead {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    CpuOp::CriticalAdd {
        dtype: DType::F64,
        target: Target::SHARED,
    },
];

/// Extension ops for the robustness pool: balanced and unbalanced
/// critical brackets, so generated bodies may wedge.
const CPU_LOCK_POOL: [CpuOp; 4] = [
    CpuOp::CriticalBegin { lock: 0 },
    CpuOp::CriticalEnd { lock: 0 },
    CpuOp::CriticalBegin { lock: 1 },
    CpuOp::CriticalEnd { lock: 1 },
];

const GPU_POOL: [GpuOp; 8] = [
    GpuOp::SyncThreads,
    GpuOp::SyncWarp,
    GpuOp::Read {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    GpuOp::Update {
        dtype: DType::I32,
        target: Target::SHARED,
    },
    GpuOp::AtomicAdd {
        dtype: DType::I32,
        scope: Scope::Device,
        target: Target::SHARED,
    },
    GpuOp::ThreadFence {
        scope: Scope::Device,
    },
    GpuOp::Alu { dtype: DType::I32 },
    GpuOp::Diverge {
        dtype: DType::I32,
        paths: 2,
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random deadlock-free CPU bodies: the explorer's race verdict
    /// must match the vector-clock replay's, location for location.
    #[test]
    fn random_cpu_bodies_race_verdicts_agree(
        picks in prop::collection::vec(0usize..CPU_RACE_POOL.len(), 1..6)
    ) {
        let body: Vec<CpuOp> = picks.iter().map(|&i| CPU_RACE_POOL[i]).collect();
        let report = explore_cpu_body(&body);
        prop_assert!(report.deadlock_free);
        prop_assert!(report.stats.complete);
        let agreement = crosscheck_engines_cpu(&body);
        prop_assert!(agreement.holds(), "{}: {}", body.len(), agreement.explain());
    }

    /// Random GPU bodies (divergence included): whenever the bounded
    /// exploration completes and finds no deadlock, the race verdicts
    /// must agree.
    #[test]
    fn random_gpu_bodies_race_verdicts_agree(
        picks in prop::collection::vec(0usize..GPU_POOL.len(), 1..6)
    ) {
        let body: Vec<GpuOp> = picks.iter().map(|&i| GPU_POOL[i]).collect();
        let agreement = crosscheck_engines_gpu(&body);
        prop_assert!(agreement.holds(), "{}", agreement.explain());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Robustness: bodies drawn from the full pool (unbalanced critical
    /// brackets allowed) must never panic or blow the state cap into an
    /// inconsistent verdict — agreement is checked whenever it is not
    /// vacuous, and wedged bodies must carry a deadlock diagnostic.
    #[test]
    fn random_lock_bodies_are_classified_soundly(
        picks in prop::collection::vec(0usize..(CPU_RACE_POOL.len() + CPU_LOCK_POOL.len()), 1..6)
    ) {
        let body: Vec<CpuOp> = picks
            .iter()
            .map(|&i| {
                if i < CPU_RACE_POOL.len() {
                    CPU_RACE_POOL[i]
                } else {
                    CPU_LOCK_POOL[i - CPU_RACE_POOL.len()]
                }
            })
            .collect();
        let report = explore_cpu_body(&body);
        if !report.deadlock_free {
            prop_assert!(
                report.diagnostics.iter().any(|d| matches!(
                    d.code,
                    DiagCode::BarrierDeadlock | DiagCode::LockCycle
                )),
                "wedged body without a deadlock diagnostic: {body:?}"
            );
        }
        let agreement = crosscheck_engines_cpu(&body);
        prop_assert!(agreement.holds(), "{}", agreement.explain());
    }
}
