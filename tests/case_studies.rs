//! Integration tests of the whole-program case studies through the
//! public facade: the paper's recommendations must decide the winners.

use syncperf::core::Affinity;
use syncperf::cpu_sim::{simulate_cpu_reduction, CpuModel, CpuReductionStrategy, Placement};
use syncperf::gpu_sim::{
    simulate_histogram, simulate_scan, GpuModel, HistogramConfig, HistogramStrategy, ScanConfig,
    ScanStrategy,
};
use syncperf::prelude::*;

#[test]
fn cpu_sum_strategies_ordered_by_recommendations() {
    let model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    let total = |s| {
        simulate_cpu_reduction(&model, &placement, s, 1 << 20)
            .unwrap()
            .total_ns
    };
    let critical = total(CpuReductionStrategy::CriticalSection);
    let atomic = total(CpuReductionStrategy::SharedAtomic);
    let false_shared = total(CpuReductionStrategy::FalseSharedPartials);
    let padded = total(CpuReductionStrategy::PaddedPartials);
    assert!(
        critical > atomic,
        "rec 5: critical sections are the last resort"
    );
    assert!(atomic > false_shared, "rec 2: avoid same-location atomics");
    assert!(false_shared > padded, "rec 3: avoid false sharing");
    assert!(
        critical / padded > 50.0,
        "the strategy gap is large: {:.0}x",
        critical / padded
    );
}

#[test]
fn cpu_sum_consistent_across_all_three_systems() {
    for sys in syncperf::core::all_systems() {
        let model = CpuModel::for_system(&sys.cpu, sys.cpu_jitter);
        let placement = Placement::new(&sys.cpu, Affinity::Spread, sys.cpu.total_cores());
        let mut last = f64::MAX;
        for s in CpuReductionStrategy::ALL {
            let t = simulate_cpu_reduction(&model, &placement, s, 1 << 18)
                .unwrap()
                .total_ns;
            assert!(
                t < last,
                "{}: {:?} must improve on the previous strategy",
                sys,
                s
            );
            last = t;
        }
    }
}

#[test]
fn histogram_crossover_depends_on_regime() {
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    // Skewed, large input: privatized wins.
    let skewed = HistogramConfig {
        elements: 1 << 22,
        bins: 256,
        hot_fraction: 0.4,
        block_size: 256,
        blocks: SYSTEM3.gpu.sms * 4,
    };
    let g =
        simulate_histogram(&m, &SYSTEM3.gpu, HistogramStrategy::GlobalAtomics, &skewed).unwrap();
    let p = simulate_histogram(
        &m,
        &SYSTEM3.gpu,
        HistogramStrategy::SharedPrivatized,
        &skewed,
    )
    .unwrap();
    assert!(p.total_cycles < g.total_cycles);
    // Tiny uniform input with a huge bin space: the merge dominates and
    // global atomics win — strategy choice is regime-dependent.
    let merge_bound = HistogramConfig {
        elements: 1 << 13,
        bins: 1 << 17,
        hot_fraction: 0.0,
        block_size: 256,
        blocks: SYSTEM3.gpu.sms * 4,
    };
    let g2 = simulate_histogram(
        &m,
        &SYSTEM3.gpu,
        HistogramStrategy::GlobalAtomics,
        &merge_bound,
    )
    .unwrap();
    let p2 = simulate_histogram(
        &m,
        &SYSTEM3.gpu,
        HistogramStrategy::SharedPrivatized,
        &merge_bound,
    )
    .unwrap();
    assert!(g2.total_cycles < p2.total_cycles);
}

#[test]
fn scan_lookback_beats_twopass_at_scale_on_every_gpu() {
    for sys in syncperf::core::all_systems() {
        let m = GpuModel::for_spec(&sys.gpu);
        let cfg = ScanConfig {
            elements: 1 << 25,
            block_size: 256,
        };
        let two = simulate_scan(&m, &sys.gpu, ScanStrategy::TwoPass, &cfg).unwrap();
        let look = simulate_scan(&m, &sys.gpu, ScanStrategy::DecoupledLookback, &cfg).unwrap();
        assert!(
            look.total_cycles < two.total_cycles,
            "{}: one data pass must beat three",
            sys
        );
    }
}

#[test]
fn scan_fence_chain_visible_in_breakdown() {
    // The look-back coordination is built from device fences — its cost
    // must scale with the device fence cost.
    let mut cheap_fence = GpuModel::for_spec(&SYSTEM3.gpu);
    cheap_fence.fence_device_cy = 10.0;
    let mut dear_fence = GpuModel::for_spec(&SYSTEM3.gpu);
    dear_fence.fence_device_cy = 2_500.0;
    let cfg = ScanConfig {
        elements: 1 << 22,
        block_size: 256,
    };
    let cheap = simulate_scan(
        &cheap_fence,
        &SYSTEM3.gpu,
        ScanStrategy::DecoupledLookback,
        &cfg,
    )
    .unwrap();
    let dear = simulate_scan(
        &dear_fence,
        &SYSTEM3.gpu,
        ScanStrategy::DecoupledLookback,
        &cfg,
    )
    .unwrap();
    assert!(dear.coordination_cycles > cheap.coordination_cycles);
    // The two-pass scan uses no fences: immune.
    let t_cheap = simulate_scan(&cheap_fence, &SYSTEM3.gpu, ScanStrategy::TwoPass, &cfg).unwrap();
    let t_dear = simulate_scan(&dear_fence, &SYSTEM3.gpu, ScanStrategy::TwoPass, &cfg).unwrap();
    assert_eq!(t_cheap.coordination_cycles, t_dear.coordination_cycles);
}

#[test]
fn explain_totals_match_measured_per_op_costs() {
    // The explanation layer and the measurement protocol must tell the
    // same story end to end (cpu side).
    let model = CpuModel::for_system(&SYSTEM3.cpu, 0.0); // no jitter
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 8);
    let k = kernel::omp_atomic_update_scalar(DType::I32);
    let explained = syncperf::cpu_sim::explain_op(&model, &placement, &k.baseline, 0, 0).total_ns();

    let mut sim = syncperf::cpu_sim::CpuSimExecutor::with_model(&SYSTEM3, model);
    let m = Protocol::SIM
        .measure(&mut sim, &k, &ExecParams::new(8).with_loops(500, 50))
        .unwrap();
    let measured_ns = m.runtime_seconds() * 1e9;
    assert!(
        (explained - measured_ns).abs() < 0.02 * measured_ns,
        "explain {explained} ns vs protocol {measured_ns} ns"
    );
}
