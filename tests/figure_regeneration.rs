//! End-to-end regeneration: every figure generator produces well-formed
//! data, ids are unique, and CSVs round-trip to disk.

use syncperf_bench::{all_figures, common, tables};
use syncperf_core::SYSTEM3;

#[test]
fn every_figure_regenerates_with_unique_ids_and_full_series() {
    let figs = all_figures().expect("all generators succeed");
    // 1 + 1 + 4 + 2 + 1 + 4 + 1 (CPU) + 1 + 2 + 2 + 4 + 2 + 4 + 2 + 4 + 2 + 1 + 1 (GPU)
    assert_eq!(figs.len(), 42, "expected 42 figure panels");
    let mut ids: Vec<&str> = figs.iter().map(|f| f.id.as_str()).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "figure ids must be unique");

    for fig in &figs {
        assert!(!fig.series.is_empty(), "{}: no series", fig.id);
        for s in &fig.series {
            assert!(!s.points.is_empty(), "{}/{}: empty series", fig.id, s.label);
            for &(x, y) in &s.points {
                assert!(x.is_finite() && y.is_finite(), "{}/{}", fig.id, s.label);
                assert!(y >= 0.0, "{}/{}: negative throughput", fig.id, s.label);
            }
            // Points sorted by x.
            for w in s.points.windows(2) {
                assert!(w[0].0 < w[1].0, "{}/{}: x not ascending", fig.id, s.label);
            }
        }
        // CSV renders and has a data row per x.
        let csv = fig.to_csv();
        assert!(csv.lines().count() > 1, "{}: empty csv", fig.id);
        // Table and chart render without panicking.
        let _ = fig.render_table();
        let _ = fig.render_ascii(60, 10);
    }
}

#[test]
fn csvs_written_to_results_dir() {
    let dir = std::env::temp_dir().join(format!("syncperf_results_{}", std::process::id()));
    let figs = syncperf_bench::figures_cpu::fig01_barrier().unwrap();
    for f in &figs {
        f.write_csv(&dir).unwrap();
    }
    let written = std::fs::read_to_string(dir.join("fig01.csv")).unwrap();
    assert!(written.starts_with("threads,barrier"));
    assert_eq!(written.lines().count(), 32); // header + 31 thread counts
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gpu_figures_use_log_x_cpu_figures_do_not() {
    let figs = all_figures().unwrap();
    for fig in &figs {
        if fig.id.starts_with("fig0")
            && !fig.id.starts_with("fig07")
            && !fig.id.starts_with("fig08")
            && !fig.id.starts_with("fig09")
        {
            assert!(!fig.log_x, "{} is a CPU figure (linear x)", fig.id);
        }
        if fig.id.starts_with("fig1") || fig.id.starts_with("fig07") {
            assert!(fig.log_x, "{} is a GPU figure (log x)", fig.id);
        }
    }
}

#[test]
fn table1_and_listing1_reports_render() {
    let t1 = tables::table1();
    assert!(t1.contains("TABLE I"));
    let l1 = tables::listing1_report(&SYSTEM3).unwrap();
    assert!(l1.contains("R5 < R3 < R4 < R1 < R2"));
}

#[test]
fn results_dir_override_respected() {
    // SYNCPERF_RESULTS drives where the harness writes.
    std::env::set_var("SYNCPERF_RESULTS", "/tmp/syncperf_override_test");
    assert_eq!(
        common::results_dir(),
        std::path::PathBuf::from("/tmp/syncperf_override_test")
    );
    std::env::remove_var("SYNCPERF_RESULTS");
    assert_eq!(common::results_dir(), std::path::PathBuf::from("results"));
}
