//! Analyzer-documentation consistency: the diagnostic codes and the
//! allowlist promised by docs/ANALYSIS.md must match the code, in the
//! spirit of `docs_consistency.rs`.

use std::collections::BTreeSet;
use std::path::Path;

use syncperf::analyze::{DiagCode, Severity, BUILTIN_ALLOWLIST};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(repo_root().join(rel)).unwrap_or_else(|e| panic!("missing {rel}: {e}"))
}

#[test]
fn diagnostic_codes_unique_and_well_formed() {
    let mut seen = BTreeSet::new();
    for code in DiagCode::ALL {
        let c = code.code();
        assert!(
            c.len() == 5 && c.starts_with("SL") && c[2..].chars().all(|ch| ch.is_ascii_digit()),
            "malformed code {c}"
        );
        assert!(seen.insert(c), "duplicate diagnostic code {c}");
        assert!(!code.title().is_empty(), "{c} has no title");
    }
    assert_eq!(seen.len(), DiagCode::ALL.len());
}

#[test]
fn every_diagnostic_code_documented_in_analysis_md() {
    let doc = read("docs/ANALYSIS.md");
    for code in DiagCode::ALL {
        assert!(
            doc.contains(&format!("`{}`", code.code())),
            "docs/ANALYSIS.md does not document {}",
            code.code()
        );
        assert!(
            doc.contains(code.title()),
            "docs/ANALYSIS.md does not mention the title of {} ({:?})",
            code.code(),
            code.title()
        );
    }
}

#[test]
fn documented_severity_split_matches_code() {
    // docs/ANALYSIS.md promises: SL001-SL003 and the explorer's
    // SL007-SL009 are errors, SL004-SL005 and SL010 warnings, SL006
    // info.
    for code in DiagCode::ALL {
        let expected = match code.code() {
            "SL001" | "SL002" | "SL003" | "SL007" | "SL008" | "SL009" => Severity::Error,
            "SL004" | "SL005" | "SL010" => Severity::Warning,
            _ => Severity::Info,
        };
        assert_eq!(
            code.severity(),
            expected,
            "{} severity drifted",
            code.code()
        );
    }
}

#[test]
fn every_allowlist_entry_documented_in_analysis_md() {
    let doc = read("docs/ANALYSIS.md");
    for entry in BUILTIN_ALLOWLIST {
        assert!(
            doc.contains(entry.kernel_glob),
            "allowlist glob {:?} ({}) is not documented in docs/ANALYSIS.md",
            entry.kernel_glob,
            entry.code.code()
        );
        assert!(!entry.reason.is_empty(), "allowlist entry without a reason");
    }
}

#[test]
fn analysis_md_linked_from_readme_and_design() {
    assert!(read("README.md").contains("docs/ANALYSIS.md"));
    let design = read("DESIGN.md");
    assert!(design.contains("docs/ANALYSIS.md"));
    assert!(design.contains("syncperf-analyze"));
}

#[test]
fn ci_gate_runs_sync_lint() {
    assert!(
        read("ci.sh").contains("sync_lint"),
        "ci.sh must run the sync_lint gate"
    );
}
