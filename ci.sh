#!/usr/bin/env bash
# Full offline CI gate: everything here must pass with no network access.
# All dependencies are local path crates, so --offline is safe everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --release --offline --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace --release --offline -q

echo "CI green"
