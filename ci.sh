#!/usr/bin/env bash
# Full offline CI gate: everything here must pass with no network access.
# All dependencies are local path crates, so --offline is safe everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --release --offline --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace --release --offline -q

# Static sync-lint + race-detector cross-check over every registered
# kernel (docs/ANALYSIS.md). Exits nonzero on any non-allowlisted
# diagnostic or static/dynamic disagreement; the JSON report is
# uploaded as a CI artifact.
echo "==> sync_lint all"
cargo run --release --offline -p syncperf-bench --bin sync_lint -- \
  all --format json --out sync_lint_report.json

# Scheduler warm-cache gate (docs/SCHEDULER.md): regenerate every
# figure twice with 2 workers into a fresh results dir. The second run
# must be served almost entirely from the content-addressed cache —
# anything under 95% means job hashing went unstable.
echo "==> scheduler warm-cache gate"
rm -rf ci_sched_results
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin all_figures -- --jobs 2 --cache-stats cache_stats_cold.json > /dev/null
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin all_figures -- --jobs 2 --cache-stats cache_stats_warm.json > /dev/null
hit=$(sed -n 's/.*"hit_rate":\([0-9.]*\).*/\1/p' cache_stats_warm.json)
echo "warm-run cache hit rate: ${hit}"
awk -v h="$hit" 'BEGIN { exit (h >= 0.95) ? 0 : 1 }' || {
  echo "warm-cache hit rate ${hit} is below 0.95"; exit 1; }
rm -rf ci_sched_results

echo "CI green"
