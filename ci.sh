#!/usr/bin/env bash
# Full offline CI gate: everything here must pass with no network access.
# All dependencies are local path crates, so --offline is safe everywhere.
set -euo pipefail
cd "$(dirname "$0")"

# Best-effort sanitizer lane (docs/ANALYSIS.md): SYNCPERF_SANITIZE=1
# runs the concurrency-heavy crates under ThreadSanitizer when a
# nightly toolchain with -Zbuild-std is available, falling back to
# Miri, and skips cleanly when neither exists. Non-blocking by design:
# the workflow job that sets this is continue-on-error.
if [ "${SYNCPERF_SANITIZE:-0}" = "1" ]; then
  san_crates=(-p syncperf-omp -p syncperf-obs -p syncperf-sched)
  if rustup toolchain list 2>/dev/null | grep -q nightly \
      && rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
    echo "==> sanitizer lane: ThreadSanitizer (nightly)"
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test --offline -q \
      -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
      "${san_crates[@]}" || echo "tsan lane reported failures (non-blocking)"
  elif rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri (installed)'; then
    echo "==> sanitizer lane: Miri (nightly)"
    cargo +nightly miri test --offline -q "${san_crates[@]}" \
      || echo "miri lane reported failures (non-blocking)"
  else
    echo "==> sanitizer lane: no nightly tsan/miri toolchain available, skipping"
  fi
  exit 0
fi

# Polls a background service's log for its ready line(s) and echoes
# the captured values (e.g. bound addresses), one per line. Every
# smoke service below binds port 0 and prints where it landed, so
# concurrent lanes in one CI job can never collide on a port — the
# only thing worth waiting for is the ready line itself. An optional
# third argument waits for that many matches (a `--replicas N` fleet
# prints one ready line per replica).
wait_for_ready() { # wait_for_ready <logfile> <sed-capture-pattern> [count]
  local log="$1" pat="$2" want="${3:-1}" got="" n=0
  for _ in $(seq 1 150); do
    got=$(sed -n "$pat" "$log" 2>/dev/null | head -n "$want")
    n=$(printf '%s' "$got" | grep -c . || true)
    if [ "$n" -ge "$want" ]; then
      printf '%s' "$got"
      return 0
    fi
    sleep 0.2
  done
  return 1
}

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --release --offline --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace --release --offline -q

# Criterion smoke run (docs/PERFORMANCE.md): every benchmark body must
# still execute; SYNCPERF_BENCH_QUICK clamps the budgets so this takes
# seconds, not minutes. The numbers are not comparison-grade.
echo "==> criterion smoke benches"
SYNCPERF_BENCH_QUICK=1 cargo bench --offline -p syncperf-bench > /dev/null

# Tracked macro-benchmark (docs/PERFORMANCE.md): a cold
# `all_figures --jobs 2` must stay within 25% of the committed
# BENCH_syncperf.json number.
echo "==> bench_report --check"
cargo run --release --offline -p syncperf-bench --bin bench_report -- --check

# Tracked distributed benchmark (docs/DISTRIBUTED.md): cold
# `all_figures` with 3 worker processes must stay within 25% of the
# committed BENCH_dist.json number (and is re-measured against
# `--jobs 3` threads each run).
echo "==> syncperf_dist bench --check"
cargo run --release --offline -p syncperf-bench --bin syncperf_dist -- bench --check

# Static sync-lint + race-detector cross-check + bounded model checker
# over every registered kernel (docs/ANALYSIS.md). Exits nonzero on any
# non-allowlisted diagnostic or engine disagreement (static/dynamic,
# explorer/vector-clock, or simulator); the JSON report carries
# per-kernel exploration stats (states, branches, micros) and is
# uploaded as a CI artifact alongside the SARIF form.
echo "==> sync_lint all (both engines)"
mkdir -p results
cargo run --release --offline -p syncperf-bench --bin sync_lint -- \
  all --engine both --format json --out results/sync_lint_report.json
cargo run --release --offline -p syncperf-bench --bin sync_lint -- \
  all --engine both --format sarif --out results/sync_lint_report.sarif > /dev/null
echo "exploration stats:"
python3 - << 'PYEOF' || true
import json
d = json.load(open("results/sync_lint_report.json"))
ex = d["exploration"]
states = sum(e["states"] for e in ex)
micros = sum(e["micros"] for e in ex)
slowest = max(ex, key=lambda e: e["micros"])
print(f'  {len(ex)} bodies, {states} states, {micros/1000:.1f} ms total; '
      f'slowest {slowest["kernel"]} ({slowest["body"]}): {slowest["micros"]} us')
PYEOF

# Scheduler warm-cache gate (docs/SCHEDULER.md): regenerate every
# figure twice with 2 workers into a fresh results dir. The second run
# must be served almost entirely from the content-addressed cache —
# anything under 95% means job hashing went unstable.
echo "==> scheduler warm-cache gate"
rm -rf ci_sched_results
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin all_figures -- --jobs 2 --cache-stats results/cache_stats_cold.json > /dev/null
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin all_figures -- --jobs 2 --cache-stats results/cache_stats_warm.json > /dev/null
hit=$(sed -n 's/.*"hit_rate":\([0-9.]*\).*/\1/p' results/cache_stats_warm.json)
echo "warm-run cache hit rate: ${hit}"
awk -v h="$hit" 'BEGIN { exit (h >= 0.95) ? 0 : 1 }' || {
  echo "warm-cache hit rate ${hit} is below 0.95"; exit 1; }

# The same gate over the sensitivity grid: hundreds of perturbed-model
# jobs whose hashes fold in each perturbed model's digest. A warm
# second run under 95% means model-digest hashing went unstable.
echo "==> sensitivity warm-cache gate"
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin sensitivity_analysis -- --jobs 2 \
  --cache-stats results/cache_stats_sensitivity_cold.json > /dev/null
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin sensitivity_analysis -- --jobs 2 \
  --cache-stats results/cache_stats_sensitivity_warm.json > /dev/null
sens_hit=$(sed -n 's/.*"hit_rate":\([0-9.]*\).*/\1/p' results/cache_stats_sensitivity_warm.json)
echo "sensitivity warm-run cache hit rate: ${sens_hit}"
awk -v h="$sens_hit" 'BEGIN { exit (h >= 0.95) ? 0 : 1 }' || {
  echo "sensitivity warm-cache hit rate ${sens_hit} is below 0.95"; exit 1; }

# The same gate over the artifact `launch` sweeps (ROADMAP: warm-cache
# gate breadth), run against the batched plan-table path: the cold run
# takes no --cache-stats, so no global recorder is installed and the
# scheduler batch-primes every same-shape sweep group (observed runs
# fall back to the interpreter). The warm run must then be >=95% cache
# hits — proving the batched path produced and keyed the exact entries
# the plain path would have.
echo "==> launch warm-cache gate (batched cold pass)"
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin launch -- omp_barrier cuda_shfl --yes --jobs 2 > /dev/null
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin launch -- omp_barrier cuda_shfl --yes --jobs 2 \
  --cache-stats results/cache_stats_launch_warm.json > /dev/null
launch_hit=$(sed -n 's/.*"hit_rate":\([0-9.]*\).*/\1/p' results/cache_stats_launch_warm.json)
echo "launch warm-run cache hit rate: ${launch_hit}"
awk -v h="$launch_hit" 'BEGIN { exit (h >= 0.95) ? 0 : 1 }' || {
  echo "launch warm-cache hit rate ${launch_hit} is below 0.95"; exit 1; }

# Serve smoke test (docs/SERVING.md): launch the query service over
# the warm cache the gates above just filled, hit every read endpoint
# plus a 404, prove the answers came from the cache without any
# recomputation (serve.cache_hits > 0, serve.computes == 0), and shut
# down gracefully over the wire.
echo "==> serve smoke test"
rm -f serve_out.log
SYNCPERF_RESULTS=ci_sched_results cargo run --release --offline -p syncperf-bench \
  --bin serve -- --addr 127.0.0.1:0 --workers 2 --jobs 1 > serve_out.log &
serve_pid=$!
addr=$(wait_for_ready serve_out.log 's#^listening on http://##p') \
  || { echo "serve did not come up"; cat serve_out.log; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "serve is up on ${addr}"

curl -fsS "http://${addr}/healthz" > /dev/null
query=$(curl -fsS "http://${addr}/query?kernel=omp_barrier&threads=8")
hash=$(printf '%s' "$query" | sed -n 's/.*"hash": "\([0-9a-f]\{16\}\)".*/\1/p' | head -n 1)
[ -n "$hash" ] || { echo "/query returned no hash: ${query}"; kill "$serve_pid" 2>/dev/null; exit 1; }
curl -fsS "http://${addr}/job/${hash}" > /dev/null
curl -fsS "http://${addr}/figure/fig01" | head -n 1 > /dev/null
curl -fsS "http://${addr}/figure/fig01.svg" > /dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' "http://${addr}/job/0000000000000000")
[ "$code" = "404" ] || { echo "expected 404 for an unknown job, got ${code}"; kill "$serve_pid" 2>/dev/null; exit 1; }

stats=$(curl -fsS "http://${addr}/stats")
echo "serve stats: ${stats}"
serve_hits=$(printf '%s' "$stats" | sed -n 's/.*"cache_hits": \([0-9]*\).*/\1/p' | head -n 1)
serve_computes=$(printf '%s' "$stats" | sed -n 's/.*"computes": \([0-9]*\).*/\1/p' | head -n 1)
[ "${serve_hits:-0}" -ge 2 ] || { echo "serve answered without cache hits"; kill "$serve_pid" 2>/dev/null; exit 1; }
[ "${serve_computes:-1}" -eq 0 ] || { echo "serve recomputed a warm entry"; kill "$serve_pid" 2>/dev/null; exit 1; }

# Telemetry plane (docs/OBSERVABILITY.md): scrape /metrics, assert the
# exposition is well-formed with nonzero request counters, tail the
# flight recorder, and keep both as workflow artifacts.
curl -fsS "http://${addr}/metrics" > results/serve_metrics.prom
grep -q '^# TYPE serve_requests counter$' results/serve_metrics.prom || {
  echo "exposition is missing its TYPE lines"; kill "$serve_pid" 2>/dev/null; exit 1; }
grep -q '^# TYPE serve_latency_us histogram$' results/serve_metrics.prom || {
  echo "exposition is missing the latency histogram"; kill "$serve_pid" 2>/dev/null; exit 1; }
grep -q 'serve_latency_us_bucket{le="+Inf"}' results/serve_metrics.prom || {
  echo "exposition is missing the +Inf bucket"; kill "$serve_pid" 2>/dev/null; exit 1; }
metrics_requests=$(sed -n 's/^serve_requests \([0-9]*\)$/\1/p' results/serve_metrics.prom)
[ "${metrics_requests:-0}" -ge 1 ] || {
  echo "serve_requests counter is zero in /metrics"; kill "$serve_pid" 2>/dev/null; exit 1; }
awk '!/^#/ && NF { if ($NF !~ /^[0-9.]+$/) { print "bad sample line: " $0; exit 1 } }' \
  results/serve_metrics.prom || { kill "$serve_pid" 2>/dev/null; exit 1; }
curl -fsS "http://${addr}/events?n=50" > results/serve_events_tail.jsonl
grep -q '"cat":"http"' results/serve_events_tail.jsonl || {
  echo "flight recorder did not record the requests"; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "telemetry snapshot: results/serve_metrics.prom ($(wc -l < results/serve_metrics.prom) lines), flight tail: $(wc -l < results/serve_events_tail.jsonl) events"

curl -fsS -X POST "http://${addr}/shutdown" > /dev/null
for _ in $(seq 1 100); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "serve did not shut down gracefully"; kill -9 "$serve_pid"; exit 1
fi
wait "$serve_pid" || { echo "serve exited nonzero"; exit 1; }
grep -q "shut down cleanly" serve_out.log || { echo "serve missed its clean-exit line"; exit 1; }
rm -f serve_out.log
rm -rf ci_sched_results

# Serving load lane (docs/SERVING.md): a real two-replica fleet over
# one shared cache, warmed over HTTP by the harness, then driven by
# `syncperf_load bench --quick --check` and gated against the
# committed BENCH_serve.json baseline. The measured load report and
# the replicas' SIGTERM flight-recorder dumps become workflow
# artifacts.
echo "==> serve load lane (replica pair + syncperf_load --check)"
rm -rf ci_load_results load_serve_out.log
mkdir -p ci_load_results
SYNCPERF_RESULTS=ci_load_results cargo run --release --offline -p syncperf-bench \
  --bin serve -- --addr 127.0.0.1:0 --workers 2 --jobs 2 --replicas 2 > load_serve_out.log &
load_pid=$!
addrs=$(wait_for_ready load_serve_out.log 's#^listening on http://##p' 2) \
  || { echo "replica fleet did not come up"; cat load_serve_out.log; kill "$load_pid" 2>/dev/null; exit 1; }
echo "replica fleet is up on: $(printf '%s' "$addrs" | tr '\n' ' ')"
target_flags=()
while IFS= read -r a; do target_flags+=(--target "$a"); done <<< "$addrs"
cargo run --release --offline -p syncperf-bench --bin syncperf_load -- \
  bench --quick --check "${target_flags[@]}" --report results/load_report.json \
  || { echo "load gate failed"; kill "$load_pid" 2>/dev/null; exit 1; }
kill -TERM "$load_pid"
for _ in $(seq 1 100); do
  kill -0 "$load_pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$load_pid" 2>/dev/null; then
  echo "replica fleet did not shut down on SIGTERM"; kill -9 "$load_pid"; exit 1
fi
wait "$load_pid" || { echo "replica supervisor exited nonzero"; cat load_serve_out.log; exit 1; }
grep -q "replica fleet shut down cleanly" load_serve_out.log \
  || { echo "supervisor missed its clean-exit line"; cat load_serve_out.log; exit 1; }
# Each replica dumps its flight recorder on SIGTERM; keep the dumps
# (and the load report above) as workflow artifacts.
cp ci_load_results/flightrec-*.jsonl results/ 2>/dev/null \
  || echo "note: no flight-recorder dumps found"
echo "load lane artifacts: results/load_report.json + $(ls results/flightrec-*.jsonl 2>/dev/null | wc -l) flight dump(s)"
rm -f load_serve_out.log
rm -rf ci_load_results

# Distributed execution lane (docs/DISTRIBUTED.md): a cold 3-worker
# run and a cold run with one worker SIGKILLed mid-sweep must both
# produce byte-identical figures to a serial `--jobs 3` run. The
# cache trees are excluded from the diff (same entries, but the
# kill can orphan an in-flight store); everything the figures are
# built from must match to the byte.
echo "==> distributed execution lane"
rm -rf ci_dist_serial ci_dist_workers ci_dist_chaos dist_out.log dist_chaos_out.log
SYNCPERF_RESULTS=ci_dist_serial cargo run --release --offline -p syncperf-bench \
  --bin all_figures -- --jobs 3 > /dev/null
SYNCPERF_RESULTS=ci_dist_workers cargo run --release --offline -p syncperf-bench \
  --bin syncperf_dist -- all_figures --workers 3 \
  --cache-stats results/cache_stats_dist.json > dist_out.log
grep '^dist:' dist_out.log || { echo "coordinator summary line missing"; cat dist_out.log; exit 1; }
diff -r -x .cache ci_dist_serial ci_dist_workers \
  || { echo "3-worker output diverged from serial"; exit 1; }
dist_workers=$(sed -n 's/.*"dist_workers":\([0-9]*\).*/\1/p' results/cache_stats_dist.json)
[ "${dist_workers:-0}" -eq 3 ] || { echo "cache-stats did not record the fleet"; exit 1; }

echo "==> distributed chaos lane (kill one worker mid-sweep)"
SYNCPERF_RESULTS=ci_dist_chaos cargo run --release --offline -p syncperf-bench \
  --bin syncperf_dist -- all_figures --workers 3 --chaos-kill-one 25 \
  --cache-stats results/cache_stats_dist_chaos.json > dist_chaos_out.log
grep '^dist:' dist_chaos_out.log || { echo "chaos summary line missing"; cat dist_chaos_out.log; exit 1; }
diff -r -x .cache ci_dist_serial ci_dist_chaos \
  || { echo "chaos output diverged from serial"; exit 1; }
deaths=$(sed -n 's/.*"dist_worker_deaths":\([0-9]*\).*/\1/p' results/cache_stats_dist_chaos.json)
[ "${deaths:-0}" -ge 1 ] || { echo "chaos hook did not kill a worker"; exit 1; }
echo "chaos run converged with ${deaths} worker death(s)"
rm -f dist_out.log dist_chaos_out.log
rm -rf ci_dist_serial ci_dist_workers ci_dist_chaos

echo "CI green"
