#!/usr/bin/env bash
# Full offline CI gate: everything here must pass with no network access.
# All dependencies are local path crates, so --offline is safe everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --release --offline --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace --release --offline -q

# Static sync-lint + race-detector cross-check over every registered
# kernel (docs/ANALYSIS.md). Exits nonzero on any non-allowlisted
# diagnostic or static/dynamic disagreement; the JSON report is
# uploaded as a CI artifact.
echo "==> sync_lint all"
cargo run --release --offline -p syncperf-bench --bin sync_lint -- \
  all --format json --out sync_lint_report.json

echo "CI green"
