//! # syncperf
//!
//! A reproduction of *"Characterizing CUDA and OpenMP Synchronization
//! Primitives"* (Burtchell & Burtscher, IISWC 2024): the paper's
//! differential measurement framework, an OpenMP-like runtime on real
//! threads, and cycle-approximate CPU and GPU simulators that
//! regenerate every table and figure of the paper's evaluation.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] — the measurement framework (kernels, protocol, sweeps,
//!   reports, recommendations, Table I system specs).
//! * [`omp`] — real-thread teams, barriers, typed atomics, critical
//!   sections, flushes.
//! * [`cpu_sim`] — the multicore simulator behind Figs. 1-6.
//! * [`gpu_sim`] — the SIMT simulator behind Figs. 7-15 and Listing 1.
//! * [`analyze`] — static sync linter plus vector-clock race detector
//!   cross-checked against the simulators (see `docs/ANALYSIS.md`).
//!
//! ## Quickstart
//!
//! Measure one primitive on a simulated system:
//!
//! ```
//! use syncperf::core::{kernel, DType, ExecParams, Protocol, SYSTEM3};
//! use syncperf::cpu_sim::CpuSimExecutor;
//!
//! # fn main() -> syncperf::core::Result<()> {
//! let mut sim = CpuSimExecutor::new(&SYSTEM3);
//! let m = Protocol::PAPER.measure(
//!     &mut sim,
//!     &kernel::omp_atomic_update_scalar(DType::I32),
//!     &ExecParams::new(16).with_loops(1000, 100),
//! )?;
//! println!("one atomic update: {:.1} ns", m.runtime_seconds() * 1e9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use syncperf_analyze as analyze;
pub use syncperf_core as core;
pub use syncperf_cpu_sim as cpu_sim;
pub use syncperf_gpu_sim as gpu_sim;
pub use syncperf_omp as omp;

/// Commonly used items in one import.
pub mod prelude {
    pub use syncperf_core::{
        kernel, Affinity, CpuKernel, CpuOp, DType, ExecParams, Executor, FigureData, GpuKernel,
        GpuOp, Kernel, Measurement, Protocol, Result, RmwOp, Scope, Series, ShflVariant,
        SyncPerfError, SystemSpec, Target, ThreadTimes, TimeUnit, VoteKind, SYSTEM1, SYSTEM2,
        SYSTEM3,
    };
    pub use syncperf_cpu_sim::CpuSimExecutor;
    pub use syncperf_gpu_sim::{GpuSimExecutor, ReductionConfig, ReductionStrategy};
    pub use syncperf_omp::{AtomicCell, Critical, OmpExecutor, SenseBarrier, Team};
}
